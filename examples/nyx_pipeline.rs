//! The paper's headline scenario end to end on the real engine: a Nyx
//! snapshot partitioned over 8 rank threads, written to one shared
//! file with all four methods, timing each.
//!
//! ```text
//! cargo run --release --example nyx_pipeline
//! ```

use bench::{demo_real_config, partition_3d};
use repro_suite::predwrite::{run_real, Method};
use repro_suite::workloads::{nyx, NyxParams};

fn main() {
    let side = 48;
    let nranks = 8;
    let ds = nyx::snapshot(NyxParams::with_side(side));
    let data = partition_3d(&ds, nranks);
    let bd = data[0][0].dims.extents().to_vec();
    println!(
        "Nyx {side}^3, {} fields, {} ranks, {}x{}x{} block per rank",
        ds.fields.len(),
        nranks,
        bd[0],
        bd[1],
        bd[2]
    );

    println!(
        "\n{:<18} {:>9} {:>10} {:>10} {:>9}",
        "method", "total", "compress", "write", "ratio"
    );
    let mut results = Vec::new();
    for method in Method::ALL {
        let path = std::env::temp_dir().join(format!("nyx-pipeline-{}.h5l", method.label()));
        // 4 MB/s aggregate (scale 0.01): I/O-bound like a busy PFS.
        // Timing comparison only, so no verify; see vpic_particles.
        let cfg = demo_real_config(method, ds.fields.len(), 0.01, false, path.clone());
        let res = run_real(&data, &cfg).expect("run failed");
        println!(
            "{:<18} {:>8.2}s {:>9.2}s {:>9.2}s {:>8.1}x",
            method.label(),
            res.total_time,
            res.breakdown.compress,
            res.breakdown.write,
            res.ideal_ratio(),
        );
        results.push((method, res));
        std::fs::remove_file(&path).ok();
    }

    let t = |m: Method| {
        results
            .iter()
            .find(|(mm, _)| *mm == m)
            .unwrap()
            .1
            .total_time
    };
    println!(
        "\nspeedup of overlap+reorder: {:.2}x vs no-compression, {:.2}x vs filter+collective",
        t(Method::NoCompression) / t(Method::OverlapReorder),
        t(Method::FilterCollective) / t(Method::OverlapReorder),
    );
    println!(
        "note: at 8 rank threads the collective-write penalty and the\n\
         overlap benefit are small by construction; they grow with rank\n\
         count. `cargo run -p bench --release --bin repro -- fig16` shows\n\
         the 512-rank behaviour (paper: 4.46x vs no-compression, 2.91x vs\n\
         the H5Z-SZ filter baseline)."
    );
}
