//! Tuning the extra-space ratio: sweep `Rspace` over the paper's
//! supported band and print the performance/storage trade-off, then
//! pick a ratio from a user weight via the Fig. 9 mapping.
//!
//! ```text
//! cargo run --release --example tuning_extra_space [weight]
//! ```

use bench::partition_3d;
use repro_suite::pfsim::BandwidthModel;
use repro_suite::predwrite::{
    profile_partition, replicate_profiles, simulate_method, weight_to_rspace, ExtraSpacePolicy,
    Method, SimParams,
};
use repro_suite::ratiomodel::Models;
use repro_suite::szlite::Config;
use repro_suite::workloads::{nyx, NyxParams};

fn main() {
    let weight: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    // Profile a small measured set and replay at 512 ranks.
    let side = 32;
    let measured = 8;
    let nranks = 512;
    let bw = BandwidthModel::summit();
    let models = Models::with_cthr(bw.stable_cthr(nranks));
    let ds = nyx::snapshot(NyxParams::with_side(side));
    let base: Vec<Vec<_>> = partition_3d(&ds, measured)
        .iter()
        .map(|rank_fields| {
            rank_fields
                .iter()
                .map(|fd| {
                    profile_partition(&fd.data, &fd.dims, &Config::rel(1e-3), &models).unwrap()
                })
                .collect()
        })
        .collect();
    let profiles = replicate_profiles(&base, nranks);

    println!("rspace  storage-ovh  perf(total)  overflow-parts");
    for rs in [1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.43, 1.6] {
        let r = simulate_method(
            Method::Overlap,
            &profiles,
            &SimParams::new(bw).with_policy(ExtraSpacePolicy::new(rs)),
        );
        println!(
            "{rs:<7.2} {:>10.1}%  {:>10.3}s  {:>8} / {}",
            r.storage_overhead() * 100.0,
            r.total_time,
            r.n_overflow,
            nranks * 6,
        );
    }

    let chosen = weight_to_rspace(weight);
    println!(
        "\nweight {weight:.2} (0 = performance, 1 = storage) -> rspace {chosen:.3}\n\
         paper band [1.1, 1.43], default 1.25; below ~1.1 overflow handling\n\
         dominates (their observation: rspace 1.1 -> 32.4% overflows, +65.6% time)"
    );
}
