//! Quickstart: compress a scientific field with an error bound, store
//! it in an h5lite container through the SZ filter pipeline, read it
//! back, and verify the bound.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use repro_suite::h5lite::{
    workers_from_env, DatasetSpec, Dtype, EventSet, FilterSpec, H5File, H5Reader, SzFilterParams,
    SZLITE_FILTER_ID,
};
use repro_suite::szlite::{compress_with_stats, decompress_f32, stats, Config, Dims};
use repro_suite::workloads::{nyx, NyxParams};

fn main() {
    // 1. Generate a Nyx-like temperature field (64^3).
    let side = 64;
    let field = nyx::single_field(NyxParams::with_side(side), "temperature");
    let dims = Dims::d3(side, side, side);
    println!(
        "field: {} ({} points, {} bytes raw)",
        field.name,
        field.len(),
        field.raw_bytes()
    );

    // 2. Compress with a value-range-relative bound of 1e-3.
    let cfg = Config::rel(1e-3);
    let (stream, st) = compress_with_stats(&field.data, &dims, &cfg).unwrap();
    println!(
        "compressed: {} bytes, ratio {:.1}x, bit-rate {:.2} bits/value, eb {:.3e}",
        st.compressed_bytes,
        st.ratio(),
        st.bit_rate(),
        st.eb
    );

    // 3. Verify the point-wise error bound.
    let (restored, _) = decompress_f32(&stream).unwrap();
    let max_err = stats::max_abs_err(&field.data, &restored);
    let psnr = stats::psnr(&field.data, &restored);
    println!(
        "max error {max_err:.3e} <= eb {:.3e}; PSNR {psnr:.1} dB",
        st.eb
    );
    assert!(max_err <= st.eb);

    // 4. Store through the HDF5-like container with the SZ filter.
    let path = std::env::temp_dir().join("quickstart.h5l");
    let file = H5File::create(&path).unwrap();
    let params = SzFilterParams {
        absolute: true,
        bound: st.eb,
        dims: vec![side, side, side],
    };
    let id = file
        .create_dataset(
            DatasetSpec::new(
                "fields/temperature",
                Dtype::F32,
                &[(side * side * side) as u64],
            )
            .chunked(&[(side * side * side) as u64])
            .with_filter(FilterSpec {
                id: SZLITE_FILTER_ID,
                params: params.to_bytes(),
            }),
        )
        .unwrap();
    let bytes: Vec<u8> = field.data.iter().flat_map(|v| v.to_le_bytes()).collect();
    // The parallel compression pipeline: SZ_THREADS compression
    // workers streaming into ES_WORKERS async write threads; output is
    // byte-identical to the serial `write_full` at any worker count.
    let events = EventSet::from_env();
    file.write_full_pipelined(id, &bytes, workers_from_env(), &events, None)
        .unwrap();
    events.wait().unwrap();
    file.close().unwrap();

    // 5. Read back through the inverse filter pipeline.
    let reader = H5Reader::open(&path).unwrap();
    let meta = reader.meta("fields/temperature").unwrap();
    println!(
        "file: {} stored / {} raw bytes ({:.1}x in-container)",
        meta.stored_bytes(),
        meta.raw_bytes(),
        meta.raw_bytes() as f64 / meta.stored_bytes() as f64
    );
    let from_file = reader.read_f32("fields/temperature").unwrap();
    assert!(stats::max_abs_err(&field.data, &from_file) <= st.eb);
    println!("read-back verified within the error bound: OK");
    std::fs::remove_file(&path).ok();
}
