//! Timestep streaming with online ratio-model adaptation: checkpoint
//! an evolving Nyx run twice — static offline models vs. the online
//! adaptive predictor — and watch the adaptive headroom tighten as
//! history accumulates.
//!
//! ```text
//! cargo run --release --example timeline_stream [steps]
//! ```

use bench::partition_stream_step;
use repro_suite::predwrite::RankFieldData;
use repro_suite::ratiomodel::OnlineConfig;
use repro_suite::timeline::{run_timeline, AdaptMode, TimelineConfig, TimelineReport};
use repro_suite::workloads::SnapshotStream;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let nranks = 8;
    let stream = SnapshotStream::nyx(32);
    println!(
        "streaming {} checkpoints of an evolving {}³ Nyx run over {nranks} ranks",
        steps, 32
    );

    // Generate every step once so both modes see identical data.
    let data: Vec<Vec<Vec<RankFieldData>>> = (0..steps)
        .map(|s| partition_stream_step(&stream, s, nranks))
        .collect();
    let nfields = data[0][0].len();

    let mut reports: Vec<TimelineReport> = Vec::new();
    for mode in [
        AdaptMode::Static,
        AdaptMode::Adaptive(OnlineConfig::default()),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "timeline-example-{}-{}",
            std::process::id(),
            mode.label()
        ));
        let cfg = TimelineConfig::quick(steps, nfields, mode, dir.clone());
        let report = run_timeline(&cfg, |s| &data[s]).expect("stream failed");
        let _ = std::fs::remove_dir_all(&dir);

        println!("\n--- {} ---", report.mode);
        println!(
            "{:>4} {:>12} {:>12} {:>10} {:>9}",
            "step", "reserved", "waste", "overflows", "rel-err"
        );
        for s in &report.steps {
            println!(
                "{:>4} {:>12} {:>12} {:>10} {:>8.1}%",
                s.step,
                s.reserved_bytes,
                s.waste_bytes,
                s.result.n_overflow,
                s.mean_rel_err * 100.0
            );
        }
        reports.push(report);
    }

    let (stat, adap) = (&reports[0], &reports[1]);
    println!(
        "\ncumulative waste: static {} vs adaptive {} bytes \
         ({:.1}% saved), overflows {} vs {}",
        stat.total_waste(),
        adap.total_waste(),
        100.0 * stat.total_waste().saturating_sub(adap.total_waste()) as f64
            / stat.total_waste().max(1) as f64,
        stat.total_overflows(),
        adap.total_overflows()
    );
    println!(
        "every step was read back and bound-checked (TimelineConfig::quick \
         sets verify = true); see BENCH_timeline.json from bench_timeline \
         for the full three-workload comparison"
    );
}
