//! VPIC-like particle dump through the predictive parallel-write path:
//! 8 particle fields split over rank threads, written with overlap +
//! reordering, then read back and validated field by field.
//!
//! ```text
//! cargo run --release --example vpic_particles
//! ```

use bench::{demo_real_config, partition_1d};
use repro_suite::h5lite::H5Reader;
use repro_suite::predwrite::{run_real, Method};
use repro_suite::workloads::{vpic, VpicParams};

fn main() {
    let n_particles = 1 << 16;
    let nranks = 8;
    let ds = vpic::snapshot(VpicParams::with_particles(n_particles));
    println!(
        "VPIC dump: {n_particles} particles, {} fields, {nranks} ranks",
        ds.fields.len()
    );

    // Equal 1-D splits per field (the helper truncates the remainder
    // so chunks are uniform, as the chunked layout requires).
    let data = partition_1d(&ds, nranks);
    let per_rank = data[0][0].data.len();

    let path = std::env::temp_dir().join("vpic-particles.h5l");
    // Balanced bandwidth (scale 0.5); engine-level read-back check of
    // every element.
    let cfg = demo_real_config(
        Method::OverlapReorder,
        ds.fields.len(),
        0.5,
        true,
        path.clone(),
    );
    let res = run_real(&data, &cfg).expect("run failed");
    println!(
        "wrote {} raw as {} compressed in {:.2}s (ratio {:.1}x, {} overflows)",
        res.raw_bytes,
        res.compressed_bytes,
        res.total_time,
        res.ideal_ratio(),
        res.n_overflow
    );
    println!(
        "engine verification re-read every element within bound in {:.2}s",
        res.breakdown.verify
    );

    // Validate each field against the written file.
    let reader = H5Reader::open(&path).unwrap();
    for f in 0..data[0].len() {
        let name = &data[0][f].name;
        let stored = reader.read_f32(name).unwrap();
        let mut worst = 0.0f64;
        for (r, rank_fields) in data.iter().enumerate() {
            let orig = &rank_fields[f].data;
            let chunk = &stored[r * per_rank..(r + 1) * per_rank];
            let (mn, mx) = orig
                .iter()
                .fold((f32::MAX, f32::MIN), |(a, b), &v| (a.min(v), b.max(v)));
            let eb = 1e-3 * f64::from(mx - mn);
            for (&a, &b) in orig.iter().zip(chunk) {
                let e = (f64::from(a) - f64::from(b)).abs();
                assert!(e <= eb + 1e-30, "{name}: {a} vs {b}");
                worst = worst.max(if eb > 0.0 { e / eb } else { 0.0 });
            }
        }
        println!(
            "  {name:8} verified (worst error {:.0}% of bound)",
            worst * 100.0
        );
    }
    std::fs::remove_file(&path).ok();
}
