//! VPIC-like particle dump through the predictive parallel-write path:
//! 8 particle fields split over rank threads, written with overlap +
//! reordering, then read back and validated field by field.
//!
//! ```text
//! cargo run --release --example vpic_particles
//! ```

use repro_suite::h5lite::H5Reader;
use repro_suite::pfsim::BandwidthModel;
use repro_suite::predwrite::{run_real, ExtraSpacePolicy, Method, RankFieldData, RealConfig};
use repro_suite::ratiomodel::Models;
use repro_suite::szlite::{Config, Dims};
use repro_suite::workloads::{split_1d, vpic, VpicParams};

fn main() {
    let n_particles = 1 << 16;
    let nranks = 8;
    let ds = vpic::snapshot(VpicParams::with_particles(n_particles));
    println!(
        "VPIC dump: {n_particles} particles, {} fields, {nranks} ranks",
        ds.fields.len()
    );

    // Equal 1-D splits per field (truncate the remainder so chunks are
    // uniform, as the chunked layout requires).
    let per_rank = n_particles / nranks;
    let data: Vec<Vec<RankFieldData>> = (0..nranks)
        .map(|r| {
            ds.fields
                .iter()
                .map(|f| {
                    let parts = split_1d(f, nranks);
                    RankFieldData {
                        name: f.name.clone(),
                        data: parts[r][..per_rank].to_vec(),
                        dims: Dims::d1(per_rank),
                    }
                })
                .collect()
        })
        .collect();

    let path = std::env::temp_dir().join("vpic-particles.h5l");
    let cfg = RealConfig {
        method: Method::OverlapReorder,
        configs: vec![Config::rel(1e-3); ds.fields.len()],
        models: Models::with_cthr(20e6),
        policy: ExtraSpacePolicy::default(),
        bandwidth: BandwidthModel::tiny_for_tests(),
        throttle_scale: 0.5,
        sz_threads: 0, // honor SZ_THREADS, default serial
        verify: true,  // engine-level read-back check of every element
        path: path.clone(),
    };
    let res = run_real(&data, &cfg).expect("run failed");
    println!(
        "wrote {} raw as {} compressed in {:.2}s (ratio {:.1}x, {} overflows)",
        res.raw_bytes,
        res.compressed_bytes,
        res.total_time,
        res.ideal_ratio(),
        res.n_overflow
    );
    println!(
        "engine verification re-read every element within bound in {:.2}s",
        res.breakdown.verify
    );

    // Validate each field against the written file.
    let reader = H5Reader::open(&path).unwrap();
    for f in 0..data[0].len() {
        let name = &data[0][f].name;
        let stored = reader.read_f32(name).unwrap();
        let mut worst = 0.0f64;
        for (r, rank_fields) in data.iter().enumerate() {
            let orig = &rank_fields[f].data;
            let chunk = &stored[r * per_rank..(r + 1) * per_rank];
            let (mn, mx) = orig
                .iter()
                .fold((f32::MAX, f32::MIN), |(a, b), &v| (a.min(v), b.max(v)));
            let eb = 1e-3 * f64::from(mx - mn);
            for (&a, &b) in orig.iter().zip(chunk) {
                let e = (f64::from(a) - f64::from(b)).abs();
                assert!(e <= eb + 1e-30, "{name}: {a} vs {b}");
                worst = worst.max(if eb > 0.0 { e / eb } else { 0.0 });
            }
        }
        println!(
            "  {name:8} verified (worst error {:.0}% of bound)",
            worst * 100.0
        );
    }
    std::fs::remove_file(&path).ok();
}
