//! # repro-suite — workspace facade
//!
//! Re-exports the workspace crates so the runnable examples and the
//! cross-crate integration tests in `tests/` have a single import
//! surface. The actual functionality lives in:
//!
//! * [`szlite`] — prediction-based error-bounded lossy compressor
//! * [`ratiomodel`] — ratio / compression-time / write-time prediction
//! * [`commsim`] — threads-as-ranks MPI-like collectives
//! * [`pfsim`] — parallel file system substrate + event simulator
//! * [`h5lite`] — HDF5-like container with filters and async writes
//! * [`predwrite`] — the paper's predictive overlapped parallel write
//! * [`workloads`] — synthetic Nyx / VPIC / RTM dataset generators
//! * [`timeline`] — timestep-streaming checkpoint engine with online
//!   ratio-model adaptation
//! * [`obs`] — flight-recorder observability: span tracing with
//!   Chrome-trace export, metrics registry, per-step JSONL records

pub use commsim;
pub use h5lite;
pub use obs;
pub use pfsim;
pub use predwrite;
pub use ratiomodel;
pub use szlite;
pub use timeline;
pub use workloads;
