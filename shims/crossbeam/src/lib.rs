//! Offline shim for `crossbeam`: just the `channel` module, as a
//! blocking unbounded MPMC queue. Unlike `std::sync::mpsc`, receivers
//! are cloneable — the property `h5lite::asyncq` relies on to share one
//! queue among worker threads.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the rejected message like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake receivers so they observe
                // disconnection instead of sleeping forever. The lock
                // must be held across the notify — otherwise a receiver
                // that already read senders == 1 but has not yet parked
                // in wait() would miss the wakeup and sleep forever.
                let _queue = self
                    .shared
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_to_cloned_receivers() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
