//! Offline shim for `crossbeam`: just the `channel` module, as a
//! blocking unbounded MPMC queue. Unlike `std::sync::mpsc`, receivers
//! are cloneable — the property `h5lite::asyncq` relies on to share one
//! queue among worker threads.
//!
//! The queue is **sharded**: messages round-robin across `NSHARDS`
//! independently locked deques, each receiver prefers one shard and
//! steals from the rest, so concurrent senders/receivers do not
//! serialize on a single mutex. The price is that delivery order
//! across shards is not globally FIFO; every in-tree consumer is
//! order-insensitive (`ordered_fanout` reorders at its sink, the
//! event-set write queue addresses writes by file offset).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

    /// Shard count (power of two). Enough that 8–16 pipeline workers
    /// rarely collide on one lock; small enough that stealing scans
    /// stay cheap.
    const NSHARDS: usize = 8;

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    struct Shard<T> {
        queue: Mutex<VecDeque<T>>,
    }

    struct Shared<T> {
        shards: Vec<Shard<T>>,
        /// Round-robin cursor for sends.
        push_idx: AtomicUsize,
        /// Preferred-shard cursor for receiver clones.
        recv_idx: AtomicUsize,
        /// Total queued messages (updated under the owning shard's
        /// lock, so it can never transiently underflow).
        len: AtomicUsize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Parked receivers; senders only take `sleep_lock` when this
        /// is non-zero.
        sleepers: AtomicUsize,
        sleep_lock: Mutex<()>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the rejected message like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// Recover the message that could not be sent (crossbeam API).
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    // Like crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
        /// Preferred shard: popped first, then the rest are stolen
        /// from in ring order.
        home: usize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            shards: (0..NSHARDS)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                })
                .collect(),
            push_idx: AtomicUsize::new(0),
            recv_idx: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared, home: 0 },
        )
    }

    impl<T> Shared<T> {
        /// Pop from any shard, preferring `home`. Returns `None` only
        /// if every shard was observed empty.
        fn steal(&self, home: usize) -> Option<T> {
            for k in 0..NSHARDS {
                let shard = &self.shards[(home + k) % NSHARDS];
                let mut q = lock(&shard.queue);
                if let Some(v) = q.pop_front() {
                    // Under the shard lock, after the matching push.
                    self.len.fetch_sub(1, Ordering::SeqCst);
                    return Some(v);
                }
            }
            None
        }

        /// Wake parked receivers. Taking `sleep_lock` serializes with
        /// the window between a receiver's sleepers increment and its
        /// `wait`, so the notification cannot be lost.
        fn wake(&self, all: bool) {
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                let _g = lock(&self.sleep_lock);
                if all {
                    self.ready.notify_all();
                } else {
                    self.ready.notify_one();
                }
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message. Fails — returning the message — iff every
        /// receiver disconnected before the send was committed: the
        /// disconnect check runs under the destination shard's lock,
        /// and the last receiver's drop takes every shard lock, so a
        /// send observing `receivers > 0` is fully ordered before the
        /// disconnect and a send ordered after it always errors. No
        /// in-flight message is ever silently dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let idx = self.shared.push_idx.fetch_add(1, Ordering::Relaxed) % NSHARDS;
            {
                let mut q = lock(&self.shared.shards[idx].queue);
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                q.push_back(value);
                self.shared.len.fetch_add(1, Ordering::SeqCst);
            }
            self.shared.wake(false);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                if let Some(v) = self.shared.steal(self.home) {
                    return Ok(v);
                }
                // Park. The sleepers increment and the len re-check
                // are both SeqCst, pairing with the sender's
                // len-increment → sleepers-load order: either we see
                // the new message here, or the sender sees us parked
                // and notifies under `sleep_lock`.
                let mut g = lock(&self.shared.sleep_lock);
                self.shared.sleepers.fetch_add(1, Ordering::SeqCst);
                loop {
                    if self.shared.len.load(Ordering::SeqCst) > 0 {
                        break;
                    }
                    if self.shared.senders.load(Ordering::SeqCst) == 0 {
                        // Senders may have enqueued and dropped after
                        // our scan; one post-check scan under the
                        // parked state settles it.
                        self.shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                        drop(g);
                        return match self.shared.steal(self.home) {
                            Some(v) => Ok(v),
                            None => Err(RecvError),
                        };
                    }
                    g = self
                        .shared
                        .ready
                        .wait(g)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                self.shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                drop(g);
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.shared.steal(self.home)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
                home: self.shared.recv_idx.fetch_add(1, Ordering::Relaxed) % NSHARDS,
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every receiver so they
                // observe disconnection instead of sleeping forever.
                let _g = lock(&self.shared.sleep_lock);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Fence against in-flight sends: acquiring every shard
                // lock once means any send that already passed its
                // under-lock disconnect check has also committed its
                // message, and any later send will observe
                // `receivers == 0` and return the value typed.
                for shard in &self.shared.shards {
                    drop(lock(&shard.queue));
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_to_cloned_receivers() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn drained_before_disconnect_reported() {
            // Values sent across many shards before the sender drops
            // must all drain before RecvError surfaces.
            let (tx, rx) = unbounded::<u32>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
            assert_eq!(tx.send(7).unwrap_err().into_inner(), 7);
        }

        #[test]
        fn concurrent_disconnect_never_loses_a_value() {
            // Hammer the send ↔ last-receiver-drop race: every send
            // must either deliver its value or hand it back as a typed
            // SendError. Counting both sides proves no value vanishes.
            for _ in 0..50 {
                let (tx, rx) = unbounded::<u64>();
                let producer = {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut returned = 0u64;
                        let mut sent = 0u64;
                        for i in 0..1000u64 {
                            match tx.send(i) {
                                Ok(()) => sent += 1,
                                Err(SendError(_)) => returned += 1,
                            }
                        }
                        (sent, returned)
                    })
                };
                let consumer = std::thread::spawn(move || {
                    let mut got = 0u64;
                    for _ in 0..100 {
                        if rx.try_recv().is_some() {
                            got += 1;
                        }
                    }
                    // Receiver disconnects here, mid-stream.
                    drop(rx);
                    got
                });
                let (sent, returned) = producer.join().unwrap();
                let got = consumer.join().unwrap();
                assert_eq!(sent + returned, 1000);
                // Everything accepted but unreceived is still queued
                // (not lost): accepted sends happened before the
                // disconnect fence.
                assert!(got <= sent);
                drop(tx);
            }
        }

        #[test]
        fn parked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(50));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        }

        #[test]
        fn many_producers_many_consumers() {
            let (tx, rx) = unbounded::<u64>();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..500u64 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(tx);
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let expected: Vec<u64> = (0..4u64)
                .flat_map(|p| (0..500u64).map(move |i| p * 1000 + i))
                .collect();
            let mut expected = expected;
            expected.sort_unstable();
            assert_eq!(all, expected);
        }
    }
}
