//! Offline shim for `criterion`: the group/bench/iter API surface the
//! workspace benches use, with two modes matching real Criterion's
//! behavior under cargo:
//!
//! * **test mode** (no `--bench` argument, i.e. `cargo test`): every
//!   bench body runs exactly once, as a smoke test;
//! * **bench mode** (`cargo bench` passes `--bench`): a short warmup
//!   plus `sample_size` timed iterations, reporting the mean per-iter
//!   time and optional throughput.
//!
//! No statistics, history, or plotting.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export position matches `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for one measurement within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion distinguishes `cargo bench` (passes `--bench`)
        // from `cargo test` (does not) the same way.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one("", &id.into().id, 10, None, test_mode, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.sample_size,
            self.throughput,
            self.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into().id,
            self.sample_size,
            self.throughput,
            self.test_mode,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test-mode bench {label}: ok");
        return;
    }
    // Warmup once, then time `sample_size` iterations in one batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / sample_size as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / mean / 1e6;
            println!("bench {label}: {:.3} ms/iter, {mbps:.1} MB/s", mean * 1e3);
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / mean;
            println!("bench {label}: {:.3} ms/iter, {eps:.0} elem/s", mean * 1e3);
        }
        None => println!("bench {label}: {:.3} ms/iter", mean * 1e3),
    }
}

/// `criterion_group!(name, target...)` — defines `fn name()` running
/// each target against a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// `criterion_main!(group...)` — defines `fn main()` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
