//! End-to-end shrinking through the `proptest!` macro: failing cases
//! must be minimized before the panic message is built, and the
//! message must name the minimal inputs.

use proptest::prelude::*;

proptest! {
    // Any sampled v ≥ 13 fails; the greedy ladder walks it down to
    // exactly 13, the smallest failing value, regardless of the start.
    #[test]
    #[should_panic(expected = "(13,)")]
    fn int_failures_shrink_to_the_boundary(v in 0u32..10_000) {
        prop_assert!(v < 13);
    }

    // A failing vec keeps at least one element ≥ 10. Single-element
    // removal peels every passenger off, and the element ladder lands
    // on exactly 10 — the minimal counterexample is always `[10]`.
    #[test]
    #[should_panic(expected = "[10]")]
    fn vec_failures_shrink_to_one_minimal_element(
        v in proptest::collection::vec(0u32..1000, 1..8)
    ) {
        prop_assert!(v.iter().all(|&x| x < 10));
    }

    // Multi-argument failures shrink per component: the int collapses
    // to its range minimum and the vec empties, since the property
    // fails unconditionally.
    #[test]
    #[should_panic(expected = "(7, [])")]
    fn tuple_components_shrink_independently(
        a in 7u32..500,
        b in proptest::collection::vec(0u8..=255, 0..6),
    ) {
        prop_assert!(a == u32::MAX && b.len() > 100, "unsatisfiable");
    }

    // Shrinking must never promote a passing value: everything below
    // the boundary passes, so the reported minimum stays failing.
    #[test]
    fn passing_properties_never_invoke_shrinking(v in 0u32..50) {
        prop_assert!(v < 50);
    }
}

proptest! {
    // prop_assume rejections during shrinking are skipped, not
    // treated as failures: candidates below 20 are assumed away, so
    // the minimal failing input is the assumption boundary.
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    #[should_panic(expected = "(20,)")]
    fn assumed_away_candidates_are_not_minimal(v in 0u32..5000) {
        prop_assume!(v >= 20);
        prop_assert!(false, "always fails once assumed");
    }
}
