//! The `Strategy` trait and the combinators / primitive strategies the
//! workspace suites use: ranges, tuples, `Just`, unions (`prop_oneof!`),
//! map / flat_map / filter, boxing, and a regex-subset string strategy.

use crate::rng::TestRng;
use crate::test_runner::Reject;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// How many resamples a `prop_filter` attempts before rejecting the
/// whole case back to the runner.
const FILTER_RETRIES: usize = 256;

pub type SampleResult<T> = Result<T, Reject>;

/// A reusable generator of values. Unlike real proptest there is no
/// value tree: sampling is direct, and shrinking is a stateless greedy
/// descent over [`Strategy::shrink`] candidate lists.
pub trait Strategy {
    type Value: Debug + Clone;

    fn sample(&self, rng: &mut TestRng) -> SampleResult<Self::Value>;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The runner keeps the first candidate that still fails and
    /// restarts from it; an empty list (the default) means the value is
    /// already minimal as far as this strategy can tell.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> SampleResult<T> {
        Ok(self.0.clone())
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<O> {
        Ok((self.f)(self.inner.sample(rng)?))
    }
    // No shrink: the mapping cannot be inverted to recover an input to
    // simplify, so mapped values are reported as-is.
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<S2::Value> {
        let first = self.inner.sample(rng)?;
        (self.f)(first).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<S::Value> {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Reject(format!(
            "filter '{}' kept rejecting samples",
            self.whence
        )))
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Candidates must stay inside the filtered domain.
        let mut c = self.inner.shrink(value);
        c.retain(|v| (self.f)(v));
        c
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> SampleResult<T>;
    fn shrink_dyn(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> SampleResult<S::Value> {
        self.sample(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// Type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<T> {
        self.0.sample_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

/// Weighted choice among boxed strategies — the engine of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug + Clone> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T: Debug + Clone> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<T> {
        let mut pick = rng.u64_below(self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping broken")
    }
    // No shrink: the producing arm is unknown after the fact, and
    // another arm's candidates could leave the sampled arm's domain.
}

/// Shrink ladder for an integer toward a range minimum: the minimum
/// itself, geometric steps back toward the failing value, then its
/// predecessor. Greedy descent over this ladder converges in
/// O(log span) accepted steps plus a short linear tail.
pub(crate) fn shrink_int(v: i128, lo: i128) -> Vec<i128> {
    if v <= lo {
        return Vec::new();
    }
    let d = v - lo;
    let mut out = vec![lo, lo + d / 2, lo + d * 3 / 4, lo + d * 7 / 8, v - 1];
    out.dedup(); // the ladder is non-decreasing, so dedup suffices
    out
}

/// Shrink ladder toward zero for full-domain integers, mirroring the
/// ladder for negative values so candidates approach zero from below.
pub(crate) fn shrink_int_toward_zero(v: i128) -> Vec<i128> {
    if v >= 0 {
        shrink_int(v, 0)
    } else {
        shrink_int(-v, 0).into_iter().map(|c| -c).collect()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> SampleResult<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                Ok((self.start as i128 + off as i128) as $t)
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(*v as i128, self.start as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> SampleResult<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                Ok((lo as i128 + off as i128) as $t)
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(*v as i128, *self.start() as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> SampleResult<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Rounding (notably f64→f32 for units near 1) can land
                // exactly on the exclusive upper bound; keep the
                // contract by stepping just below it.
                Ok(if v >= self.end { self.end.next_down() } else { v })
            }
        }
    )+};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> SampleResult<Self::Value> {
                Ok(($(self.$idx.sample(rng)?,)+))
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut t = v.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}

/// String literals are regex-subset strategies, like real proptest.
/// Supported syntax: literal characters, `[...]` classes with ranges,
/// and `{n}` / `{m,n}` quantifiers — exactly what the suites use.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<String> {
        Ok(sample_pattern(self, rng))
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                class
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let (lo, hi, next) = parse_quantifier(&chars, i + 1, pattern);
            i = next;
            (lo, hi)
        } else {
            (1, 1)
        };
        let count = lo + rng.u64_below(hi - lo + 1);
        for _ in 0..count {
            out.push(choices[rng.usize_below(choices.len())]);
        }
    }
    out
}

/// Parse a `[...]` body starting just past the `[`; returns the
/// expanded choice set and the index past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "bad class range in pattern strategy '{pattern}'");
            class.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    assert!(
        i < chars.len() && !class.is_empty(),
        "unterminated or empty class in pattern strategy '{pattern}'"
    );
    (class, i + 1)
}

/// Parse `{n}` or `{m,n}` starting just past the `{`; returns the
/// bounds and the index past the closing `}`.
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (u64, u64, usize) {
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated quantifier in pattern strategy '{pattern}'"))
        + i;
    let body: String = chars[i..close].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = body.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(lo <= hi, "bad quantifier in pattern strategy '{pattern}'");
    (lo, hi, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProptestConfig;

    fn rng() -> TestRng {
        TestRng::new(ProptestConfig::default().seed_for("strategy-unit"))
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut r).unwrap();
            assert!((3..17).contains(&v));
            let f = (-2.5f64..4.0).sample(&mut r).unwrap();
            assert!((-2.5..4.0).contains(&f));
            let i = (-5i32..=5).sample(&mut r).unwrap();
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..10)
            .prop_map(|n| n * 2)
            .prop_filter("mult of 4", |n| n % 4 == 0)
            .prop_flat_map(|n| crate::collection::vec(0u8..=255, n..=n));
        for _ in 0..100 {
            let v = s.sample(&mut r).unwrap();
            assert!(v.len() % 4 == 0 && v.len() >= 4);
        }
    }

    #[test]
    fn union_honors_weights() {
        let mut r = rng();
        let u = Union::weighted(vec![(9, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let ones: usize = (0..2000).map(|_| u.sample(&mut r).unwrap() as usize).sum();
        assert!((100..400).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn pattern_strategy_matches_subset() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,12}".sample(&mut r).unwrap();
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = "[ -~]{0,24}".sample(&mut r).unwrap();
            assert!(p.len() <= 24);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
            let q = "[a-z/]{1,20}".sample(&mut r).unwrap();
            assert!(q.chars().all(|c| c.is_ascii_lowercase() || c == '/'));
        }
    }

    #[test]
    fn literal_and_fixed_count_patterns() {
        let mut r = rng();
        assert_eq!("abc".sample(&mut r).unwrap(), "abc");
        assert_eq!("x{3}".sample(&mut r).unwrap(), "xxx");
    }
}
