//! `proptest::collection::vec` — variable-length vectors of a strategy.

use crate::rng::TestRng;
use crate::strategy::{SampleResult, Strategy};
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds, converted from the range forms suites use.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` whose length is uniform in `size` and whose elements are
/// drawn independently from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// At most this many positions get per-element candidates per shrink
/// round, bounding candidate fan-out on large vectors.
const ELEMENT_SHRINK_POSITIONS: usize = 64;

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<Vec<S::Value>> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.usize_below(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let lo = self.size.lo;
        // Shorter vectors first: truncate hard to the minimum length,
        // bisect, then drop each single element — removing an interior
        // element peels passengers off a failing suffix, which plain
        // truncation cannot.
        if v.len() > lo {
            out.push(v[..lo].to_vec());
            let half = lo + (v.len() - lo) / 2;
            if half > lo && half < v.len() {
                out.push(v[..half].to_vec());
            }
            for i in 0..v.len().min(ELEMENT_SHRINK_POSITIONS) {
                let mut w = Vec::with_capacity(v.len() - 1);
                w.extend_from_slice(&v[..i]);
                w.extend_from_slice(&v[i + 1..]);
                out.push(w);
            }
        }
        // Then element-wise simplification at fixed length.
        for i in 0..v.len().min(ELEMENT_SHRINK_POSITIONS) {
            for cand in self.element.shrink(&v[i]) {
                let mut w = v.clone();
                w[i] = cand;
                out.push(w);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_bounds_hold_for_all_forms() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            assert_eq!(vec(0u8..10, 4usize).sample(&mut rng).unwrap().len(), 4);
            let a = vec(0u8..10, 1usize..5).sample(&mut rng).unwrap();
            assert!((1..5).contains(&a.len()));
            let b = vec(0u8..10, 2usize..=6).sample(&mut rng).unwrap();
            assert!((2..=6).contains(&b.len()));
        }
    }

    #[test]
    fn elements_respect_inner_strategy() {
        let mut rng = TestRng::new(4);
        let v = vec(5u32..8, 0usize..64).sample(&mut rng).unwrap();
        assert!(v.iter().all(|&x| (5..8).contains(&x)));
    }
}
