//! Deterministic splitmix64 RNG — small, fast, and reproducible across
//! platforms, which is all a non-shrinking property tester needs.

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// splitmix64 step (Steele, Lea, Flood — "Fast splittable PRNGs").
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`; `n` must be nonzero. Modulo bias is
    /// negligible for test-input generation.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
