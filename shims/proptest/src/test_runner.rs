//! The case loop: sample → execute → classify pass/fail/reject — and
//! the greedy shrink search run on the first failure.

use crate::config::ProptestConfig;
use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A rejected sample (filter miss or failed `prop_assume!`). Cheap and
/// expected; the runner resamples.
#[derive(Debug, Clone)]
pub struct Reject(pub String);

/// Outcome of one executed case, proptest-compatible in spirit.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A property was violated; aborts the whole test with this message.
    Fail(String),
    /// The inputs did not satisfy an assumption; the case is retried.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Attach the generated inputs to a failure message.
    pub fn with_inputs(self, inputs: &[String]) -> Self {
        match self {
            TestCaseError::Fail(msg) => TestCaseError::Fail(format!(
                "{msg}\ngenerated inputs:\n  {}",
                inputs.join("\n  ")
            )),
            reject => reject,
        }
    }
}

impl From<Reject> for TestCaseError {
    fn from(r: Reject) -> Self {
        TestCaseError::Reject(r.0)
    }
}

/// Hard cap on property re-executions during one shrink search, so a
/// pathological candidate chain cannot stall an already-failing suite.
const SHRINK_BUDGET: usize = 2048;

/// Greedy shrink: repeatedly replace the failing value with the first
/// shrink candidate that still fails, until no candidate fails (a
/// local minimum) or the execution budget runs out. Returns the
/// minimal value, the number of accepted shrink steps, and the failure
/// message produced by the minimal case. Candidates that pass or
/// reject (`prop_assume!`) are simply skipped.
pub fn shrink_failure<S: Strategy>(
    strat: &S,
    mut value: S::Value,
    mut msg: String,
    case: &mut dyn FnMut(S::Value) -> Result<(), TestCaseError>,
) -> (S::Value, usize, String) {
    let mut steps = 0usize;
    let mut budget = SHRINK_BUDGET;
    'search: loop {
        for cand in strat.shrink(&value) {
            if budget == 0 {
                break 'search;
            }
            budget -= 1;
            if let Err(TestCaseError::Fail(m)) = case(cand.clone()) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'search;
            }
        }
        break;
    }
    (value, steps, msg)
}

/// The `proptest!` macro's engine: sample the argument tuple from
/// `strat`, execute `case`, and on the first failure run the shrink
/// search before reporting. `pats` is the stringified argument
/// pattern, used to label the minimal inputs in the panic message.
pub fn run_shrinking<S, C>(cfg: &ProptestConfig, name: &str, strat: &S, pats: &str, mut case: C)
where
    S: Strategy,
    C: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    run(cfg, name, |rng| {
        let value = strat.sample(rng)?;
        match case(value.clone()) {
            Ok(()) => Ok(()),
            Err(TestCaseError::Reject(r)) => Err(TestCaseError::Reject(r)),
            Err(TestCaseError::Fail(msg)) => {
                let (min, steps, msg) = shrink_failure(strat, value, msg, &mut case);
                Err(TestCaseError::Fail(format!(
                    "{msg}\nminimal failing input ({steps} shrink steps): {pats} = {min:?}"
                )))
            }
        }
    });
}

/// Drive `case` until `effective_cases` successes, panicking on the
/// first failure with the failing inputs and the seed to replay them.
pub fn run<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let target = cfg.effective_cases();
    let seed = cfg.seed_for(name);
    let mut rng = TestRng::new(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    while passed < target {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > cfg.max_global_rejects {
                    panic!(
                        "proptest {name}: gave up after {rejected} rejected samples \
                         ({passed}/{target} cases passed)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case {n} of {target} failed \
                     (replay with PROPTEST_SEED={seed})\n{msg}",
                    n = passed + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let cfg = ProptestConfig::with_cases(17);
        let mut n = 0;
        run(&cfg, "count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, cfg.effective_cases());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run(&ProptestConfig::with_cases(5), "fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn shrinks_int_to_failure_boundary() {
        let strat = 0u32..1000;
        let mut case = |v: u32| {
            if v >= 113 {
                Err(TestCaseError::fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        };
        let (min, steps, msg) = shrink_failure(&strat, 877, "877 too big".into(), &mut case);
        assert_eq!(min, 113);
        assert!(steps > 0);
        assert_eq!(msg, "113 too big");
    }

    #[test]
    fn shrinks_vec_to_single_minimal_offender() {
        let strat = crate::collection::vec(0u8..=255, 0usize..=20);
        let mut case = |v: Vec<u8>| {
            if v.iter().any(|&x| x >= 10) {
                Err(TestCaseError::fail("offender"))
            } else {
                Ok(())
            }
        };
        let start = vec![3, 200, 7, 45];
        let (min, steps, _) = shrink_failure(&strat, start, "offender".into(), &mut case);
        assert_eq!(min, vec![10]);
        assert!(steps > 0);
    }

    #[test]
    fn already_minimal_value_takes_no_steps() {
        let strat = 5u32..100;
        let mut case = |_| Err(TestCaseError::fail("always"));
        let (min, steps, _) = shrink_failure(&strat, 5, "always".into(), &mut case);
        assert_eq!(min, 5);
        assert_eq!(steps, 0);
    }

    #[test]
    fn rejects_are_retried() {
        let cfg = ProptestConfig::with_cases(3);
        let mut calls = 0;
        run(&cfg, "rejects", |_| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::reject("skip"))
            } else {
                Ok(())
            }
        });
        assert!(calls > cfg.effective_cases());
    }
}
