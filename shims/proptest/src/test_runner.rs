//! The case loop: sample → execute → classify pass/fail/reject.

use crate::config::ProptestConfig;
use crate::rng::TestRng;

/// A rejected sample (filter miss or failed `prop_assume!`). Cheap and
/// expected; the runner resamples.
#[derive(Debug, Clone)]
pub struct Reject(pub String);

/// Outcome of one executed case, proptest-compatible in spirit.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A property was violated; aborts the whole test with this message.
    Fail(String),
    /// The inputs did not satisfy an assumption; the case is retried.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Attach the generated inputs to a failure message (no shrinking:
    /// the raw case is the diagnostic).
    pub fn with_inputs(self, inputs: &[String]) -> Self {
        match self {
            TestCaseError::Fail(msg) => TestCaseError::Fail(format!(
                "{msg}\ngenerated inputs:\n  {}",
                inputs.join("\n  ")
            )),
            reject => reject,
        }
    }
}

impl From<Reject> for TestCaseError {
    fn from(r: Reject) -> Self {
        TestCaseError::Reject(r.0)
    }
}

/// Drive `case` until `effective_cases` successes, panicking on the
/// first failure with the failing inputs and the seed to replay them.
pub fn run<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let target = cfg.effective_cases();
    let seed = cfg.seed_for(name);
    let mut rng = TestRng::new(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    while passed < target {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > cfg.max_global_rejects {
                    panic!(
                        "proptest {name}: gave up after {rejected} rejected samples \
                         ({passed}/{target} cases passed)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case {n} of {target} failed \
                     (replay with PROPTEST_SEED={seed})\n{msg}",
                    n = passed + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let cfg = ProptestConfig::with_cases(17);
        let mut n = 0;
        run(&cfg, "count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, cfg.effective_cases());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run(&ProptestConfig::with_cases(5), "fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejects_are_retried() {
        let cfg = ProptestConfig::with_cases(3);
        let mut calls = 0;
        run(&cfg, "rejects", |_| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::reject("skip"))
            } else {
                Ok(())
            }
        });
        assert!(calls > cfg.effective_cases());
    }
}
