//! Run configuration: case counts and the deterministic seed.

/// Subset of proptest's `ProptestConfig` plus an explicit RNG seed so
/// suites are reproducible by construction.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test (before the CI
    /// reduction; see [`ProptestConfig::effective_cases`]).
    pub cases: u32,
    /// Base seed; each test derives its own stream by hashing its name
    /// into this. `PROPTEST_SEED` in the environment overrides it.
    pub rng_seed: u64,
    /// Upper bound on `prop_assume!` / filter rejections per test.
    pub max_global_rejects: u32,
}

/// The workspace-wide default seed: arbitrary but fixed, so every run
/// of every suite sees identical inputs unless deliberately overridden.
pub const DEFAULT_RNG_SEED: u64 = 0x5EED_0FC0_FFEE;

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            rng_seed: DEFAULT_RNG_SEED,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// Explicit seed + case count in one call (the form the workspace
    /// suites use so their determinism is visible at the use site).
    pub fn with_cases_and_seed(cases: u32, rng_seed: u64) -> Self {
        ProptestConfig {
            cases,
            rng_seed,
            ..Default::default()
        }
    }

    /// Case count after environment adjustments: `PROPTEST_CASES` wins
    /// outright; otherwise a set `CI` variable quarters the count
    /// (floor 8) to keep pipelines fast.
    pub fn effective_cases(&self) -> u32 {
        if let Ok(v) = std::env::var("PROPTEST_CASES") {
            if let Ok(n) = v.parse::<u32>() {
                return n.max(1);
            }
        }
        let in_ci = std::env::var("CI").map(|v| !v.is_empty()).unwrap_or(false);
        if in_ci {
            // Quarter the count but never go below 8 (or below the
            // configured count, whichever is smaller).
            (self.cases / 4).max(8).min(self.cases.max(1))
        } else {
            self.cases.max(1)
        }
    }

    /// Per-test seed: the configured base seed mixed with an FNV-1a
    /// hash of the test name, so sibling tests draw independent
    /// streams while staying reproducible.
    ///
    /// `PROPTEST_SEED` in the environment is taken **verbatim** (no
    /// name mixing): failure messages print the already-derived seed,
    /// so replaying with that exact value must reproduce the stream.
    pub fn seed_for(&self, test_name: &str) -> u64 {
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            return seed;
        }
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.rng_seed ^ h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_test_but_are_stable() {
        let c = ProptestConfig::with_cases(10);
        assert_eq!(c.seed_for("alpha"), c.seed_for("alpha"));
        assert_ne!(c.seed_for("alpha"), c.seed_for("beta"));
    }

    #[test]
    fn explicit_seed_changes_stream() {
        let a = ProptestConfig::with_cases_and_seed(10, 1);
        let b = ProptestConfig::with_cases_and_seed(10, 2);
        assert_ne!(a.seed_for("t"), b.seed_for("t"));
    }
}
