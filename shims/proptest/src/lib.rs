//! Offline shim for `proptest`: the strategy/macro surface the
//! workspace test suites use, built on a deterministic splitmix64 RNG.
//!
//! Differences from real proptest, by design:
//!
//! * **greedy shrinking, no value trees** — on the first failure the
//!   runner minimizes the inputs by greedy descent over per-strategy
//!   candidate lists ([`strategy::Strategy::shrink`]): integers step
//!   toward their range minimum, vectors toward fewer and smaller
//!   elements, tuples one component at a time. The search stops at a
//!   local minimum or after a fixed execution budget and reports the
//!   minimal failing inputs;
//! * **deterministic by default** — every test derives its RNG stream
//!   from [`config::ProptestConfig::rng_seed`] (a fixed constant unless
//!   overridden) hashed with the test name, so reruns see identical
//!   inputs;
//! * **CI-aware case counts** — when the `CI` environment variable is
//!   set, case counts are divided by four (floor eight) to keep
//!   pipeline wall-clock down; `PROPTEST_CASES` overrides everything.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod option;
pub mod rng;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The entry macro: a config attribute plus `#[test]` functions whose
/// arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn commutes(a in 0u32..10, b in 0u32..10) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::config::ProptestConfig = $cfg;
                // All arguments form one tuple strategy so a failing
                // case can be shrunk component-by-component. Sampling
                // order (and hence the RNG stream) matches the old
                // per-argument form exactly.
                let __strategy = ($(($strat),)+);
                $crate::test_runner::run_shrinking(
                    &__config,
                    stringify!($name),
                    &__strategy,
                    stringify!(($($pat),+)),
                    |($($pat,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_cfg ($crate::config::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Fail the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Discard the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Choose uniformly among several strategies producing the same value
/// type. Weighted arms (`w => strat`) are accepted and the weights are
/// honored proportionally.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
