//! `any::<T>()` — full-domain strategies for the primitive types.

use crate::rng::TestRng;
use crate::strategy::{SampleResult, Strategy};
use std::fmt::Debug;
use std::marker::PhantomData;

pub trait Arbitrary: Sized + Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Marker strategy for "any value of T, bits chosen uniformly".
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Any<T> {
    fn new() -> Self {
        Any(PhantomData)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> SampleResult<$t> {
                Ok(rng.next_u64() as $t)
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                crate::strategy::shrink_int_toward_zero(*v as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any::new()
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats sample raw bit patterns, so NaN and infinities occur — the
// same contract as real proptest's `any::<f64>()`; pair with
// `prop_filter` for finite-only domains.
impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<f64> {
        Ok(f64::from_bits(rng.next_u64()))
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;
    fn arbitrary() -> Any<f64> {
        Any::new()
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<f32> {
        Ok(f32::from_bits(rng.next_u32()))
    }
}

impl Arbitrary for f32 {
    type Strategy = Any<f32>;
    fn arbitrary() -> Any<f32> {
        Any::new()
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<bool> {
        Ok(rng.next_u64() & 1 == 1)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_sign_and_magnitude() {
        let mut rng = TestRng::new(11);
        let s = any::<i64>();
        let vals: Vec<i64> = (0..64).map(|_| s.sample(&mut rng).unwrap()).collect();
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v > 0));
    }

    #[test]
    fn u8_reaches_both_halves() {
        let mut rng = TestRng::new(12);
        let s = any::<u8>();
        let vals: Vec<u8> = (0..256).map(|_| s.sample(&mut rng).unwrap()).collect();
        assert!(vals.iter().any(|&v| v < 128) && vals.iter().any(|&v| v >= 128));
    }
}
