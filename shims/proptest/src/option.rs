//! `proptest::option::of` — optional values.

use crate::rng::TestRng;
use crate::strategy::{SampleResult, Strategy};

pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` three times out of four (matching real proptest's default
/// weighting), `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> SampleResult<Option<S::Value>> {
        if rng.u64_below(4) == 0 {
            Ok(None)
        } else {
            Ok(Some(self.inner.sample(rng)?))
        }
    }

    fn shrink(&self, v: &Option<S::Value>) -> Vec<Option<S::Value>> {
        match v {
            None => Vec::new(),
            Some(x) => std::iter::once(None)
                .chain(self.inner.shrink(x).into_iter().map(Some))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::new(9);
        let s = of(0u32..100);
        let vals: Vec<Option<u32>> = (0..200).map(|_| s.sample(&mut rng).unwrap()).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().flatten().all(|&v| v < 100));
    }
}
