//! Offline shim for `parking_lot`: the non-poisoning `Mutex` and the
//! `Condvar` whose `wait` takes `&mut MutexGuard`, implemented over
//! `std::sync`. Poison errors are swallowed (parking_lot has no
//! poisoning), which is the semantic the workspace code relies on.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Non-poisoning mutual exclusion, `parking_lot::Mutex` compatible.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], where the std guard must be moved out by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Condition variable whose `wait` re-locks through a `&mut` guard,
/// `parking_lot::Condvar` compatible.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block; the lock is
    /// re-acquired in place before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until `cond` returns false (parking_lot's `wait_while`).
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut cond: impl FnMut(&mut T) -> bool,
    ) {
        while cond(&mut **guard) {
            self.wait(guard);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
