//! End-to-end tests of the real execution engine: threads-as-ranks
//! compressing synthetic Nyx data and writing a shared h5lite file,
//! then reading it back and checking the error bound.

use pfsim::BandwidthModel;
use predwrite::{
    run_real, ExtraSpacePolicy, Method, RankFieldData, RealConfig, ReservationTopology, RunResult,
};
use ratiomodel::Models;
use std::path::PathBuf;
use szlite::{Config, Dims};
use testutil::TempPath;
use workloads::{nyx, Decomposition, NyxParams};

/// RAII temp path: the container file is removed when the guard drops,
/// even if an assertion fails mid-test.
fn tmp(name: &str) -> TempPath {
    TempPath::new(&format!("predwrite-{name}"), "h5l")
}

/// Build per-rank field data from a Nyx snapshot.
fn nyx_rank_data(side: usize, nranks: usize) -> (Vec<Vec<RankFieldData>>, Vec<Vec<f32>>) {
    let ds = nyx::snapshot(NyxParams::with_side(side));
    let dec = Decomposition::new(nranks, [side, side, side]);
    let bd = dec.block;
    let mut per_rank = Vec::with_capacity(nranks);
    for r in 0..nranks {
        let fields = ds
            .fields
            .iter()
            .map(|f| RankFieldData {
                name: f.name.clone(),
                data: dec.extract(f, r),
                dims: Dims::d3(bd[0], bd[1], bd[2]),
            })
            .collect();
        per_rank.push(fields);
    }
    let originals = ds.fields.iter().map(|f| f.data.clone()).collect();
    (per_rank, originals)
}

fn config(method: Method, path: PathBuf) -> RealConfig {
    RealConfig {
        method,
        configs: vec![Config::rel(1e-3); 6],
        models: Models::with_cthr(50e6),
        policy: ExtraSpacePolicy::new(1.25),
        bandwidth: BandwidthModel::tiny_for_tests(),
        throttle_scale: 0.5,
        sz_threads: 1,
        verify: false,
        path,
        reservation: ReservationTopology::Flat,
        faults: None,
    }
}

/// Reassemble a field from per-rank chunks (rank-ordered 1-D layout)
/// and compare against the original 3-D field per-rank block.
fn verify_within_bound(path: &PathBuf, data: &[Vec<RankFieldData>], eb_rel: f64, lossy: bool) {
    let reader = h5lite::H5Reader::open(path).unwrap();
    let nranks = data.len();
    for f in 0..data[0].len() {
        let name = &data[0][f].name;
        let stored = reader.read_f32(name).unwrap();
        let part_len = data[0][f].data.len();
        assert_eq!(stored.len(), part_len * nranks);
        // Resolve the relative bound against each rank's block range.
        for (r, rank_fields) in data.iter().enumerate() {
            let orig = &rank_fields[f].data;
            let chunk = &stored[r * part_len..(r + 1) * part_len];
            let (mn, mx) = orig
                .iter()
                .fold((f32::MAX, f32::MIN), |(a, b), &v| (a.min(v), b.max(v)));
            let eb = if lossy {
                (eb_rel * f64::from(mx - mn)).max(1e-30)
            } else {
                0.0
            };
            for (i, (&a, &b)) in orig.iter().zip(chunk).enumerate() {
                assert!(
                    (f64::from(a) - f64::from(b)).abs() <= eb,
                    "{name} rank {r} point {i}: {a} vs {b} (eb {eb})"
                );
            }
        }
    }
}

#[test]
fn overlap_reorder_end_to_end() {
    let (data, _) = nyx_rank_data(16, 8);
    let guard = tmp("reorder");
    let path = guard.path().to_path_buf();
    let res = run_real(&data, &config(Method::OverlapReorder, path.clone())).unwrap();
    assert!(res.total_time > 0.0);
    assert!(res.compressed_bytes > 0);
    assert!(res.compressed_bytes < res.raw_bytes);
    verify_within_bound(&path, &data, 1e-3, true);
}

#[test]
fn overlap_end_to_end() {
    let (data, _) = nyx_rank_data(16, 8);
    let guard = tmp("overlap");
    let path = guard.path().to_path_buf();
    let res = run_real(&data, &config(Method::Overlap, path.clone())).unwrap();
    assert!(
        res.breakdown.predict > 0.0,
        "prediction phase must be timed"
    );
    verify_within_bound(&path, &data, 1e-3, true);
}

#[test]
fn filter_collective_end_to_end() {
    let (data, _) = nyx_rank_data(16, 4);
    let guard = tmp("filter");
    let path = guard.path().to_path_buf();
    let res = run_real(&data, &config(Method::FilterCollective, path.clone())).unwrap();
    assert!(res.breakdown.compress > 0.0);
    assert_eq!(res.n_overflow, 0, "exact sizes never overflow");
    verify_within_bound(&path, &data, 1e-3, true);
}

#[test]
fn no_compression_end_to_end() {
    let (data, _) = nyx_rank_data(16, 4);
    let guard = tmp("nocomp");
    let path = guard.path().to_path_buf();
    let res = run_real(&data, &config(Method::NoCompression, path.clone())).unwrap();
    assert_eq!(res.compressed_bytes, res.raw_bytes);
    verify_within_bound(&path, &data, 0.0, false);
}

#[test]
fn tight_reservation_forces_overflow_and_data_survives() {
    // Failure injection: an (artificially) optimistic lossless-gain
    // model under-predicts sizes, and rspace = 1.0 leaves no slack →
    // partitions overflow; the file must still decode (Fig. 8 path).
    let (data, _) = nyx_rank_data(16, 8);
    let guard = tmp("overflow");
    let path = guard.path().to_path_buf();
    let mut cfg = config(Method::Overlap, path.clone());
    cfg.policy = ExtraSpacePolicy::new(1.0);
    cfg.models.gain = ratiomodel::LosslessGain {
        floor: 0.02,
        half_run: 0.05,
    };
    let res = run_real(&data, &cfg).unwrap();
    assert!(
        res.n_overflow > 0,
        "expected overflows with rspace=1.0 (got {})",
        res.n_overflow
    );
    assert!(res.overflow_bytes > 0);
    verify_within_bound(&path, &data, 1e-3, true);
}

#[test]
fn engine_verification_passes_for_all_methods() {
    // The opt-in verify phase re-reads the file through the pipelined
    // reader and checks every element; it must pass for every method
    // and record its wall clock in the breakdown.
    let (data, _) = nyx_rank_data(16, 4);
    for method in Method::ALL {
        let guard = tmp(&format!("verify-{}", method.label()));
        let path = guard.path().to_path_buf();
        let mut cfg = config(method, path.clone());
        cfg.verify = true;
        cfg.sz_threads = 2; // exercise the pooled decode path
        let res = run_real(&data, &cfg).unwrap();
        assert!(
            res.breakdown.verify > 0.0,
            "{method:?}: verify phase must be timed"
        );
    }
}

#[test]
fn engine_verification_survives_overflow_redirection() {
    // Overflowed partitions store their tail past the reserved region;
    // the pipelined reader must reassemble prefix + tail before decode
    // or verification would fail.
    let (data, _) = nyx_rank_data(16, 8);
    let guard = tmp("verify-overflow");
    let path = guard.path().to_path_buf();
    let mut cfg = config(Method::Overlap, path.clone());
    cfg.policy = ExtraSpacePolicy::new(1.0);
    cfg.models.gain = ratiomodel::LosslessGain {
        floor: 0.02,
        half_run: 0.05,
    };
    cfg.verify = true;
    cfg.sz_threads = 4;
    let res = run_real(&data, &cfg).unwrap();
    assert!(res.n_overflow > 0, "setup must force overflow");
    assert!(res.breakdown.verify > 0.0);
}

#[test]
fn standalone_verify_reports_per_field() {
    let (data, _) = nyx_rank_data(16, 4);
    let guard = tmp("verify-standalone");
    let path = guard.path().to_path_buf();
    let cfg = config(Method::OverlapReorder, path.clone());
    run_real(&data, &cfg).unwrap();
    let report = predwrite::verify_file(&path, &data, Some(&cfg.configs), 2).unwrap();
    assert!(report.ok());
    assert_eq!(report.fields.len(), 6);
    assert_eq!(report.n_points(), 6 * 16 * 16 * 16);
    for f in &report.fields {
        assert!(
            f.max_abs_err <= f.max_bound,
            "{}: {} > {}",
            f.name,
            f.max_abs_err,
            f.max_bound
        );
    }
}

#[test]
fn verify_detects_corruption() {
    // Flip bytes in the middle of the stored chunk data; verification
    // must either surface a decode error or report a bound violation —
    // silently passing would defeat its purpose.
    let (data, _) = nyx_rank_data(16, 4);
    let guard = tmp("verify-corrupt");
    let path = guard.path().to_path_buf();
    let cfg = config(Method::Overlap, path.clone());
    run_real(&data, &cfg).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Corrupt a swath of chunk payload (past the 32-byte superblock,
    // well before the trailing metadata table).
    let start = 200;
    for b in bytes.iter_mut().skip(start).take(64) {
        *b ^= 0xA5;
    }
    std::fs::write(&path, &bytes).unwrap();
    match predwrite::verify_file(&path, &data, Some(&cfg.configs), 2) {
        Err(_) => {}                         // decode failure: detected
        Ok(report) => assert!(!report.ok()), // or bound violation
    }
}

#[test]
fn methods_agree_on_compressed_bytes() {
    // Filter and overlap paths compress identical data with identical
    // configs; totals must match exactly (deterministic compressor).
    let (data, _) = nyx_rank_data(16, 4);
    let guard_p1 = tmp("agree1");
    let p1 = guard_p1.path().to_path_buf();
    let guard_p2 = tmp("agree2");
    let p2 = guard_p2.path().to_path_buf();
    let r1 = run_real(&data, &config(Method::FilterCollective, p1.clone())).unwrap();
    let r2 = run_real(&data, &config(Method::OverlapReorder, p2.clone())).unwrap();
    assert_eq!(r1.compressed_bytes, r2.compressed_bytes);
}

#[test]
fn run_results_have_consistent_storage_accounting() {
    let (data, _) = nyx_rank_data(16, 4);
    let guard = tmp("storage");
    let path = guard.path().to_path_buf();
    let res: RunResult = run_real(&data, &config(Method::Overlap, path.clone())).unwrap();
    // File contains at least the compressed in-slot bytes plus header.
    assert!(res.file_bytes > res.compressed_bytes.saturating_sub(res.overflow_bytes));
    assert!(res.effective_ratio() <= res.ideal_ratio());
}

#[test]
fn rejects_mismatched_inputs() {
    let (mut data, _) = nyx_rank_data(16, 4);
    data[1].pop(); // rank 1 has one fewer field
    let guard = tmp("reject");
    let path = guard.path().to_path_buf();
    assert!(run_real(&data, &config(Method::Overlap, path)).is_err());
}

#[test]
fn sharded_reservation_file_byte_identical_to_flat() {
    // The acceptance pin of the scale-out path: at 8 ranks the
    // two-level reservation collective must produce a byte-for-byte
    // identical container to the flat all-gather — same offsets, same
    // reservations, same data_end — for every group size, including
    // ones that leave a short last group.
    let (data, _) = nyx_rank_data(16, 8);
    let guard_flat = tmp("topo-flat");
    let flat_path = guard_flat.path().to_path_buf();
    run_real(&data, &config(Method::Overlap, flat_path.clone())).unwrap();
    let flat_bytes = std::fs::read(&flat_path).unwrap();
    for group_size in [0, 1, 2, 3, 8] {
        let guard = tmp(&format!("topo-sharded-{group_size}"));
        let path = guard.path().to_path_buf();
        let mut cfg = config(Method::Overlap, path.clone());
        cfg.reservation = ReservationTopology::Sharded { group_size };
        run_real(&data, &cfg).unwrap();
        let sharded_bytes = std::fs::read(&path).unwrap();
        assert!(
            flat_bytes == sharded_bytes,
            "group_size {group_size}: sharded container differs from flat \
             ({} vs {} bytes)",
            sharded_bytes.len(),
            flat_bytes.len()
        );
    }
}

#[test]
fn sharded_reservation_survives_overflow_and_verifies() {
    // Under-predicted sizes overflow past data_end; the sharded
    // planner's data_end must agree with the flat one or the overflow
    // region would land elsewhere and verification would fail.
    let (data, _) = nyx_rank_data(16, 8);
    let guard = tmp("topo-overflow");
    let path = guard.path().to_path_buf();
    let mut cfg = config(Method::OverlapReorder, path.clone());
    cfg.policy = ExtraSpacePolicy::new(1.0);
    cfg.models.gain = ratiomodel::LosslessGain {
        floor: 0.02,
        half_run: 0.05,
    };
    cfg.reservation = ReservationTopology::Sharded { group_size: 3 };
    cfg.verify = true;
    let res = run_real(&data, &cfg).unwrap();
    assert!(res.n_overflow > 0, "setup must force overflow");
    verify_within_bound(&path, &data, 1e-3, true);
}
