//! Extra-space policy — the paper's §III-D and Eq. (3).
//!
//! Offsets are computed from *predicted* compressed sizes, and the
//! prediction has no error bound, so each partition's reservation is
//! inflated by the extra-space ratio `Rspace`. Above predicted ratio
//! 32× the ratio model degrades (Huffman saturates at 32× for f32 and
//! the RLE-based lossless estimate is weaker), so the reservation is
//! additionally widened by Eq. (3):
//!
//! ```text
//! rspace = min(2, 1 + (Rspace − 1) · 4)      when r_comp > 32
//! ```
//!
//! The supported band is `[1.1, 1.43]` (below 1.1 overflow handling
//! dominates; above 1.43 storage is wasted), default 1.25.

/// Extra-space reservation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtraSpacePolicy {
    /// Base extra-space ratio `Rspace` (≥ 1).
    pub rspace: f64,
}

/// The paper's supported band.
pub const RSPACE_MIN: f64 = 1.1;
/// Upper end of the paper's supported band.
pub const RSPACE_MAX: f64 = 1.43;
/// Predicted-ratio threshold above which Eq. (3) widens the reserve.
pub const HIGH_RATIO_THRESHOLD: f64 = 32.0;

impl Default for ExtraSpacePolicy {
    fn default() -> Self {
        ExtraSpacePolicy { rspace: 1.25 }
    }
}

impl ExtraSpacePolicy {
    /// Policy with a given base ratio. Values outside the paper's
    /// supported band are allowed (the sweeps in Fig. 9/14 probe them)
    /// but clamped to ≥ 1.
    pub fn new(rspace: f64) -> Self {
        ExtraSpacePolicy {
            rspace: rspace.max(1.0),
        }
    }

    /// Effective per-partition ratio after Eq. (3).
    pub fn effective(&self, predicted_ratio: f64) -> f64 {
        if predicted_ratio > HIGH_RATIO_THRESHOLD {
            (1.0 + (self.rspace - 1.0) * 4.0).min(2.0)
        } else {
            self.rspace
        }
    }

    /// Bytes to reserve for a partition with the given prediction.
    pub fn reserve_bytes(&self, predicted_bytes: u64, predicted_ratio: f64) -> u64 {
        ((predicted_bytes as f64) * self.effective(predicted_ratio)).ceil() as u64
    }
}

/// The paper's Fig. 9 mapping: a user weight trading write performance
/// (0.0) against storage efficiency (1.0), mapped onto the supported
/// `Rspace` band. Weight 0 favors performance (big reserve, 1.43);
/// weight 1 favors storage (small reserve, 1.1).
pub fn weight_to_rspace(weight: f64) -> f64 {
    let w = weight.clamp(0.0, 1.0);
    RSPACE_MAX - w * (RSPACE_MAX - RSPACE_MIN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_default() {
        assert_eq!(ExtraSpacePolicy::default().rspace, 1.25);
    }

    #[test]
    fn effective_below_threshold_is_base() {
        let p = ExtraSpacePolicy::new(1.25);
        assert_eq!(p.effective(10.0), 1.25);
        assert_eq!(p.effective(32.0), 1.25);
    }

    #[test]
    fn eq3_above_threshold() {
        let p = ExtraSpacePolicy::new(1.25);
        // 1 + 0.25·4 = 2.0
        assert_eq!(p.effective(40.0), 2.0);
        let q = ExtraSpacePolicy::new(1.1);
        // 1 + 0.1·4 = 1.4
        assert!((q.effective(40.0) - 1.4).abs() < 1e-12);
        // capped at 2
        let r = ExtraSpacePolicy::new(1.43);
        assert_eq!(r.effective(100.0), 2.0);
    }

    #[test]
    fn reserve_rounds_up() {
        let p = ExtraSpacePolicy::new(1.25);
        assert_eq!(p.reserve_bytes(100, 10.0), 125);
        assert_eq!(p.reserve_bytes(101, 10.0), 127); // 126.25 → 127
    }

    #[test]
    fn clamps_below_one() {
        assert_eq!(ExtraSpacePolicy::new(0.5).rspace, 1.0);
    }

    #[test]
    fn eq3_at_band_endpoints() {
        // Eq. 3 evaluated exactly at the supported band's ends:
        // RSPACE_MIN → 1 + 0.1·4 = 1.4; RSPACE_MAX → 1 + 0.43·4 = 2.72,
        // clamped to the cap of 2.
        let lo = ExtraSpacePolicy::new(RSPACE_MIN);
        assert!((lo.effective(HIGH_RATIO_THRESHOLD + 1e-9) - 1.4).abs() < 1e-9);
        let hi = ExtraSpacePolicy::new(RSPACE_MAX);
        assert_eq!(hi.effective(HIGH_RATIO_THRESHOLD + 1e-9), 2.0);
        // The widened value can never drop below the base ratio within
        // the supported band (would shrink reservations when the model
        // is least trustworthy).
        for rspace in [RSPACE_MIN, 1.2, 1.25, 1.3, RSPACE_MAX] {
            let p = ExtraSpacePolicy::new(rspace);
            assert!(p.effective(100.0) >= p.rspace);
        }
    }

    #[test]
    fn eq3_threshold_is_exclusive() {
        // Exactly at the threshold the base ratio applies; only strictly
        // above it does Eq. 3 widen.
        let p = ExtraSpacePolicy::new(RSPACE_MIN);
        assert_eq!(p.effective(HIGH_RATIO_THRESHOLD), RSPACE_MIN);
        assert!(p.effective(HIGH_RATIO_THRESHOLD.next_up()) > RSPACE_MIN);
    }

    #[test]
    fn reserve_bytes_at_band_endpoints() {
        // Below threshold the base ratio scales the prediction…
        assert_eq!(
            ExtraSpacePolicy::new(RSPACE_MIN).reserve_bytes(1000, 10.0),
            1100
        );
        assert_eq!(
            ExtraSpacePolicy::new(RSPACE_MAX).reserve_bytes(1000, 10.0),
            1430
        );
        // …above it the Eq. 3 widening applies (and caps at 2×).
        // 1 + (1.1−1)·4 is 1.4000000000000004 in f64, and reservations
        // round up, so the reserve is one byte over the ideal 1400.
        assert_eq!(
            ExtraSpacePolicy::new(RSPACE_MIN).reserve_bytes(1000, 50.0),
            1401
        );
        assert_eq!(
            ExtraSpacePolicy::new(RSPACE_MAX).reserve_bytes(1000, 50.0),
            2000
        );
        // Zero prediction reserves zero regardless of policy.
        assert_eq!(ExtraSpacePolicy::new(RSPACE_MAX).reserve_bytes(0, 50.0), 0);
    }

    #[test]
    fn weight_mapping_clamps_out_of_range() {
        // Weights outside [0, 1] clamp to the band endpoints, so the
        // policy can never leave the supported Rspace range.
        assert!((weight_to_rspace(-3.0) - RSPACE_MAX).abs() < 1e-12);
        assert!((weight_to_rspace(7.5) - RSPACE_MIN).abs() < 1e-12);
    }

    #[test]
    fn weight_mapping_endpoints() {
        assert!((weight_to_rspace(0.0) - RSPACE_MAX).abs() < 1e-12);
        assert!((weight_to_rspace(1.0) - RSPACE_MIN).abs() < 1e-12);
        let mid = weight_to_rspace(0.5);
        assert!(mid > RSPACE_MIN && mid < RSPACE_MAX);
        // monotone
        assert!(weight_to_rspace(0.2) > weight_to_rspace(0.8));
    }
}
