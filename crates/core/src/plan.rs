//! Shared-file layout planning from gathered predictions.
//!
//! After the all-gather of per-partition predicted sizes, **every rank
//! computes the same layout independently** (the paper's consistency
//! argument: identical inputs → identical offsets, no further
//! communication). The layout places each field's partitions
//! consecutively in rank order, each padded by the extra-space policy.

use crate::extraspace::ExtraSpacePolicy;

/// Prediction for one partition as distributed by the all-gather.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionPrediction {
    /// Predicted compressed bytes.
    pub bytes: u64,
    /// Predicted compression ratio (drives Eq. 3).
    pub ratio: f64,
}

/// Planned placement of one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSlot {
    /// Absolute offset in the shared file.
    pub offset: u64,
    /// Reserved length (prediction × effective extra-space ratio).
    pub reserved: u64,
    /// The prediction the reservation came from.
    pub predicted: u64,
}

/// Full layout: `slots[rank][field]` plus the end of the reserved
/// region (where overflow appends begin).
#[derive(Debug, Clone, PartialEq)]
pub struct WritePlan {
    /// Per-rank, per-field slots.
    pub slots: Vec<Vec<PartitionSlot>>,
    /// First byte offset of the layout.
    pub base: u64,
    /// One past the last reserved byte.
    pub data_end: u64,
}

impl WritePlan {
    /// Build the layout from gathered predictions
    /// (`predictions[rank][field]`), starting at `base`.
    ///
    /// Field-major placement: all ranks' partitions of field 0, then
    /// field 1, … — matching one HDF5 dataset per field with one chunk
    /// per rank.
    pub fn build(
        predictions: &[Vec<PartitionPrediction>],
        policy: &ExtraSpacePolicy,
        base: u64,
    ) -> WritePlan {
        let reserved: Vec<Vec<u64>> = predictions
            .iter()
            .map(|row| {
                row.iter()
                    .map(|p| policy.reserve_bytes(p.bytes, p.ratio))
                    .collect()
            })
            .collect();
        WritePlan::build_reserved(predictions, &reserved, base)
    }

    /// Build the layout with explicit per-partition reservations
    /// (`reserved[rank][field]`), e.g. from an adaptive per-field
    /// headroom policy. [`WritePlan::build`] is the uniform-policy
    /// specialization. Like `build`, the result is a pure function of
    /// its inputs, so every rank derives the identical layout from the
    /// gathered predictions.
    pub fn build_reserved(
        predictions: &[Vec<PartitionPrediction>],
        reserved: &[Vec<u64>],
        base: u64,
    ) -> WritePlan {
        let nranks = predictions.len();
        let nfields = predictions.first().map_or(0, Vec::len);
        debug_assert!(predictions.iter().all(|p| p.len() == nfields));
        debug_assert_eq!(reserved.len(), nranks);
        debug_assert!(reserved.iter().all(|r| r.len() == nfields));

        let mut slots = vec![
            vec![
                PartitionSlot {
                    offset: 0,
                    reserved: 0,
                    predicted: 0
                };
                nfields
            ];
            nranks
        ];
        let mut cursor = base;
        for f in 0..nfields {
            for (r, rank_preds) in predictions.iter().enumerate() {
                slots[r][f] = PartitionSlot {
                    offset: cursor,
                    reserved: reserved[r][f],
                    predicted: rank_preds[f].bytes,
                };
                cursor += reserved[r][f];
            }
        }
        WritePlan {
            slots,
            base,
            data_end: cursor,
        }
    }

    /// Total reserved bytes.
    pub fn reserved_total(&self) -> u64 {
        self.data_end - self.base
    }

    /// Check the invariant that slots are disjoint and sorted.
    pub fn is_disjoint(&self) -> bool {
        let mut all: Vec<(u64, u64)> = self
            .slots
            .iter()
            .flatten()
            .map(|s| (s.offset, s.reserved))
            .collect();
        all.sort_unstable();
        all.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0)
    }
}

/// Outcome of one partition's compression vs. its reservation: the
/// fitting prefix goes to the reserved slot, the excess to the
/// overflow region (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitSplit {
    /// Bytes written into the reserved slot.
    pub in_slot: u64,
    /// Excess bytes redirected to the overflow region.
    pub overflow: u64,
}

/// Split an actual compressed size against a reservation.
pub fn fit_split(actual: u64, reserved: u64) -> FitSplit {
    if actual <= reserved {
        FitSplit {
            in_slot: actual,
            overflow: 0,
        }
    } else {
        FitSplit {
            in_slot: reserved,
            overflow: actual - reserved,
        }
    }
}

/// Plan the overflow region: given gathered overflow sizes
/// (`overflow[rank][field]`), assign consecutive offsets starting at
/// `data_end`. Deterministic across ranks, like the main layout.
pub fn plan_overflow(overflow: &[Vec<u64>], data_end: u64) -> Vec<Vec<u64>> {
    let mut cursor = data_end;
    let nfields = overflow.first().map_or(0, Vec::len);
    let mut offsets = vec![vec![0u64; nfields]; overflow.len()];
    for f in 0..nfields {
        for (r, rank_ovf) in overflow.iter().enumerate() {
            offsets[r][f] = cursor;
            cursor += rank_ovf[f];
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preds(vals: &[&[u64]]) -> Vec<Vec<PartitionPrediction>> {
        vals.iter()
            .map(|row| {
                row.iter()
                    .map(|&b| PartitionPrediction {
                        bytes: b,
                        ratio: 10.0,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn layout_is_field_major_and_disjoint() {
        let p = preds(&[&[100, 200], &[50, 80]]);
        let plan = WritePlan::build(&p, &ExtraSpacePolicy::new(1.0), 32);
        assert!(plan.is_disjoint());
        // field 0: rank0 @32 len100, rank1 @132 len50; field 1 follows.
        assert_eq!(plan.slots[0][0].offset, 32);
        assert_eq!(plan.slots[1][0].offset, 132);
        assert_eq!(plan.slots[0][1].offset, 182);
        assert_eq!(plan.slots[1][1].offset, 382);
        assert_eq!(plan.data_end, 462);
        assert_eq!(plan.reserved_total(), 430);
    }

    #[test]
    fn extra_space_inflates_slots() {
        let p = preds(&[&[100]]);
        let plan = WritePlan::build(&p, &ExtraSpacePolicy::new(1.25), 0);
        assert_eq!(plan.slots[0][0].reserved, 125);
    }

    #[test]
    fn eq3_applies_per_partition() {
        let p = vec![vec![
            PartitionPrediction {
                bytes: 100,
                ratio: 10.0,
            },
            PartitionPrediction {
                bytes: 100,
                ratio: 50.0,
            },
        ]];
        let plan = WritePlan::build(&p, &ExtraSpacePolicy::new(1.25), 0);
        assert_eq!(plan.slots[0][0].reserved, 125);
        assert_eq!(plan.slots[0][1].reserved, 200); // widened by Eq. 3
    }

    #[test]
    fn build_reserved_honors_per_partition_reserves() {
        let p = preds(&[&[100, 200], &[50, 80]]);
        let reserved = vec![vec![110u64, 260], vec![50, 96]];
        let plan = WritePlan::build_reserved(&p, &reserved, 32);
        assert!(plan.is_disjoint());
        // field-major: f0 r0 @32 (110), f0 r1 @142 (50), f1 r0 @192
        // (260), f1 r1 @452 (96).
        assert_eq!(plan.slots[0][0].reserved, 110);
        assert_eq!(plan.slots[1][0].offset, 142);
        assert_eq!(plan.slots[0][1].offset, 192);
        assert_eq!(plan.slots[1][1].offset, 452);
        assert_eq!(plan.data_end, 548);
        // Predictions pass through untouched.
        assert_eq!(plan.slots[1][1].predicted, 80);
    }

    #[test]
    fn build_matches_build_reserved_with_policy_reserves() {
        let p = preds(&[&[100, 200], &[50, 80]]);
        let policy = ExtraSpacePolicy::new(1.25);
        let reserved: Vec<Vec<u64>> = p
            .iter()
            .map(|row| {
                row.iter()
                    .map(|q| policy.reserve_bytes(q.bytes, q.ratio))
                    .collect()
            })
            .collect();
        assert_eq!(
            WritePlan::build(&p, &policy, 64),
            WritePlan::build_reserved(&p, &reserved, 64)
        );
    }

    #[test]
    fn deterministic_rebuild() {
        let p = preds(&[&[10, 20, 30], &[5, 15, 25], &[7, 7, 7]]);
        let a = WritePlan::build(&p, &ExtraSpacePolicy::default(), 64);
        let b = WritePlan::build(&p, &ExtraSpacePolicy::default(), 64);
        assert_eq!(a, b);
    }

    #[test]
    fn fit_split_cases() {
        assert_eq!(
            fit_split(80, 100),
            FitSplit {
                in_slot: 80,
                overflow: 0
            }
        );
        assert_eq!(
            fit_split(100, 100),
            FitSplit {
                in_slot: 100,
                overflow: 0
            }
        );
        assert_eq!(
            fit_split(130, 100),
            FitSplit {
                in_slot: 100,
                overflow: 30
            }
        );
    }

    #[test]
    fn fit_split_conserves_bytes() {
        for actual in [0u64, 1, 99, 100, 101, 1000] {
            let s = fit_split(actual, 100);
            assert_eq!(s.in_slot + s.overflow, actual);
            assert!(s.in_slot <= 100);
        }
    }

    #[test]
    fn overflow_offsets_consecutive() {
        let ovf = vec![vec![0, 30], vec![10, 0]];
        let off = plan_overflow(&ovf, 1000);
        // field-major: rank0/f0 @1000 (len 0), rank1/f0 @1000 (len 10),
        // rank0/f1 @1010 (30), rank1/f1 @1040 (0).
        assert_eq!(off[0][0], 1000);
        assert_eq!(off[1][0], 1000);
        assert_eq!(off[0][1], 1010);
        assert_eq!(off[1][1], 1040);
    }

    #[test]
    fn plan_overflow_zero_overflow() {
        // No partition overflowed: every offset is data_end and the
        // region consumes no space (the next append would start there).
        let ovf = vec![vec![0u64; 3]; 4];
        let off = plan_overflow(&ovf, 4096);
        assert!(off.iter().flatten().all(|&o| o == 4096));
        // An appended region planned right after must also start at
        // data_end — zero overflow moved the cursor by nothing.
        let again = plan_overflow(&[vec![8]], 4096);
        assert_eq!(again[0][0], 4096);
    }

    #[test]
    fn plan_overflow_all_overflow() {
        // Every partition overflowed: spans must tile [data_end, end)
        // contiguously in field-major order with no gaps or overlap.
        let ovf = vec![vec![10u64, 40], vec![20, 5]];
        let off = plan_overflow(&ovf, 100);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (r, row) in off.iter().enumerate() {
            for (f, &o) in row.iter().enumerate() {
                assert!(o >= 100);
                spans.push((o, ovf[r][f]));
            }
        }
        spans.sort_unstable();
        let total: u64 = ovf.iter().flatten().sum();
        let mut cursor = 100;
        for (o, len) in spans {
            assert_eq!(o, cursor, "gap or overlap in overflow layout");
            cursor += len;
        }
        assert_eq!(cursor, 100 + total);
    }

    #[test]
    fn plan_overflow_empty_inputs() {
        assert!(plan_overflow(&[], 500).is_empty());
        let off = plan_overflow(&[vec![], vec![]], 500);
        assert_eq!(off, vec![Vec::<u64>::new(), Vec::new()]);
    }

    #[test]
    fn empty_plan() {
        let plan = WritePlan::build(&[], &ExtraSpacePolicy::default(), 0);
        assert_eq!(plan.data_end, 0);
        assert!(plan.is_disjoint());
    }
}
