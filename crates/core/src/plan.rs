//! Shared-file layout planning from gathered predictions.
//!
//! After the all-gather of per-partition predicted sizes, **every rank
//! computes the same layout independently** (the paper's consistency
//! argument: identical inputs → identical offsets, no further
//! communication). The layout places each field's partitions
//! consecutively in rank order, each padded by the extra-space policy.

use crate::extraspace::ExtraSpacePolicy;

/// Prediction for one partition as distributed by the all-gather.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionPrediction {
    /// Predicted compressed bytes.
    pub bytes: u64,
    /// Predicted compression ratio (drives Eq. 3).
    pub ratio: f64,
}

/// Planned placement of one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSlot {
    /// Absolute offset in the shared file.
    pub offset: u64,
    /// Reserved length (prediction × effective extra-space ratio).
    pub reserved: u64,
    /// The prediction the reservation came from.
    pub predicted: u64,
}

/// Full layout: `slots[rank][field]` plus the end of the reserved
/// region (where overflow appends begin).
#[derive(Debug, Clone, PartialEq)]
pub struct WritePlan {
    /// Per-rank, per-field slots.
    pub slots: Vec<Vec<PartitionSlot>>,
    /// First byte offset of the layout.
    pub base: u64,
    /// One past the last reserved byte.
    pub data_end: u64,
}

impl WritePlan {
    /// Build the layout from gathered predictions
    /// (`predictions[rank][field]`), starting at `base`.
    ///
    /// Field-major placement: all ranks' partitions of field 0, then
    /// field 1, … — matching one HDF5 dataset per field with one chunk
    /// per rank.
    pub fn build(
        predictions: &[Vec<PartitionPrediction>],
        policy: &ExtraSpacePolicy,
        base: u64,
    ) -> WritePlan {
        let reserved: Vec<Vec<u64>> = predictions
            .iter()
            .map(|row| {
                row.iter()
                    .map(|p| policy.reserve_bytes(p.bytes, p.ratio))
                    .collect()
            })
            .collect();
        WritePlan::build_reserved(predictions, &reserved, base)
    }

    /// Build the layout with explicit per-partition reservations
    /// (`reserved[rank][field]`), e.g. from an adaptive per-field
    /// headroom policy. [`WritePlan::build`] is the uniform-policy
    /// specialization. Like `build`, the result is a pure function of
    /// its inputs, so every rank derives the identical layout from the
    /// gathered predictions.
    pub fn build_reserved(
        predictions: &[Vec<PartitionPrediction>],
        reserved: &[Vec<u64>],
        base: u64,
    ) -> WritePlan {
        let nranks = predictions.len();
        let nfields = predictions.first().map_or(0, Vec::len);
        debug_assert!(predictions.iter().all(|p| p.len() == nfields));
        debug_assert_eq!(reserved.len(), nranks);
        debug_assert!(reserved.iter().all(|r| r.len() == nfields));

        let mut slots = vec![
            vec![
                PartitionSlot {
                    offset: 0,
                    reserved: 0,
                    predicted: 0
                };
                nfields
            ];
            nranks
        ];
        let mut cursor = base;
        for f in 0..nfields {
            for (r, rank_preds) in predictions.iter().enumerate() {
                slots[r][f] = PartitionSlot {
                    offset: cursor,
                    reserved: reserved[r][f],
                    predicted: rank_preds[f].bytes,
                };
                cursor += reserved[r][f];
            }
        }
        WritePlan {
            slots,
            base,
            data_end: cursor,
        }
    }

    /// Total reserved bytes.
    pub fn reserved_total(&self) -> u64 {
        self.data_end - self.base
    }

    /// One rank's view of the layout — everything the write engine
    /// actually consumes for rank `rank` (its own slot row plus the
    /// shared overflow base). The sharded reservation path builds this
    /// view directly without materializing the full `slots` matrix;
    /// [`WritePlan::rank_view`] is the flat path's equivalent
    /// projection, pinned equal by tests.
    pub fn rank_view(&self, rank: usize) -> RankPlanView {
        RankPlanView {
            slots: self.slots[rank].clone(),
            base: self.base,
            data_end: self.data_end,
        }
    }

    /// Check the invariant that slots are disjoint and sorted.
    pub fn is_disjoint(&self) -> bool {
        let mut all: Vec<(u64, u64)> = self
            .slots
            .iter()
            .flatten()
            .map(|s| (s.offset, s.reserved))
            .collect();
        all.sort_unstable();
        all.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0)
    }
}

/// One rank's slice of a [`WritePlan`]: its own per-field slots plus
/// the shared layout bounds. This is the complete planner output a
/// rank needs to write — offsets of its own partitions and the
/// `data_end` where overflow appends begin.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPlanView {
    /// This rank's slot per field.
    pub slots: Vec<PartitionSlot>,
    /// First byte offset of the layout.
    pub base: u64,
    /// One past the last reserved byte (start of the overflow region).
    pub data_end: u64,
}

/// Build one rank's layout view from a two-level (sharded) reservation
/// collective, without any rank ever holding the full
/// `reserved[rank][field]` matrix.
///
/// Ranks are partitioned into contiguous groups in ascending rank
/// order (group `g` holds ranks `[g·s, (g+1)·s)` for group size `s`,
/// the last group possibly short). Each rank knows:
///
/// - `group_totals[g][f]`: every group's summed reservation per field
///   (from the small inter-group exchange of leader totals),
/// - `member_preds[m][f]` / `member_reserves[m][f]`: the per-member
///   predictions and reservations of **its own** group only (from the
///   group-local all-gather), with `m` the group-local rank,
/// - its own position: `my_group`, `my_member`.
///
/// Because the flat layout is field-major with ranks ascending, a
/// rank's offset decomposes exactly into whole-field totals + whole
/// preceding groups + the local prefix within its group:
///
/// ```text
/// offset(f) = base + Σ_{f'<f} Σ_g group_totals[g][f']      (fields before)
///                  + Σ_{g<my_group} group_totals[g][f]      (groups before, this field)
///                  + Σ_{m<my_member} member_reserves[m][f]  (members before, this group)
/// ```
///
/// All sums are exact `u64` adds — the same adds [`WritePlan::build_reserved`]
/// performs in a different order — so the view is **byte-identical**
/// to the flat path's [`WritePlan::rank_view`] (pinned by tests and
/// the CI smoke). Per-rank collective cost drops from O(ranks·fields)
/// to O(group·fields + n_groups·fields).
pub fn build_rank_view(
    group_totals: &[Vec<u64>],
    my_group: usize,
    member_preds: &[Vec<PartitionPrediction>],
    member_reserves: &[Vec<u64>],
    my_member: usize,
    base: u64,
) -> RankPlanView {
    let nfields = member_preds.first().map_or(0, Vec::len);
    debug_assert!(group_totals.iter().all(|g| g.len() == nfields));
    debug_assert_eq!(member_preds.len(), member_reserves.len());
    debug_assert!(my_group < group_totals.len());
    debug_assert!(my_member < member_preds.len());
    debug_assert_eq!(
        group_totals[my_group],
        (0..nfields)
            .map(|f| member_reserves.iter().map(|m| m[f]).sum::<u64>())
            .collect::<Vec<u64>>(),
        "exchanged total of own group disagrees with the local gather"
    );

    let mut slots = Vec::with_capacity(nfields);
    let mut field_start = base;
    for f in 0..nfields {
        let field_total: u64 = group_totals.iter().map(|g| g[f]).sum();
        let groups_before: u64 = group_totals[..my_group].iter().map(|g| g[f]).sum();
        let members_before: u64 = member_reserves[..my_member].iter().map(|m| m[f]).sum();
        slots.push(PartitionSlot {
            offset: field_start + groups_before + members_before,
            reserved: member_reserves[my_member][f],
            predicted: member_preds[my_member][f].bytes,
        });
        field_start += field_total;
    }
    RankPlanView {
        slots,
        base,
        data_end: field_start,
    }
}

/// Per-rank reservation-collective wire cost, bytes received per step.
///
/// The flat path all-gathers one `(u64, f64, f64)` triple per
/// (rank, field) to every rank; the sharded path gathers triples only
/// within a group of `s` ranks plus one `u64` total per (group, field)
/// from the inter-group exchange. Used by the scale simulator and the
/// bench to assert sub-linear growth (at `s = √ranks` the cost is
/// O(√ranks · fields) per rank instead of O(ranks · fields)).
pub fn reservation_wire_bytes(nranks: usize, nfields: usize, group_size: Option<usize>) -> u64 {
    const TRIPLE: u64 = 24; // (u64, f64, f64)
    const TOTAL: u64 = 8; // u64 per-field group total
    match group_size {
        None => (nranks * nfields) as u64 * TRIPLE,
        Some(s) => {
            let s = s.clamp(1, nranks);
            let n_groups = nranks.div_ceil(s);
            (s * nfields) as u64 * TRIPLE + (n_groups * nfields) as u64 * TOTAL
        }
    }
}

/// Outcome of one partition's compression vs. its reservation: the
/// fitting prefix goes to the reserved slot, the excess to the
/// overflow region (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitSplit {
    /// Bytes written into the reserved slot.
    pub in_slot: u64,
    /// Excess bytes redirected to the overflow region.
    pub overflow: u64,
}

/// Split an actual compressed size against a reservation.
pub fn fit_split(actual: u64, reserved: u64) -> FitSplit {
    if actual <= reserved {
        FitSplit {
            in_slot: actual,
            overflow: 0,
        }
    } else {
        FitSplit {
            in_slot: reserved,
            overflow: actual - reserved,
        }
    }
}

/// Plan the overflow region: given gathered overflow sizes
/// (`overflow[rank][field]`), assign consecutive offsets starting at
/// `data_end`. Deterministic across ranks, like the main layout.
pub fn plan_overflow(overflow: &[Vec<u64>], data_end: u64) -> Vec<Vec<u64>> {
    let mut cursor = data_end;
    let nfields = overflow.first().map_or(0, Vec::len);
    let mut offsets = vec![vec![0u64; nfields]; overflow.len()];
    for f in 0..nfields {
        for (r, rank_ovf) in overflow.iter().enumerate() {
            offsets[r][f] = cursor;
            cursor += rank_ovf[f];
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preds(vals: &[&[u64]]) -> Vec<Vec<PartitionPrediction>> {
        vals.iter()
            .map(|row| {
                row.iter()
                    .map(|&b| PartitionPrediction {
                        bytes: b,
                        ratio: 10.0,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn layout_is_field_major_and_disjoint() {
        let p = preds(&[&[100, 200], &[50, 80]]);
        let plan = WritePlan::build(&p, &ExtraSpacePolicy::new(1.0), 32);
        assert!(plan.is_disjoint());
        // field 0: rank0 @32 len100, rank1 @132 len50; field 1 follows.
        assert_eq!(plan.slots[0][0].offset, 32);
        assert_eq!(plan.slots[1][0].offset, 132);
        assert_eq!(plan.slots[0][1].offset, 182);
        assert_eq!(plan.slots[1][1].offset, 382);
        assert_eq!(plan.data_end, 462);
        assert_eq!(plan.reserved_total(), 430);
    }

    #[test]
    fn extra_space_inflates_slots() {
        let p = preds(&[&[100]]);
        let plan = WritePlan::build(&p, &ExtraSpacePolicy::new(1.25), 0);
        assert_eq!(plan.slots[0][0].reserved, 125);
    }

    #[test]
    fn eq3_applies_per_partition() {
        let p = vec![vec![
            PartitionPrediction {
                bytes: 100,
                ratio: 10.0,
            },
            PartitionPrediction {
                bytes: 100,
                ratio: 50.0,
            },
        ]];
        let plan = WritePlan::build(&p, &ExtraSpacePolicy::new(1.25), 0);
        assert_eq!(plan.slots[0][0].reserved, 125);
        assert_eq!(plan.slots[0][1].reserved, 200); // widened by Eq. 3
    }

    #[test]
    fn build_reserved_honors_per_partition_reserves() {
        let p = preds(&[&[100, 200], &[50, 80]]);
        let reserved = vec![vec![110u64, 260], vec![50, 96]];
        let plan = WritePlan::build_reserved(&p, &reserved, 32);
        assert!(plan.is_disjoint());
        // field-major: f0 r0 @32 (110), f0 r1 @142 (50), f1 r0 @192
        // (260), f1 r1 @452 (96).
        assert_eq!(plan.slots[0][0].reserved, 110);
        assert_eq!(plan.slots[1][0].offset, 142);
        assert_eq!(plan.slots[0][1].offset, 192);
        assert_eq!(plan.slots[1][1].offset, 452);
        assert_eq!(plan.data_end, 548);
        // Predictions pass through untouched.
        assert_eq!(plan.slots[1][1].predicted, 80);
    }

    #[test]
    fn build_matches_build_reserved_with_policy_reserves() {
        let p = preds(&[&[100, 200], &[50, 80]]);
        let policy = ExtraSpacePolicy::new(1.25);
        let reserved: Vec<Vec<u64>> = p
            .iter()
            .map(|row| {
                row.iter()
                    .map(|q| policy.reserve_bytes(q.bytes, q.ratio))
                    .collect()
            })
            .collect();
        assert_eq!(
            WritePlan::build(&p, &policy, 64),
            WritePlan::build_reserved(&p, &reserved, 64)
        );
    }

    #[test]
    fn deterministic_rebuild() {
        let p = preds(&[&[10, 20, 30], &[5, 15, 25], &[7, 7, 7]]);
        let a = WritePlan::build(&p, &ExtraSpacePolicy::default(), 64);
        let b = WritePlan::build(&p, &ExtraSpacePolicy::default(), 64);
        assert_eq!(a, b);
    }

    #[test]
    fn fit_split_cases() {
        assert_eq!(
            fit_split(80, 100),
            FitSplit {
                in_slot: 80,
                overflow: 0
            }
        );
        assert_eq!(
            fit_split(100, 100),
            FitSplit {
                in_slot: 100,
                overflow: 0
            }
        );
        assert_eq!(
            fit_split(130, 100),
            FitSplit {
                in_slot: 100,
                overflow: 30
            }
        );
    }

    #[test]
    fn fit_split_conserves_bytes() {
        for actual in [0u64, 1, 99, 100, 101, 1000] {
            let s = fit_split(actual, 100);
            assert_eq!(s.in_slot + s.overflow, actual);
            assert!(s.in_slot <= 100);
        }
    }

    #[test]
    fn overflow_offsets_consecutive() {
        let ovf = vec![vec![0, 30], vec![10, 0]];
        let off = plan_overflow(&ovf, 1000);
        // field-major: rank0/f0 @1000 (len 0), rank1/f0 @1000 (len 10),
        // rank0/f1 @1010 (30), rank1/f1 @1040 (0).
        assert_eq!(off[0][0], 1000);
        assert_eq!(off[1][0], 1000);
        assert_eq!(off[0][1], 1010);
        assert_eq!(off[1][1], 1040);
    }

    #[test]
    fn plan_overflow_zero_overflow() {
        // No partition overflowed: every offset is data_end and the
        // region consumes no space (the next append would start there).
        let ovf = vec![vec![0u64; 3]; 4];
        let off = plan_overflow(&ovf, 4096);
        assert!(off.iter().flatten().all(|&o| o == 4096));
        // An appended region planned right after must also start at
        // data_end — zero overflow moved the cursor by nothing.
        let again = plan_overflow(&[vec![8]], 4096);
        assert_eq!(again[0][0], 4096);
    }

    #[test]
    fn plan_overflow_all_overflow() {
        // Every partition overflowed: spans must tile [data_end, end)
        // contiguously in field-major order with no gaps or overlap.
        let ovf = vec![vec![10u64, 40], vec![20, 5]];
        let off = plan_overflow(&ovf, 100);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (r, row) in off.iter().enumerate() {
            for (f, &o) in row.iter().enumerate() {
                assert!(o >= 100);
                spans.push((o, ovf[r][f]));
            }
        }
        spans.sort_unstable();
        let total: u64 = ovf.iter().flatten().sum();
        let mut cursor = 100;
        for (o, len) in spans {
            assert_eq!(o, cursor, "gap or overlap in overflow layout");
            cursor += len;
        }
        assert_eq!(cursor, 100 + total);
    }

    #[test]
    fn plan_overflow_empty_inputs() {
        assert!(plan_overflow(&[], 500).is_empty());
        let off = plan_overflow(&[vec![], vec![]], 500);
        assert_eq!(off, vec![Vec::<u64>::new(), Vec::new()]);
    }

    #[test]
    fn empty_plan() {
        let plan = WritePlan::build(&[], &ExtraSpacePolicy::default(), 0);
        assert_eq!(plan.data_end, 0);
        assert!(plan.is_disjoint());
    }

    /// Emulate the sharded collective for one rank: slice out its
    /// group's rows and the per-group totals, exactly as the engine's
    /// group gather + inter-group exchange deliver them.
    fn sharded_view_of(
        preds: &[Vec<PartitionPrediction>],
        reserved: &[Vec<u64>],
        group_size: usize,
        rank: usize,
        base: u64,
    ) -> RankPlanView {
        let nranks = preds.len();
        let nfields = preds[0].len();
        let n_groups = nranks.div_ceil(group_size);
        let group_totals: Vec<Vec<u64>> = (0..n_groups)
            .map(|g| {
                let members = (g * group_size)..((g + 1) * group_size).min(nranks);
                (0..nfields)
                    .map(|f| members.clone().map(|r| reserved[r][f]).sum())
                    .collect()
            })
            .collect();
        let g = rank / group_size;
        let members = (g * group_size)..((g + 1) * group_size).min(nranks);
        let member_preds: Vec<Vec<PartitionPrediction>> =
            members.clone().map(|r| preds[r].clone()).collect();
        let member_reserves: Vec<Vec<u64>> = members.map(|r| reserved[r].clone()).collect();
        build_rank_view(
            &group_totals,
            g,
            &member_preds,
            &member_reserves,
            rank % group_size,
            base,
        )
    }

    #[test]
    fn sharded_view_equals_flat_view_every_rank_every_group_size() {
        // 7 ranks × 3 fields with irregular sizes; every group size
        // from 1 (all-singleton groups) to 7 (one group = flat) must
        // reproduce the flat plan's per-rank view exactly.
        let preds = preds(&[
            &[100, 7, 31],
            &[50, 900, 2],
            &[0, 13, 13],
            &[1, 1, 1],
            &[77, 0, 5],
            &[12, 64, 800],
            &[3, 3, 3],
        ]);
        let reserved: Vec<Vec<u64>> = preds
            .iter()
            .enumerate()
            .map(|(r, row)| row.iter().map(|p| p.bytes + r as u64 * 3).collect())
            .collect();
        let flat = WritePlan::build_reserved(&preds, &reserved, 4096);
        for gs in 1..=7 {
            for r in 0..7 {
                let view = sharded_view_of(&preds, &reserved, gs, r, 4096);
                assert_eq!(view, flat.rank_view(r), "rank {r} group_size {gs}");
            }
        }
    }

    #[test]
    fn wire_bytes_flat_vs_sharded() {
        // Flat at 4096 ranks × 4 fields: 4096·4·24 bytes per rank.
        assert_eq!(reservation_wire_bytes(4096, 4, None), 4096 * 4 * 24);
        // Sharded at √4096 = 64: 64·4·24 + 64·4·8 — 21× less wire.
        assert_eq!(
            reservation_wire_bytes(4096, 4, Some(64)),
            64 * 4 * 24 + 64 * 4 * 8
        );
        // Degenerate sizes clamp instead of dividing by zero.
        assert_eq!(
            reservation_wire_bytes(8, 2, Some(0)),
            reservation_wire_bytes(8, 2, Some(1))
        );
        assert_eq!(
            reservation_wire_bytes(8, 2, Some(99)),
            reservation_wire_bytes(8, 2, Some(8))
        );
    }
}
