//! Compression-order optimization — the paper's Algorithm 1.
//!
//! Per process, compression is serial and the async write stream is
//! serial, so for a queue `q` of fields with predicted compression
//! times `Pc(ℓ)` and write times `Pw(ℓ)` the finish time follows the
//! recurrence (procedure TIME):
//!
//! ```text
//! tc ← tc + Pc(ℓ)
//! tw ← Pw(ℓ) + max(tc, tw)
//! ```
//!
//! Total compression time is order-invariant; ordering only changes
//! how much write time hides under compute. The optimizer inserts each
//! field at the position minimizing TIME — O(n²) in the field count,
//! negligible next to compression itself (the paper measures 0.17 %
//! overhead even at n = 100).

/// Finish time of a queue under the pipeline recurrence (TIME in
/// Algorithm 1). `queue` holds field indices into `pc`/`pw`.
pub fn queue_time(queue: &[usize], pc: &[f64], pw: &[f64]) -> f64 {
    let mut tc = 0.0f64;
    let mut tw = 0.0f64;
    for &l in queue {
        tc += pc[l];
        tw = pw[l] + tc.max(tw);
    }
    tw
}

/// Optimize the compression order (SCHEDULING OPTIMIZATOR in
/// Algorithm 1): greedy best-insertion of each field.
pub fn optimize_order(pc: &[f64], pw: &[f64]) -> Vec<usize> {
    assert_eq!(pc.len(), pw.len());
    let mut queue: Vec<usize> = Vec::with_capacity(pc.len());
    for l in 0..pc.len() {
        let mut best_pos = 0usize;
        let mut best_time = f64::INFINITY;
        for pos in 0..=queue.len() {
            let mut candidate = queue.clone();
            candidate.insert(pos, l);
            let t = queue_time(&candidate, pc, pw);
            if t < best_time {
                best_time = t;
                best_pos = pos;
            }
        }
        queue.insert(best_pos, l);
    }
    queue
}

/// Convenience: identity order (methods without reordering).
pub fn identity_order(n: usize) -> Vec<usize> {
    (0..n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_recurrence_basic() {
        // One field: tc = 2, tw = 3 + max(2,0) = 5.
        assert_eq!(queue_time(&[0], &[2.0], &[3.0]), 5.0);
    }

    #[test]
    fn time_overlap_hides_writes() {
        // Two equal fields: comp 1 each, write 1 each.
        // Order [0,1]: tc=1, tw=2; tc=2, tw=1+max(2,2)=3.
        assert_eq!(queue_time(&[0, 1], &[1.0, 1.0], &[1.0, 1.0]), 3.0);
    }

    #[test]
    fn reorder_beats_bad_order() {
        // A field with a tiny write and one with a huge write: writing
        // the huge one first lets it overlap the other's compression.
        let pc = vec![1.0, 1.0];
        let pw = vec![0.1, 5.0];
        let bad = queue_time(&[0, 1], &pc, &pw); // small write first
        let good = queue_time(&[1, 0], &pc, &pw); // big write first
        assert!(good < bad, "good {good} bad {bad}");
        let opt = optimize_order(&pc, &pw);
        assert_eq!(queue_time(&opt, &pc, &pw), good);
    }

    #[test]
    fn optimizer_never_worse_than_identity() {
        // Pseudo-random instances.
        let mut x = 123456789u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 1000) as f64 / 100.0 + 0.01
        };
        for n in [1usize, 2, 3, 5, 8, 12] {
            for _ in 0..20 {
                let pc: Vec<f64> = (0..n).map(|_| rng()).collect();
                let pw: Vec<f64> = (0..n).map(|_| rng()).collect();
                let id = queue_time(&identity_order(n), &pc, &pw);
                let opt = queue_time(&optimize_order(&pc, &pw), &pc, &pw);
                assert!(opt <= id + 1e-9, "n={n}: opt {opt} > id {id}");
            }
        }
    }

    #[test]
    fn optimizer_matches_bruteforce_small() {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        let mut x = 42u64;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % 1000) as f64 / 100.0 + 0.01
        };
        for _ in 0..30 {
            let n = 5;
            let pc: Vec<f64> = (0..n).map(|_| rng()).collect();
            let pw: Vec<f64> = (0..n).map(|_| rng()).collect();
            let best = permutations(n)
                .into_iter()
                .map(|p| queue_time(&p, &pc, &pw))
                .fold(f64::INFINITY, f64::min);
            let opt = queue_time(&optimize_order(&pc, &pw), &pc, &pw);
            // The greedy insertion heuristic is not provably optimal,
            // but on pipeline instances it should be within a few
            // percent of brute force.
            assert!(opt <= best * 1.05 + 1e-9, "opt {opt} vs best {best}");
        }
    }

    #[test]
    fn total_compression_time_is_order_invariant() {
        let pc = vec![1.0, 2.0, 3.0];
        let pw = vec![0.5, 0.5, 0.5];
        // Last write ends at least sum(pc) regardless of order; the
        // compression contribution to TIME is the same.
        let sum: f64 = pc.iter().sum();
        for q in [[0, 1, 2], [2, 1, 0], [1, 2, 0]] {
            assert!(queue_time(&q, &pc, &pw) >= sum);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(queue_time(&[], &[], &[]), 0.0);
        assert_eq!(optimize_order(&[], &[]), Vec::<usize>::new());
        assert_eq!(optimize_order(&[1.0], &[1.0]), vec![0]);
    }
}
