//! Real execution engine: threads-as-ranks, real szlite compression,
//! real writes into an h5lite shared file through a bandwidth throttle.
//!
//! This engine runs the paper's full §III pipeline end to end —
//! prediction, all-gather, layout with extra space, (optionally
//! reordered) overlapped compress/async-write, overflow redirection,
//! metadata close — and the produced file decodes back within the
//! error bound. It is used by the integration tests and examples at
//! 4–64 ranks; scale sweeps use [`crate::sim`] with the same planner.

// Index-based loops below address several parallel arrays (data,
// plans, dataset ids) by the same field index; iterator zipping would
// obscure that correspondence.
#![allow(clippy::needless_range_loop)]

use crate::extraspace::ExtraSpacePolicy;
use crate::metrics::{Breakdown, Method, RunResult};
use crate::plan::{
    build_rank_view, fit_split, plan_overflow, reservation_wire_bytes, PartitionPrediction,
    RankPlanView, WritePlan,
};
use crate::scheduler::{identity_order, optimize_order};
use commsim::World;
use h5lite::{
    crc32c, ordered_fanout, workers_from_env_or, AttrValue, BufferPool, DatasetSpec, Dtype,
    EventSet, FilterSpec, H5File, SzFilterParams, SZLITE_FILTER_ID,
};
use pfsim::{BandwidthModel, FaultFs, Throttle};
use ratiomodel::Models;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use szlite::{compress_into, Config, Dims, ErrorBound, Scratch};

/// One rank's slice of one field.
#[derive(Debug, Clone)]
pub struct RankFieldData {
    /// Field name (dataset path in the file).
    pub name: String,
    /// The rank's partition values.
    pub data: Vec<f32>,
    /// Partition extents.
    pub dims: Dims,
}

/// Prediction/headroom policy of a streaming run (one engine step per
/// timestep). Defined here so both executors share it: the `timeline`
/// crate's real-I/O stream engine and [`crate::sim::simulate_stream`]'s
/// discrete-event scale sweeps accept the same mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptMode {
    /// Offline models + engine-wide extra-space policy every step.
    Static,
    /// Online bias correction + adaptive headroom
    /// ([`ratiomodel::OnlinePredictor`]).
    Adaptive(ratiomodel::OnlineConfig),
}

impl AdaptMode {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AdaptMode::Static => "static",
            AdaptMode::Adaptive(_) => "adaptive",
        }
    }
}

/// Topology of the phase-2 reservation collective.
///
/// Both topologies produce **byte-identical layouts** (the sums are
/// exact `u64` arithmetic either way, pinned by tests); they differ
/// only in communication shape. The flat all-gather moves
/// O(ranks · fields) triples to every rank; the sharded topology
/// splits ranks into contiguous groups that gather locally and
/// exchange only per-field totals across groups —
/// O(group + n_groups) per rank, O(√ranks) at the default group size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReservationTopology {
    /// One world-wide all-gather of per-partition triples (the
    /// paper's baseline; right answer at tens of ranks).
    #[default]
    Flat,
    /// Two-level collective over contiguous rank groups of
    /// `group_size` ranks (the last group may be short).
    /// `group_size = 0` picks `ceil(√ranks)`, which minimizes the
    /// per-rank wire cost.
    Sharded {
        /// Ranks per group; 0 = automatic `ceil(√ranks)`.
        group_size: usize,
    },
}

impl ReservationTopology {
    /// The group size actually used at `nranks`, or `None` for the
    /// flat topology. Clamped to `[1, nranks]`; `0` resolves to
    /// `ceil(√nranks)`.
    pub fn effective_group_size(&self, nranks: usize) -> Option<usize> {
        match *self {
            ReservationTopology::Flat => None,
            ReservationTopology::Sharded { group_size } => {
                let gs = if group_size == 0 {
                    (nranks as f64).sqrt().ceil() as usize
                } else {
                    group_size
                };
                Some(gs.clamp(1, nranks.max(1)))
            }
        }
    }

    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ReservationTopology::Flat => "flat",
            ReservationTopology::Sharded { .. } => "sharded",
        }
    }
}

/// Configuration of a real run.
#[derive(Clone)]
pub struct RealConfig {
    /// Which method to execute.
    pub method: Method,
    /// Per-field compression configuration (ignored by
    /// [`Method::NoCompression`]).
    pub configs: Vec<Config>,
    /// Fitted prediction models.
    pub models: Models,
    /// Extra-space policy for the predictive methods.
    pub policy: ExtraSpacePolicy,
    /// Bandwidth model the throttle enforces.
    pub bandwidth: BandwidthModel,
    /// Scale factor on the model's aggregate cap (tests use small
    /// scales so wall-clock stays short while contention is real).
    pub throttle_scale: f64,
    /// Compression worker threads *per rank* for the overlap methods
    /// (the parallel chunk-compression pipeline). `0` reads the
    /// `SZ_THREADS` environment variable, defaulting to 1 — the
    /// serial per-rank compression of the paper's baseline overlap.
    /// Also the decode worker count of the verification phase.
    pub sz_threads: usize,
    /// Opt-in read-back verification: after the file closes, re-open
    /// it, decode every field through the pipelined reader and check
    /// each element against its resolved error bound. The phase is
    /// timed separately ([`Breakdown::verify`]) and a violation fails
    /// the run.
    pub verify: bool,
    /// Shape of the reservation collective (flat all-gather vs
    /// two-level sharded; identical layouts, different wire cost).
    pub reservation: ReservationTopology,
    /// Fault-injection harness attached to the output file for the
    /// whole run (crash-recovery tests/benches); `None` in production.
    pub faults: Option<Arc<FaultFs>>,
    /// Output file path.
    pub path: PathBuf,
}

/// Resolve [`RealConfig::sz_threads`]: explicit value, else
/// `SZ_THREADS`, else 1 (ranks are already threads, so the engine
/// never defaults to the machine's full parallelism per rank).
fn resolve_sz_threads(cfg: &RealConfig) -> usize {
    if cfg.sz_threads > 0 {
        cfg.sz_threads
    } else {
        workers_from_env_or(1)
    }
}

/// Error from the real engine.
#[derive(Debug)]
pub struct RealError(pub String);

impl std::fmt::Display for RealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "real engine: {}", self.0)
    }
}

impl std::error::Error for RealError {}

impl From<h5lite::H5Error> for RealError {
    fn from(e: h5lite::H5Error) -> Self {
        RealError(e.to_string())
    }
}

impl From<szlite::SzError> for RealError {
    fn from(e: szlite::SzError) -> Self {
        RealError(e.to_string())
    }
}

/// Per-partition estimate produced by a [`PredictionSource`] in the
/// predict phase — everything the planner and scheduler consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceEstimate {
    /// Predicted compressed size the planner reserves for, bytes.
    pub bytes: u64,
    /// Predicted compression ratio (drives Eq. 3 when `headroom` is
    /// `None`).
    pub ratio: f64,
    /// Predicted compression time, seconds (Algorithm 1 input).
    pub comp_time: f64,
    /// Predicted write time, seconds (Algorithm 1 input).
    pub write_time: f64,
    /// The raw offline-model estimate before any online blending
    /// (equal to `bytes` for the static source); reported back in
    /// [`FieldObservation`] so streaming callers can update bias
    /// corrections against the model, not against themselves.
    pub model_bytes: u64,
    /// Per-partition extra-space multiplier override. `None` applies
    /// the engine-wide [`ExtraSpacePolicy`]; `Some(h)` with `h > 0`
    /// reserves `ceil(bytes · h)` for this partition. A non-positive
    /// or non-finite `h` is treated like `None` (it shares the `None`
    /// encoding on the all-gather wire), so sources wanting a minimal
    /// reservation should return a small positive multiplier, not 0.
    pub headroom: Option<f64>,
}

/// Pluggable prediction phase of the predictive-write pipeline.
///
/// [`run_real_with`] calls `estimate` once per (rank, field) inside
/// the rank threads (implementations must be `Sync`); the resulting
/// sizes are all-gathered so every rank plans the identical layout.
/// After the run, the actual compressed sizes come back as
/// [`RunObservations`] — a streaming caller feeds them into its next
/// step's source, closing the predict → observe loop the paper's
/// checkpoint workloads enable.
pub trait PredictionSource: Sync {
    /// Estimate one rank's partition of one field.
    fn estimate(
        &self,
        rank: usize,
        field: usize,
        data: &[f32],
        dims: &Dims,
        cfg: &Config,
    ) -> Result<SourceEstimate, String>;
}

/// Default source: the offline-fitted [`Models`] with the engine-wide
/// extra-space policy (the paper's static single-shot configuration).
pub struct ModelSource<'a> {
    /// The fitted models to sample-predict with.
    pub models: &'a Models,
}

impl PredictionSource for ModelSource<'_> {
    fn estimate(
        &self,
        _rank: usize,
        _field: usize,
        data: &[f32],
        dims: &Dims,
        cfg: &Config,
    ) -> Result<SourceEstimate, String> {
        let est = ratiomodel::estimate_partition(data, dims, cfg, self.models)
            .map_err(|e| e.to_string())?;
        Ok(SourceEstimate {
            bytes: est.bytes,
            ratio: est.ratio,
            comp_time: est.comp_time,
            write_time: est.write_time,
            model_bytes: est.bytes,
            headroom: None,
        })
    }
}

/// What actually happened to one (rank, field) partition — the
/// feedback half of the streaming loop.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FieldObservation {
    /// Predicted compressed size the layout was planned with.
    pub predicted: u64,
    /// Raw offline-model estimate ([`SourceEstimate::model_bytes`]).
    pub model_bytes: u64,
    /// Bytes reserved in the shared file.
    pub reserved: u64,
    /// Actual compressed size, bytes.
    pub actual: u64,
    /// Bytes redirected to the overflow region (0 when the partition
    /// fit its reservation).
    pub overflow: u64,
}

/// Per-run observations, indexed `[rank][field]`.
pub type RunObservations = Vec<Vec<FieldObservation>>;

#[derive(Debug, Default, Clone)]
struct RankOutcome {
    predict: f64,
    allgather: f64,
    compress: f64,
    write: f64,
    overflow: f64,
    total: f64,
    compressed_bytes: u64,
    overflow_bytes: u64,
    n_overflow: usize,
    fields: Vec<FieldObservation>,
}

/// Execute a parallel write with `data[rank][field]`.
///
/// Returns the aggregated [`RunResult`]; the written file at
/// `cfg.path` is closed and readable with [`h5lite::H5Reader`].
/// Predictions come from the offline-fitted `cfg.models`; use
/// [`run_real_with`] to plug in a different [`PredictionSource`] (and
/// to receive the per-partition observations back).
pub fn run_real(data: &[Vec<RankFieldData>], cfg: &RealConfig) -> Result<RunResult, RealError> {
    run_real_with(
        data,
        cfg,
        &ModelSource {
            models: &cfg.models,
        },
    )
    .map(|(res, _)| res)
}

/// [`run_real`] with a pluggable prediction source, returning the
/// per-partition [`RunObservations`] alongside the aggregate result.
pub fn run_real_with<S: PredictionSource + ?Sized>(
    data: &[Vec<RankFieldData>],
    cfg: &RealConfig,
    source: &S,
) -> Result<(RunResult, RunObservations), RealError> {
    let nranks = data.len();
    if nranks == 0 {
        return Err(RealError("no ranks".into()));
    }
    let nfields = data[0].len();
    if nfields == 0 || data.iter().any(|r| r.len() != nfields) {
        return Err(RealError("all ranks need the same field list".into()));
    }
    for f in 0..nfields {
        let n0 = data[0][f].data.len();
        if data.iter().any(|r| r[f].data.len() != n0) {
            return Err(RealError(
                "per-field partition sizes must be uniform".into(),
            ));
        }
    }
    let compressed = cfg.method != Method::NoCompression;
    if compressed && cfg.configs.len() != nfields {
        return Err(RealError("need one Config per field".into()));
    }

    // Create the shared file and one chunked dataset per field. The
    // fault harness attaches after the superblock reservation, so its
    // op 0 is the run's first chunk write.
    let file = H5File::create(&cfg.path)?;
    if let Some(fs) = &cfg.faults {
        file.shared_file().set_faults(Some(Arc::clone(fs)));
    }
    let mut dataset_ids = Vec::with_capacity(nfields);
    for f in 0..nfields {
        let part_points = data[0][f].data.len() as u64;
        let total_points = part_points * nranks as u64;
        let mut spec =
            DatasetSpec::new(&data[0][f].name, Dtype::F32, &[total_points]).chunked(&[part_points]);
        if compressed {
            let (absolute, bound) = match cfg.configs[f].error_bound {
                ErrorBound::Abs(b) => (true, b),
                ErrorBound::Rel(b) => (false, b),
            };
            spec = spec.with_filter(FilterSpec {
                id: SZLITE_FILTER_ID,
                params: SzFilterParams {
                    absolute,
                    bound,
                    dims: data[0][f].dims.extents().to_vec(),
                }
                .to_bytes(),
            });
        }
        dataset_ids.push(file.create_dataset(spec)?);
    }

    let throttle = Arc::new(Throttle::from_model(
        &BandwidthModel {
            aggregate_cap: cfg.bandwidth.aggregate_cap,
            ..cfg.bandwidth
        },
        cfg.throttle_scale,
    ));

    let sz_threads = resolve_sz_threads(cfg);
    let world = World::new(nranks);
    let base = file.tail(); // after the superblock

    // Stream buffers recycle through this pool across every rank and
    // field: compression workers take, the async write queue returns
    // after each write lands, so steady state allocates nothing per
    // partition.
    let pool = Arc::new(BufferPool::new());

    let outcomes: Vec<Result<RankOutcome, String>> = world.run(|rk| {
        let r = rk.rank();
        let _rank_span = obs::span_arg("real.rank", r as u64);
        let run = || -> Result<RankOutcome, String> {
            let mut out = RankOutcome {
                fields: vec![FieldObservation::default(); nfields],
                ..RankOutcome::default()
            };
            let t0 = Instant::now();
            match cfg.method {
                Method::NoCompression => {
                    // Offsets are known from raw sizes; independent
                    // async writes of every field.
                    let sizes: Vec<Vec<PartitionPrediction>> = (0..nranks)
                        .map(|rr| {
                            (0..nfields)
                                .map(|f| PartitionPrediction {
                                    bytes: (data[rr][f].data.len() * 4) as u64,
                                    ratio: 1.0,
                                })
                                .collect()
                        })
                        .collect();
                    let plan = WritePlan::build(&sizes, &ExtraSpacePolicy::new(1.0), base);
                    let es = EventSet::from_env();
                    for f in 0..nfields {
                        let mut bytes = pool.take();
                        for v in &data[r][f].data {
                            bytes.extend_from_slice(&v.to_le_bytes());
                        }
                        let len = bytes.len() as u64;
                        let crc = crc32c(&bytes);
                        es.write_at_recycled(
                            file.shared_file(),
                            plan.slots[r][f].offset,
                            bytes,
                            Some(Arc::clone(&throttle)),
                            Arc::clone(&pool),
                        );
                        file.record_chunk(
                            dataset_ids[f],
                            h5lite::ChunkInfo {
                                index: r as u64,
                                offset: plan.slots[r][f].offset,
                                stored: len,
                                raw: len,
                                crc,
                            },
                        )
                        .map_err(|e| e.to_string())?;
                        out.compressed_bytes += len;
                        out.fields[f] = FieldObservation {
                            predicted: len,
                            model_bytes: len,
                            reserved: len,
                            actual: len,
                            overflow: 0,
                        };
                    }
                    es.wait().map_err(|e| e.to_string())?;
                    out.write = t0.elapsed().as_secs_f64();
                }
                Method::FilterCollective => {
                    // Compress everything first (the filter model),
                    // serially but with a rank-local reused scratch.
                    let tc = Instant::now();
                    let mut scratch = Scratch::new();
                    let mut streams = Vec::with_capacity(nfields);
                    for f in 0..nfields {
                        let mut s = Vec::new();
                        compress_into(
                            &data[r][f].data,
                            &data[r][f].dims,
                            &cfg.configs[f],
                            &mut scratch,
                            &mut s,
                        )
                        .map_err(|e| e.to_string())?;
                        streams.push(s);
                    }
                    out.compress = tc.elapsed().as_secs_f64();
                    // All-gather the actual sizes.
                    let ta = Instant::now();
                    let my_sizes: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
                    let all_sizes = rk.try_all_gather(my_sizes).map_err(|e| e.to_string())?;
                    out.allgather = ta.elapsed().as_secs_f64();
                    let preds: Vec<Vec<PartitionPrediction>> = all_sizes
                        .iter()
                        .map(|row| {
                            row.iter()
                                .map(|&b| PartitionPrediction {
                                    bytes: b,
                                    ratio: 1.0,
                                })
                                .collect()
                        })
                        .collect();
                    let plan = WritePlan::build(&preds, &ExtraSpacePolicy::new(1.0), base);
                    // Collective write: one synchronized round per field.
                    let tw = Instant::now();
                    for f in 0..nfields {
                        rk.try_barrier().map_err(|e| e.to_string())?;
                        throttle.acquire(streams[f].len() as u64);
                        file.shared_file()
                            .write_at(plan.slots[r][f].offset, &streams[f])
                            .map_err(|e| e.to_string())?;
                        file.record_chunk(
                            dataset_ids[f],
                            h5lite::ChunkInfo {
                                index: r as u64,
                                offset: plan.slots[r][f].offset,
                                stored: streams[f].len() as u64,
                                raw: (data[r][f].data.len() * 4) as u64,
                                crc: crc32c(&streams[f]),
                            },
                        )
                        .map_err(|e| e.to_string())?;
                        rk.try_barrier().map_err(|e| e.to_string())?;
                        let len = streams[f].len() as u64;
                        out.fields[f] = FieldObservation {
                            predicted: len,
                            model_bytes: len,
                            reserved: len,
                            actual: len,
                            overflow: 0,
                        };
                    }
                    out.write = tw.elapsed().as_secs_f64();
                    out.compressed_bytes = streams.iter().map(|s| s.len() as u64).sum();
                }
                Method::Overlap | Method::OverlapReorder => {
                    // Phase 1: prediction (pluggable source).
                    let tp = Instant::now();
                    let predict_span = obs::span("real.predict");
                    let mut my_preds = Vec::with_capacity(nfields);
                    for f in 0..nfields {
                        let est = source.estimate(
                            r,
                            f,
                            &data[r][f].data,
                            &data[r][f].dims,
                            &cfg.configs[f],
                        )?;
                        my_preds.push(est);
                        out.fields[f].predicted = est.bytes;
                        out.fields[f].model_bytes = est.model_bytes;
                    }
                    drop(predict_span);
                    out.predict = tp.elapsed().as_secs_f64();

                    // Phase 2: gather predicted sizes (plus any
                    // per-partition headroom override; ≤ 0 encodes
                    // "use the engine policy" on the wire) and derive
                    // this rank's layout. The flat topology
                    // all-gathers every triple to every rank; the
                    // sharded topology gathers within a contiguous
                    // rank group and exchanges only per-field reserved
                    // totals across groups. Both resolve reservations
                    // with the same exact u64 arithmetic, so the
                    // resulting offsets are byte-identical.
                    let ta = Instant::now();
                    let allgather_span = obs::span("real.allgather");
                    let wire: Vec<(u64, f64, f64)> = my_preds
                        .iter()
                        .map(|e| (e.bytes, e.ratio, e.headroom.unwrap_or(-1.0)))
                        .collect();
                    let resolve =
                        |row: &[(u64, f64, f64)]| -> (Vec<PartitionPrediction>, Vec<u64>) {
                            row.iter()
                                .map(|&(bytes, ratio, h)| {
                                    let reserve = if h > 0.0 {
                                        (bytes as f64 * h).ceil() as u64
                                    } else {
                                        cfg.policy.reserve_bytes(bytes, ratio)
                                    };
                                    (PartitionPrediction { bytes, ratio }, reserve)
                                })
                                .unzip()
                        };
                    let view: RankPlanView = match cfg.reservation.effective_group_size(nranks) {
                        None => {
                            let gathered = rk.try_all_gather(wire).map_err(|e| e.to_string())?;
                            // Phase 3 (flat): identical full layout
                            // on every rank, then project this
                            // rank's row.
                            let (preds, reserves): (Vec<_>, Vec<_>) =
                                gathered.iter().map(|row| resolve(row)).unzip();
                            WritePlan::build_reserved(&preds, &reserves, base).rank_view(r)
                        }
                        Some(gs) => {
                            let group = rk.split(r / gs).map_err(|e| e.to_string())?;
                            let local = group.try_all_gather(wire).map_err(|e| e.to_string())?;
                            let (member_preds, member_reserves): (Vec<_>, Vec<_>) =
                                local.iter().map(|row| resolve(row)).unzip();
                            let totals: Vec<u64> = (0..nfields)
                                .map(|f| member_reserves.iter().map(|m: &Vec<u64>| m[f]).sum())
                                .collect();
                            let group_totals = group
                                .try_exchange(group.is_leader().then(|| totals.clone()))
                                .map_err(|e| e.to_string())?;
                            // Phase 3 (sharded): offsets from
                            // whole-group totals + the local
                            // prefix, no full matrix anywhere.
                            build_rank_view(
                                &group_totals,
                                group.group_id(),
                                &member_preds,
                                &member_reserves,
                                group.rank_in_group(),
                                base,
                            )
                        }
                    };
                    drop(allgather_span);
                    if r == 0 {
                        // Per-rank received bytes × world size = the
                        // collective's aggregate wire traffic for this
                        // step's reservation exchange.
                        let per_rank = reservation_wire_bytes(
                            nranks,
                            nfields,
                            cfg.reservation.effective_group_size(nranks),
                        );
                        obs::counter("real.reservation_wire_bytes").add(per_rank * nranks as u64);
                    }
                    out.allgather = ta.elapsed().as_secs_f64();

                    // Phase 4: compression order.
                    let order = if cfg.method == Method::OverlapReorder {
                        let pc: Vec<f64> = my_preds.iter().map(|e| e.comp_time).collect();
                        let pw: Vec<f64> = my_preds.iter().map(|e| e.write_time).collect();
                        optimize_order(&pc, &pw)
                    } else {
                        identity_order(nfields)
                    };

                    // Phase 5: pipelined compress + async write. Field
                    // compression fans out to `sz_threads` workers
                    // (each reusing one szlite Scratch across fields)
                    // while finished streams are handed to the async
                    // write queue in scheduled order — compression of
                    // field k+1 overlaps the write of field k, and at
                    // sz_threads = 1 this runs inline, matching the
                    // paper's single-threaded overlap exactly.
                    let es = EventSet::from_env();
                    let mut overflow_parts: Vec<(usize, Vec<u8>)> = Vec::new();
                    let tc = Instant::now();
                    let mut comp_total = 0.0;
                    ordered_fanout::<_, _, String, _, _, _>(
                        order.len() as u64,
                        sz_threads,
                        Scratch::new,
                        |scratch, pos| {
                            let f = order[pos as usize];
                            let _span = obs::span_arg("real.compress_field", f as u64);
                            let t1 = Instant::now();
                            let mut stream = pool.take();
                            compress_into(
                                &data[r][f].data,
                                &data[r][f].dims,
                                &cfg.configs[f],
                                scratch,
                                &mut stream,
                            )
                            .map_err(|e| e.to_string())?;
                            Ok((stream, t1.elapsed().as_secs_f64()))
                        },
                        |pos, (mut stream, secs): (Vec<u8>, f64)| {
                            let f = order[pos as usize];
                            comp_total += secs;
                            out.compressed_bytes += stream.len() as u64;
                            let slot = view.slots[f];
                            out.fields[f].actual = stream.len() as u64;
                            out.fields[f].reserved = slot.reserved;
                            let split = fit_split(stream.len() as u64, slot.reserved);
                            let tail = stream.split_off(split.in_slot as usize);
                            // Checksum before the async queue takes the
                            // buffer: the recorded CRC reflects the
                            // intended bytes, so anything injected en
                            // route is detectable on read.
                            let crc = crc32c(&stream);
                            es.write_at_recycled(
                                file.shared_file(),
                                slot.offset,
                                stream,
                                Some(Arc::clone(&throttle)),
                                Arc::clone(&pool),
                            );
                            file.record_chunk(
                                dataset_ids[f],
                                h5lite::ChunkInfo {
                                    index: r as u64,
                                    offset: slot.offset,
                                    stored: split.in_slot,
                                    raw: (data[r][f].data.len() * 4) as u64,
                                    crc,
                                },
                            )
                            .map_err(|e| e.to_string())?;
                            if !tail.is_empty() {
                                out.n_overflow += 1;
                                out.overflow_bytes += tail.len() as u64;
                                overflow_parts.push((f, tail));
                            }
                            Ok(())
                        },
                    )?;
                    // Aggregate worker-seconds exceed the phase's wall
                    // clock when sz_threads > 1; clamp to the fan-out
                    // span so the breakdown stays additive (identical
                    // numbers at sz_threads = 1, where comp_total is
                    // always within the span).
                    out.compress = comp_total.min(tc.elapsed().as_secs_f64());
                    es.wait().map_err(|e| e.to_string())?;
                    // Extra write time beyond the compression span.
                    out.write = (tc.elapsed().as_secs_f64() - out.compress).max(0.0);

                    // Phase 6: overflow redirection.
                    let to = Instant::now();
                    let _overflow_span = obs::span("real.overflow");
                    let mut my_ovf = vec![0u64; nfields];
                    for (f, bytes) in &overflow_parts {
                        my_ovf[*f] = bytes.len() as u64;
                        out.fields[*f].overflow = bytes.len() as u64;
                    }
                    let all_ovf = rk.try_all_gather(my_ovf).map_err(|e| e.to_string())?;
                    let any_overflow = all_ovf.iter().flatten().any(|&b| b > 0);
                    if any_overflow {
                        let offsets = plan_overflow(&all_ovf, view.data_end);
                        for (f, bytes) in overflow_parts {
                            throttle.acquire(bytes.len() as u64);
                            file.shared_file()
                                .write_at(offsets[r][f], &bytes)
                                .map_err(|e| e.to_string())?;
                            file.record_chunk(
                                dataset_ids[f],
                                h5lite::ChunkInfo {
                                    index: r as u64,
                                    offset: offsets[r][f],
                                    stored: bytes.len() as u64,
                                    raw: 0,
                                    crc: crc32c(&bytes),
                                },
                            )
                            .map_err(|e| e.to_string())?;
                            pool.put(bytes);
                        }
                    }
                    rk.try_barrier().map_err(|e| e.to_string())?;
                    out.overflow = to.elapsed().as_secs_f64();
                    if r == 0 {
                        file.shared_file()
                            .advance_tail_to(view.data_end)
                            .map_err(|e| e.to_string())?;
                    }
                }
            }
            out.total = t0.elapsed().as_secs_f64();
            Ok(out)
        };
        let res = run();
        if res.is_err() {
            // This rank can no longer reach its collectives; without
            // the poison, surviving ranks would block forever in
            // barrier/all_gather waiting for it (e.g. after an
            // injected torn write fails one rank mid-step).
            rk.poison();
        }
        res
    });

    // A poisoned collective is a symptom; report the rank error that
    // caused it when one exists.
    if outcomes.iter().any(|o| o.is_err()) {
        let errs: Vec<&String> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
        let peer_failed = commsim::WorldPoisoned.to_string();
        let root = errs
            .iter()
            .find(|e| !e.contains(&peer_failed))
            .unwrap_or(&errs[0]);
        return Err(RealError((*root).clone()));
    }

    let mut agg = RankOutcome::default();
    let mut observations: RunObservations = Vec::with_capacity(nranks);
    for o in outcomes {
        let o = o.map_err(RealError)?;
        agg.predict = agg.predict.max(o.predict);
        agg.allgather = agg.allgather.max(o.allgather);
        agg.compress = agg.compress.max(o.compress);
        agg.write = agg.write.max(o.write);
        agg.overflow = agg.overflow.max(o.overflow);
        agg.total = agg.total.max(o.total);
        agg.compressed_bytes += o.compressed_bytes;
        agg.overflow_bytes += o.overflow_bytes;
        agg.n_overflow += o.n_overflow;
        observations.push(o.fields);
    }

    // Metadata: record run parameters as attributes, then close.
    for (f, &id) in dataset_ids.iter().enumerate() {
        file.set_attr(id, "method", AttrValue::Str(cfg.method.label().to_string()))?;
        if compressed {
            let bound = match cfg.configs[f].error_bound {
                ErrorBound::Abs(b) | ErrorBound::Rel(b) => b,
            };
            file.set_attr(id, "error_bound", AttrValue::F64(bound))?;
        }
        file.set_attr(id, "rspace", AttrValue::F64(cfg.policy.rspace))?;
    }
    file.close()?;

    // Opt-in phase 7: read-back verification through the pipelined
    // reader — the decode mirror of the write pipeline, timed as its
    // own breakdown phase.
    let mut verify_secs = 0.0;
    if cfg.verify {
        let tv = Instant::now();
        let _verify_span = obs::span("real.verify");
        let configs = compressed.then_some(cfg.configs.as_slice());
        let report = crate::verify::verify_file(&cfg.path, data, configs, sz_threads)?;
        verify_secs = tv.elapsed().as_secs_f64();
        if let Some(bad) = report.fields.iter().find(|f| !f.ok) {
            return Err(RealError(format!(
                "verification failed: field {} exceeds its bound (max err {:.3e} > {:.3e})",
                bad.name, bad.max_abs_err, bad.max_bound
            )));
        }
    }

    let raw_bytes: u64 = data
        .iter()
        .flatten()
        .map(|fd| (fd.data.len() * 4) as u64)
        .sum();
    let file_bytes = std::fs::metadata(&cfg.path).map(|m| m.len()).unwrap_or(0);
    Ok((
        RunResult {
            method: cfg.method,
            total_time: agg.total,
            breakdown: Breakdown {
                predict: agg.predict,
                allgather: agg.allgather,
                compress: agg.compress,
                write: agg.write,
                overflow: agg.overflow,
                verify: verify_secs,
            },
            raw_bytes,
            compressed_bytes: agg.compressed_bytes,
            file_bytes,
            n_overflow: agg.n_overflow,
            overflow_bytes: agg.overflow_bytes,
        },
        observations,
    ))
}
