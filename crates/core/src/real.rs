//! Real execution engine: threads-as-ranks, real szlite compression,
//! real writes into an h5lite shared file through a bandwidth throttle.
//!
//! This engine runs the paper's full §III pipeline end to end —
//! prediction, all-gather, layout with extra space, (optionally
//! reordered) overlapped compress/async-write, overflow redirection,
//! metadata close — and the produced file decodes back within the
//! error bound. It is used by the integration tests and examples at
//! 4–64 ranks; scale sweeps use [`crate::sim`] with the same planner.

// Index-based loops below address several parallel arrays (data,
// plans, dataset ids) by the same field index; iterator zipping would
// obscure that correspondence.
#![allow(clippy::needless_range_loop)]

use crate::extraspace::ExtraSpacePolicy;
use crate::metrics::{Breakdown, Method, RunResult};
use crate::plan::{fit_split, plan_overflow, PartitionPrediction, WritePlan};
use crate::scheduler::{identity_order, optimize_order};
use commsim::World;
use h5lite::{
    ordered_fanout, workers_from_env_or, AttrValue, DatasetSpec, Dtype, EventSet, FilterSpec,
    H5File, SzFilterParams, SZLITE_FILTER_ID,
};
use pfsim::{BandwidthModel, Throttle};
use ratiomodel::Models;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use szlite::{compress_into, Config, Dims, ErrorBound, Scratch};

/// One rank's slice of one field.
#[derive(Debug, Clone)]
pub struct RankFieldData {
    /// Field name (dataset path in the file).
    pub name: String,
    /// The rank's partition values.
    pub data: Vec<f32>,
    /// Partition extents.
    pub dims: Dims,
}

/// Configuration of a real run.
#[derive(Clone)]
pub struct RealConfig {
    /// Which method to execute.
    pub method: Method,
    /// Per-field compression configuration (ignored by
    /// [`Method::NoCompression`]).
    pub configs: Vec<Config>,
    /// Fitted prediction models.
    pub models: Models,
    /// Extra-space policy for the predictive methods.
    pub policy: ExtraSpacePolicy,
    /// Bandwidth model the throttle enforces.
    pub bandwidth: BandwidthModel,
    /// Scale factor on the model's aggregate cap (tests use small
    /// scales so wall-clock stays short while contention is real).
    pub throttle_scale: f64,
    /// Compression worker threads *per rank* for the overlap methods
    /// (the parallel chunk-compression pipeline). `0` reads the
    /// `SZ_THREADS` environment variable, defaulting to 1 — the
    /// serial per-rank compression of the paper's baseline overlap.
    /// Also the decode worker count of the verification phase.
    pub sz_threads: usize,
    /// Opt-in read-back verification: after the file closes, re-open
    /// it, decode every field through the pipelined reader and check
    /// each element against its resolved error bound. The phase is
    /// timed separately ([`Breakdown::verify`]) and a violation fails
    /// the run.
    pub verify: bool,
    /// Output file path.
    pub path: PathBuf,
}

/// Resolve [`RealConfig::sz_threads`]: explicit value, else
/// `SZ_THREADS`, else 1 (ranks are already threads, so the engine
/// never defaults to the machine's full parallelism per rank).
fn resolve_sz_threads(cfg: &RealConfig) -> usize {
    if cfg.sz_threads > 0 {
        cfg.sz_threads
    } else {
        workers_from_env_or(1)
    }
}

/// Error from the real engine.
#[derive(Debug)]
pub struct RealError(pub String);

impl std::fmt::Display for RealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "real engine: {}", self.0)
    }
}

impl std::error::Error for RealError {}

impl From<h5lite::H5Error> for RealError {
    fn from(e: h5lite::H5Error) -> Self {
        RealError(e.to_string())
    }
}

impl From<szlite::SzError> for RealError {
    fn from(e: szlite::SzError) -> Self {
        RealError(e.to_string())
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct RankOutcome {
    predict: f64,
    allgather: f64,
    compress: f64,
    write: f64,
    overflow: f64,
    total: f64,
    compressed_bytes: u64,
    overflow_bytes: u64,
    n_overflow: usize,
}

/// Execute a parallel write with `data[rank][field]`.
///
/// Returns the aggregated [`RunResult`]; the written file at
/// `cfg.path` is closed and readable with [`h5lite::H5Reader`].
pub fn run_real(data: &[Vec<RankFieldData>], cfg: &RealConfig) -> Result<RunResult, RealError> {
    let nranks = data.len();
    if nranks == 0 {
        return Err(RealError("no ranks".into()));
    }
    let nfields = data[0].len();
    if nfields == 0 || data.iter().any(|r| r.len() != nfields) {
        return Err(RealError("all ranks need the same field list".into()));
    }
    for f in 0..nfields {
        let n0 = data[0][f].data.len();
        if data.iter().any(|r| r[f].data.len() != n0) {
            return Err(RealError(
                "per-field partition sizes must be uniform".into(),
            ));
        }
    }
    let compressed = cfg.method != Method::NoCompression;
    if compressed && cfg.configs.len() != nfields {
        return Err(RealError("need one Config per field".into()));
    }

    // Create the shared file and one chunked dataset per field.
    let file = H5File::create(&cfg.path)?;
    let mut dataset_ids = Vec::with_capacity(nfields);
    for f in 0..nfields {
        let part_points = data[0][f].data.len() as u64;
        let total_points = part_points * nranks as u64;
        let mut spec =
            DatasetSpec::new(&data[0][f].name, Dtype::F32, &[total_points]).chunked(&[part_points]);
        if compressed {
            let (absolute, bound) = match cfg.configs[f].error_bound {
                ErrorBound::Abs(b) => (true, b),
                ErrorBound::Rel(b) => (false, b),
            };
            spec = spec.with_filter(FilterSpec {
                id: SZLITE_FILTER_ID,
                params: SzFilterParams {
                    absolute,
                    bound,
                    dims: data[0][f].dims.extents().to_vec(),
                }
                .to_bytes(),
            });
        }
        dataset_ids.push(file.create_dataset(spec)?);
    }

    let throttle = Arc::new(Throttle::from_model(
        &BandwidthModel {
            aggregate_cap: cfg.bandwidth.aggregate_cap,
            ..cfg.bandwidth
        },
        cfg.throttle_scale,
    ));

    let sz_threads = resolve_sz_threads(cfg);
    let world = World::new(nranks);
    let base = file.tail(); // after the superblock

    let outcomes: Vec<Result<RankOutcome, String>> = world.run(|rk| {
        let r = rk.rank();
        let run = || -> Result<RankOutcome, String> {
            let mut out = RankOutcome::default();
            let t0 = Instant::now();
            match cfg.method {
                Method::NoCompression => {
                    // Offsets are known from raw sizes; independent
                    // async writes of every field.
                    let sizes: Vec<Vec<PartitionPrediction>> = (0..nranks)
                        .map(|rr| {
                            (0..nfields)
                                .map(|f| PartitionPrediction {
                                    bytes: (data[rr][f].data.len() * 4) as u64,
                                    ratio: 1.0,
                                })
                                .collect()
                        })
                        .collect();
                    let plan = WritePlan::build(&sizes, &ExtraSpacePolicy::new(1.0), base);
                    let es = EventSet::from_env();
                    for f in 0..nfields {
                        let bytes: Vec<u8> = data[r][f]
                            .data
                            .iter()
                            .flat_map(|v| v.to_le_bytes())
                            .collect();
                        let len = bytes.len() as u64;
                        es.write_at(
                            file.shared_file(),
                            plan.slots[r][f].offset,
                            bytes,
                            Some(Arc::clone(&throttle)),
                        );
                        file.record_chunk(
                            dataset_ids[f],
                            h5lite::ChunkInfo {
                                index: r as u64,
                                offset: plan.slots[r][f].offset,
                                stored: len,
                                raw: len,
                            },
                        )
                        .map_err(|e| e.to_string())?;
                        out.compressed_bytes += len;
                    }
                    es.wait().map_err(|e| e.to_string())?;
                    out.write = t0.elapsed().as_secs_f64();
                }
                Method::FilterCollective => {
                    // Compress everything first (the filter model),
                    // serially but with a rank-local reused scratch.
                    let tc = Instant::now();
                    let mut scratch = Scratch::new();
                    let mut streams = Vec::with_capacity(nfields);
                    for f in 0..nfields {
                        let mut s = Vec::new();
                        compress_into(
                            &data[r][f].data,
                            &data[r][f].dims,
                            &cfg.configs[f],
                            &mut scratch,
                            &mut s,
                        )
                        .map_err(|e| e.to_string())?;
                        streams.push(s);
                    }
                    out.compress = tc.elapsed().as_secs_f64();
                    // All-gather the actual sizes.
                    let ta = Instant::now();
                    let my_sizes: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
                    let all_sizes: Vec<Vec<u64>> = rk.all_gather(my_sizes);
                    out.allgather = ta.elapsed().as_secs_f64();
                    let preds: Vec<Vec<PartitionPrediction>> = all_sizes
                        .iter()
                        .map(|row| {
                            row.iter()
                                .map(|&b| PartitionPrediction {
                                    bytes: b,
                                    ratio: 1.0,
                                })
                                .collect()
                        })
                        .collect();
                    let plan = WritePlan::build(&preds, &ExtraSpacePolicy::new(1.0), base);
                    // Collective write: one synchronized round per field.
                    let tw = Instant::now();
                    for f in 0..nfields {
                        rk.barrier();
                        throttle.acquire(streams[f].len() as u64);
                        file.shared_file()
                            .write_at(plan.slots[r][f].offset, &streams[f])
                            .map_err(|e| e.to_string())?;
                        file.record_chunk(
                            dataset_ids[f],
                            h5lite::ChunkInfo {
                                index: r as u64,
                                offset: plan.slots[r][f].offset,
                                stored: streams[f].len() as u64,
                                raw: (data[r][f].data.len() * 4) as u64,
                            },
                        )
                        .map_err(|e| e.to_string())?;
                        rk.barrier();
                    }
                    out.write = tw.elapsed().as_secs_f64();
                    out.compressed_bytes = streams.iter().map(|s| s.len() as u64).sum();
                }
                Method::Overlap | Method::OverlapReorder => {
                    // Phase 1: prediction.
                    let tp = Instant::now();
                    let mut my_preds = Vec::with_capacity(nfields);
                    for f in 0..nfields {
                        let est = ratiomodel::estimate_partition(
                            &data[r][f].data,
                            &data[r][f].dims,
                            &cfg.configs[f],
                            &cfg.models,
                        )
                        .map_err(|e| e.to_string())?;
                        my_preds.push(est);
                    }
                    out.predict = tp.elapsed().as_secs_f64();

                    // Phase 2: all-gather predicted sizes.
                    let ta = Instant::now();
                    let wire: Vec<(u64, f64)> =
                        my_preds.iter().map(|e| (e.bytes, e.ratio)).collect();
                    let gathered: Vec<Vec<(u64, f64)>> = rk.all_gather(wire);
                    out.allgather = ta.elapsed().as_secs_f64();

                    // Phase 3: identical layout on every rank.
                    let preds: Vec<Vec<PartitionPrediction>> = gathered
                        .iter()
                        .map(|row| {
                            row.iter()
                                .map(|&(bytes, ratio)| PartitionPrediction { bytes, ratio })
                                .collect()
                        })
                        .collect();
                    let plan = WritePlan::build(&preds, &cfg.policy, base);

                    // Phase 4: compression order.
                    let order = if cfg.method == Method::OverlapReorder {
                        let pc: Vec<f64> = my_preds.iter().map(|e| e.comp_time).collect();
                        let pw: Vec<f64> = my_preds.iter().map(|e| e.write_time).collect();
                        optimize_order(&pc, &pw)
                    } else {
                        identity_order(nfields)
                    };

                    // Phase 5: pipelined compress + async write. Field
                    // compression fans out to `sz_threads` workers
                    // (each reusing one szlite Scratch across fields)
                    // while finished streams are handed to the async
                    // write queue in scheduled order — compression of
                    // field k+1 overlaps the write of field k, and at
                    // sz_threads = 1 this runs inline, matching the
                    // paper's single-threaded overlap exactly.
                    let es = EventSet::from_env();
                    let mut overflow_parts: Vec<(usize, Vec<u8>)> = Vec::new();
                    let tc = Instant::now();
                    let mut comp_total = 0.0;
                    ordered_fanout::<_, _, String, _, _, _>(
                        order.len() as u64,
                        sz_threads,
                        Scratch::new,
                        |scratch, pos| {
                            let f = order[pos as usize];
                            let t1 = Instant::now();
                            let mut stream = Vec::new();
                            compress_into(
                                &data[r][f].data,
                                &data[r][f].dims,
                                &cfg.configs[f],
                                scratch,
                                &mut stream,
                            )
                            .map_err(|e| e.to_string())?;
                            Ok((stream, t1.elapsed().as_secs_f64()))
                        },
                        |pos, (mut stream, secs): (Vec<u8>, f64)| {
                            let f = order[pos as usize];
                            comp_total += secs;
                            out.compressed_bytes += stream.len() as u64;
                            let slot = plan.slots[r][f];
                            let split = fit_split(stream.len() as u64, slot.reserved);
                            let tail = stream.split_off(split.in_slot as usize);
                            es.write_at(
                                file.shared_file(),
                                slot.offset,
                                stream,
                                Some(Arc::clone(&throttle)),
                            );
                            file.record_chunk(
                                dataset_ids[f],
                                h5lite::ChunkInfo {
                                    index: r as u64,
                                    offset: slot.offset,
                                    stored: split.in_slot,
                                    raw: (data[r][f].data.len() * 4) as u64,
                                },
                            )
                            .map_err(|e| e.to_string())?;
                            if !tail.is_empty() {
                                out.n_overflow += 1;
                                out.overflow_bytes += tail.len() as u64;
                                overflow_parts.push((f, tail));
                            }
                            Ok(())
                        },
                    )?;
                    // Aggregate worker-seconds exceed the phase's wall
                    // clock when sz_threads > 1; clamp to the fan-out
                    // span so the breakdown stays additive (identical
                    // numbers at sz_threads = 1, where comp_total is
                    // always within the span).
                    out.compress = comp_total.min(tc.elapsed().as_secs_f64());
                    es.wait().map_err(|e| e.to_string())?;
                    // Extra write time beyond the compression span.
                    out.write = (tc.elapsed().as_secs_f64() - out.compress).max(0.0);

                    // Phase 6: overflow redirection.
                    let to = Instant::now();
                    let mut my_ovf = vec![0u64; nfields];
                    for (f, bytes) in &overflow_parts {
                        my_ovf[*f] = bytes.len() as u64;
                    }
                    let all_ovf: Vec<Vec<u64>> = rk.all_gather(my_ovf);
                    let any_overflow = all_ovf.iter().flatten().any(|&b| b > 0);
                    if any_overflow {
                        let offsets = plan_overflow(&all_ovf, plan.data_end);
                        for (f, bytes) in overflow_parts {
                            throttle.acquire(bytes.len() as u64);
                            file.shared_file()
                                .write_at(offsets[r][f], &bytes)
                                .map_err(|e| e.to_string())?;
                            file.record_chunk(
                                dataset_ids[f],
                                h5lite::ChunkInfo {
                                    index: r as u64,
                                    offset: offsets[r][f],
                                    stored: bytes.len() as u64,
                                    raw: 0,
                                },
                            )
                            .map_err(|e| e.to_string())?;
                        }
                    }
                    rk.barrier();
                    out.overflow = to.elapsed().as_secs_f64();
                    if r == 0 {
                        file.shared_file().advance_tail_to(plan.data_end);
                    }
                }
            }
            out.total = t0.elapsed().as_secs_f64();
            Ok(out)
        };
        run()
    });

    let mut agg = RankOutcome::default();
    for o in outcomes {
        let o = o.map_err(RealError)?;
        agg.predict = agg.predict.max(o.predict);
        agg.allgather = agg.allgather.max(o.allgather);
        agg.compress = agg.compress.max(o.compress);
        agg.write = agg.write.max(o.write);
        agg.overflow = agg.overflow.max(o.overflow);
        agg.total = agg.total.max(o.total);
        agg.compressed_bytes += o.compressed_bytes;
        agg.overflow_bytes += o.overflow_bytes;
        agg.n_overflow += o.n_overflow;
    }

    // Metadata: record run parameters as attributes, then close.
    for (f, &id) in dataset_ids.iter().enumerate() {
        file.set_attr(id, "method", AttrValue::Str(cfg.method.label().to_string()))?;
        if compressed {
            let bound = match cfg.configs[f].error_bound {
                ErrorBound::Abs(b) | ErrorBound::Rel(b) => b,
            };
            file.set_attr(id, "error_bound", AttrValue::F64(bound))?;
        }
        file.set_attr(id, "rspace", AttrValue::F64(cfg.policy.rspace))?;
    }
    file.close()?;

    // Opt-in phase 7: read-back verification through the pipelined
    // reader — the decode mirror of the write pipeline, timed as its
    // own breakdown phase.
    let mut verify_secs = 0.0;
    if cfg.verify {
        let tv = Instant::now();
        let configs = compressed.then_some(cfg.configs.as_slice());
        let report = crate::verify::verify_file(&cfg.path, data, configs, sz_threads)?;
        verify_secs = tv.elapsed().as_secs_f64();
        if let Some(bad) = report.fields.iter().find(|f| !f.ok) {
            return Err(RealError(format!(
                "verification failed: field {} exceeds its bound (max err {:.3e} > {:.3e})",
                bad.name, bad.max_abs_err, bad.max_bound
            )));
        }
    }

    let raw_bytes: u64 = data
        .iter()
        .flatten()
        .map(|fd| (fd.data.len() * 4) as u64)
        .sum();
    let file_bytes = std::fs::metadata(&cfg.path).map(|m| m.len()).unwrap_or(0);
    Ok(RunResult {
        method: cfg.method,
        total_time: agg.total,
        breakdown: Breakdown {
            predict: agg.predict,
            allgather: agg.allgather,
            compress: agg.compress,
            write: agg.write,
            overflow: agg.overflow,
            verify: verify_secs,
        },
        raw_bytes,
        compressed_bytes: agg.compressed_bytes,
        file_bytes,
        n_overflow: agg.n_overflow,
        overflow_bytes: agg.overflow_bytes,
    })
}
