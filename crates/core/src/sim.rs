//! Simulated execution of the four write methods over partition
//! profiles — the engine behind every scale/ratio sweep (Fig. 16–18).
//!
//! Identical planner code (extra space, Algorithm 1 ordering, overflow
//! planning) to the real engine; only execution is replaced by the
//! discrete-event pipeline simulator of `pfsim`.

use crate::extraspace::ExtraSpacePolicy;
use crate::metrics::{Breakdown, Method, RunResult};
use crate::plan::{fit_split, PartitionPrediction, WritePlan};
use crate::profile::PartitionProfile;
use crate::scheduler::{identity_order, optimize_order};
use pfsim::{
    collective_write_time, simulate, simulate_concurrent_writes, BandwidthModel, PipelineTask,
    RankPipeline,
};

/// Simulation parameters beyond the bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// File system model.
    pub bandwidth: BandwidthModel,
    /// Extra-space policy for the predictive methods.
    pub policy: ExtraSpacePolicy,
    /// All-gather latency: `alpha + beta · nranks` seconds. The paper
    /// notes this term grows with scale (§IV-D).
    pub allgather_alpha: f64,
    /// Per-rank all-gather cost.
    pub allgather_beta: f64,
    /// Prediction overhead as a fraction of compression time (< 0.1
    /// per Jin et al. \[25\]).
    pub predict_frac: f64,
}

impl SimParams {
    /// Defaults on a given bandwidth model.
    pub fn new(bandwidth: BandwidthModel) -> Self {
        SimParams {
            bandwidth,
            policy: ExtraSpacePolicy::default(),
            allgather_alpha: 200e-6,
            allgather_beta: 1.5e-6,
            predict_frac: 0.05,
        }
    }

    /// Override the extra-space policy.
    pub fn with_policy(mut self, policy: ExtraSpacePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn allgather_time(&self, nranks: usize) -> f64 {
        self.allgather_alpha + self.allgather_beta * nranks as f64
    }
}

fn totals(profiles: &[Vec<PartitionProfile>]) -> (u64, u64) {
    let raw = profiles.iter().flatten().map(|p| p.raw_bytes).sum();
    let comp = profiles.iter().flatten().map(|p| p.actual_bytes).sum();
    (raw, comp)
}

/// Simulate one method over `profiles[rank][field]`.
pub fn simulate_method(
    method: Method,
    profiles: &[Vec<PartitionProfile>],
    params: &SimParams,
) -> RunResult {
    match method {
        Method::NoCompression => sim_nocomp(profiles, params),
        Method::FilterCollective => sim_filter(profiles, params),
        Method::Overlap => sim_overlap(profiles, params, false),
        Method::OverlapReorder => sim_overlap(profiles, params, true),
    }
}

/// Simulate all four methods (shared profiles → comparable results).
pub fn simulate_all(profiles: &[Vec<PartitionProfile>], params: &SimParams) -> Vec<RunResult> {
    Method::ALL
        .iter()
        .map(|&m| simulate_method(m, profiles, params))
        .collect()
}

fn sim_nocomp(profiles: &[Vec<PartitionProfile>], params: &SimParams) -> RunResult {
    let ranks: Vec<RankPipeline> = profiles
        .iter()
        .map(|fields| RankPipeline {
            release: 0.0,
            tasks: fields
                .iter()
                .map(|p| PipelineTask {
                    compute: 0.0,
                    write_bytes: p.raw_bytes as f64,
                })
                .collect(),
        })
        .collect();
    let out = simulate(&ranks, &params.bandwidth);
    let (raw, _) = totals(profiles);
    RunResult {
        method: Method::NoCompression,
        total_time: out.makespan,
        breakdown: Breakdown {
            write: out.makespan,
            ..Default::default()
        },
        raw_bytes: raw,
        compressed_bytes: raw,
        file_bytes: raw,
        n_overflow: 0,
        overflow_bytes: 0,
    }
}

fn sim_filter(profiles: &[Vec<PartitionProfile>], params: &SimParams) -> RunResult {
    let nranks = profiles.len();
    let nfields = profiles.first().map_or(0, Vec::len);
    // Phase 1: all ranks compress everything; barrier at the slowest.
    let compress = profiles
        .iter()
        .map(|fields| fields.iter().map(|p| p.comp_time).sum::<f64>())
        .fold(0.0, f64::max);
    // Phase 2: all-gather of actual sizes.
    let ag = params.allgather_time(nranks);
    // Phase 3: one collective round per field (filters force collective
    // writes; every rank participates in every round).
    let mut write = 0.0;
    for f in 0..nfields {
        let sizes: Vec<f64> = profiles.iter().map(|r| r[f].actual_bytes as f64).collect();
        write += collective_write_time(&sizes, &params.bandwidth);
    }
    let (raw, comp) = totals(profiles);
    RunResult {
        method: Method::FilterCollective,
        total_time: compress + ag + write,
        breakdown: Breakdown {
            allgather: ag,
            compress,
            write,
            ..Default::default()
        },
        raw_bytes: raw,
        compressed_bytes: comp,
        file_bytes: comp,
        n_overflow: 0,
        overflow_bytes: 0,
    }
}

fn sim_overlap(profiles: &[Vec<PartitionProfile>], params: &SimParams, reorder: bool) -> RunResult {
    let nranks = profiles.len();

    // Phase 1: prediction (sampling) on every rank, then the
    // all-gather synchronizes everyone at max(predict) + ag.
    let predict = profiles
        .iter()
        .map(|fields| fields.iter().map(|p| p.comp_time).sum::<f64>() * params.predict_frac)
        .fold(0.0, f64::max);
    let ag = params.allgather_time(nranks);
    let release = predict + ag;

    // Phase 2: layout from *predicted* sizes.
    let predictions: Vec<Vec<PartitionPrediction>> = profiles
        .iter()
        .map(|fields| {
            fields
                .iter()
                .map(|p| PartitionPrediction {
                    bytes: p.pred_bytes,
                    ratio: p.pred_ratio,
                })
                .collect()
        })
        .collect();
    let plan = WritePlan::build(&predictions, &params.policy, 0);

    // Phase 3: per-rank ordered compress→write pipelines.
    let mut n_overflow = 0usize;
    let mut overflow_bytes = 0u64;
    let mut rank_overflow = vec![0u64; nranks];
    let ranks: Vec<RankPipeline> = profiles
        .iter()
        .enumerate()
        .map(|(r, fields)| {
            let order = if reorder {
                let pc: Vec<f64> = fields.iter().map(|p| p.pred_comp_time).collect();
                let pw: Vec<f64> = fields.iter().map(|p| p.pred_write_time).collect();
                optimize_order(&pc, &pw)
            } else {
                identity_order(fields.len())
            };
            let tasks = order
                .iter()
                .map(|&f| {
                    let p = &fields[f];
                    let split = fit_split(p.actual_bytes, plan.slots[r][f].reserved);
                    if split.overflow > 0 {
                        n_overflow += 1;
                        overflow_bytes += split.overflow;
                        rank_overflow[r] += split.overflow;
                    }
                    PipelineTask {
                        compute: p.comp_time,
                        write_bytes: split.in_slot as f64,
                    }
                })
                .collect();
            RankPipeline { release, tasks }
        })
        .collect();
    let out = simulate(&ranks, &params.bandwidth);
    let compress_end = out.last_compute_done();
    let makespan = out.makespan;

    // Phase 4: overflow — a second all-gather of overflow sizes, then
    // the affected ranks append concurrently.
    let mut overflow_time = 0.0;
    if overflow_bytes > 0 {
        let sizes: Vec<f64> = rank_overflow
            .iter()
            .filter(|&&b| b > 0)
            .map(|&b| b as f64)
            .collect();
        let (_, round) = simulate_concurrent_writes(&sizes, &params.bandwidth);
        overflow_time = params.allgather_time(nranks) + round;
    }

    let (raw, comp) = totals(profiles);
    // File: everything reserved stays allocated; overflow appends past
    // the end (in-slot bytes within reservations are not reclaimed).
    let file_bytes = plan.reserved_total() + overflow_bytes;
    RunResult {
        method: if reorder {
            Method::OverlapReorder
        } else {
            Method::Overlap
        },
        total_time: makespan + overflow_time,
        breakdown: Breakdown {
            predict,
            allgather: ag,
            compress: compress_end - release,
            write: makespan - compress_end,
            overflow: overflow_time,
            ..Default::default()
        },
        raw_bytes: raw,
        compressed_bytes: comp,
        file_bytes,
        n_overflow,
        overflow_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic profile set: `nranks` ranks × `nfields` fields with a
    /// spread of sizes and compression times. Partition size matches
    /// the paper's weak-scaling unit (256³ points = 64 MiB raw).
    fn synth(
        nranks: usize,
        nfields: usize,
        ratio: f64,
        accurate: bool,
    ) -> Vec<Vec<PartitionProfile>> {
        let n_points = 1 << 24; // 16 Mi points = 64 MiB raw
        (0..nranks)
            .map(|r| {
                (0..nfields)
                    .map(|f| {
                        // Deterministic per-partition variation ×[0.6, 1.67].
                        let h = ((r * 31 + f * 17) % 13) as f64 / 13.0;
                        let scale = 0.6 * (1.67f64 / 0.6).powf(h);
                        let raw = (n_points * 4) as u64;
                        let actual = ((raw as f64 / ratio) * scale) as u64;
                        let pred = if accurate {
                            (actual as f64 * 1.02) as u64
                        } else {
                            (actual as f64 * 0.7) as u64 // systematic under-prediction
                        };
                        let bits = actual as f64 * 8.0 / n_points as f64;
                        let tm = ratiomodel::ThroughputModel::paper_reference();
                        PartitionProfile {
                            n_points,
                            raw_bytes: raw,
                            pred_bytes: pred,
                            pred_ratio: raw as f64 / pred as f64,
                            pred_comp_time: tm.compression_time(raw as f64, bits),
                            pred_write_time: actual as f64 / 100e6,
                            actual_bytes: actual,
                            comp_time: tm.compression_time(raw as f64, bits),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn params() -> SimParams {
        SimParams::new(BandwidthModel::summit()).with_policy(ExtraSpacePolicy::new(1.25))
    }

    #[test]
    fn method_ranking_matches_paper() {
        // At a mid compression ratio (~16×) on a congested system:
        // no-comp slowest, filter+collective better, overlap better
        // still, reorder best (Fig. 16 ordering).
        let profiles = synth(512, 6, 16.0, true);
        let rs = simulate_all(&profiles, &params());
        let t = |m: Method| rs.iter().find(|r| r.method == m).unwrap().total_time;
        assert!(t(Method::NoCompression) > t(Method::FilterCollective));
        assert!(t(Method::FilterCollective) > t(Method::Overlap));
        assert!(t(Method::Overlap) >= t(Method::OverlapReorder) * 0.999);
    }

    #[test]
    fn speedups_in_plausible_range() {
        let profiles = synth(512, 6, 16.0, true);
        let rs = simulate_all(&profiles, &params());
        let no = rs[0];
        let best = rs[3];
        let speedup = best.speedup_over(&no);
        assert!(speedup > 2.0 && speedup < 20.0, "speedup {speedup}");
    }

    #[test]
    fn accurate_predictions_no_overflow() {
        let profiles = synth(16, 4, 16.0, true);
        let r = simulate_method(Method::Overlap, &profiles, &params());
        assert_eq!(r.n_overflow, 0);
        assert_eq!(r.overflow_bytes, 0);
        assert!(r.breakdown.overflow == 0.0);
    }

    #[test]
    fn underprediction_causes_overflow_and_cost() {
        let profiles = synth(16, 4, 16.0, false);
        // With 0.7× under-prediction and 1.25 extra space, reservations
        // are 0.875× of actual → every partition overflows.
        let r = simulate_method(Method::Overlap, &profiles, &params());
        // Most partitions overflow (those whose predicted ratio exceeds
        // 32 get the Eq. 3 widened reserve and may still fit).
        assert!(r.n_overflow > 16 * 4 / 2, "n_overflow {}", r.n_overflow);
        assert!(r.overflow_bytes > 0);
        assert!(r.breakdown.overflow > 0.0);
        // Overflow costs time vs. the accurate case.
        let acc = simulate_method(Method::Overlap, &synth(16, 4, 16.0, true), &params());
        assert!(r.total_time > acc.total_time);
    }

    #[test]
    fn storage_overhead_tracks_rspace() {
        let profiles = synth(16, 4, 16.0, true);
        let lo = simulate_method(
            Method::Overlap,
            &profiles,
            &params().with_policy(ExtraSpacePolicy::new(1.1)),
        );
        let hi = simulate_method(
            Method::Overlap,
            &profiles,
            &params().with_policy(ExtraSpacePolicy::new(1.43)),
        );
        assert!(hi.storage_overhead() > lo.storage_overhead());
        // With accurate predictions, overhead ≈ rspace − 1 + prediction slack.
        assert!(
            (hi.storage_overhead() - 0.46).abs() < 0.1,
            "{}",
            hi.storage_overhead()
        );
    }

    #[test]
    fn reorder_gain_vanishes_at_extreme_ratios() {
        // Fig. 17: at very high compression ratio (tiny writes) and at
        // very low ratio (write-dominated), reordering gains little.
        let p = params();
        for ratio in [200.0, 1.3] {
            let profiles = synth(32, 6, ratio, true);
            let ov = simulate_method(Method::Overlap, &profiles, &p);
            let re = simulate_method(Method::OverlapReorder, &profiles, &p);
            let gain = ov.total_time / re.total_time;
            assert!(gain < 1.15, "ratio {ratio}: gain {gain}");
        }
    }

    #[test]
    fn weak_scaling_stable() {
        // Per-rank work constant; total time should not blow up with
        // rank count beyond bandwidth contention effects.
        let base = synth(32, 6, 16.0, true);
        let p = params();
        let t256 = simulate_method(
            Method::OverlapReorder,
            &crate::profile::replicate_profiles(&base, 256),
            &p,
        )
        .total_time;
        let t1024 = simulate_method(
            Method::OverlapReorder,
            &crate::profile::replicate_profiles(&base, 1024),
            &p,
        )
        .total_time;
        // 4× the ranks on a shared cap: at most ~5× the time.
        assert!(t1024 < t256 * 6.0, "t256 {t256} t1024 {t1024}");
        assert!(t1024 > t256, "more contention must not be faster");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let profiles = synth(16, 6, 16.0, false);
        for m in Method::ALL {
            let r = simulate_method(m, &profiles, &params());
            assert!(
                (r.breakdown.total() - r.total_time).abs() < 1e-6,
                "{m:?}: {} vs {}",
                r.breakdown.total(),
                r.total_time
            );
        }
    }
}
