//! Simulated execution of the four write methods over partition
//! profiles — the engine behind every scale/ratio sweep (Fig. 16–18).
//!
//! Identical planner code (extra space, Algorithm 1 ordering, overflow
//! planning) to the real engine; only execution is replaced by the
//! discrete-event pipeline simulator of `pfsim`.

use crate::extraspace::ExtraSpacePolicy;
use crate::metrics::{Breakdown, Method, RunResult};
use crate::plan::{
    build_rank_view, fit_split, reservation_wire_bytes, PartitionPrediction, WritePlan,
};
use crate::profile::PartitionProfile;
use crate::real::{AdaptMode, ReservationTopology};
use crate::scheduler::{identity_order, optimize_order};
use pfsim::{
    collective_write_time, simulate, simulate_concurrent_writes, BandwidthModel, PipelineTask,
    RankPipeline,
};
use ratiomodel::{BandScope, OnlinePredictor};
use std::time::Instant;

/// Simulation parameters beyond the bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// File system model.
    pub bandwidth: BandwidthModel,
    /// Extra-space policy for the predictive methods.
    pub policy: ExtraSpacePolicy,
    /// All-gather latency: `alpha + beta · nranks` seconds. The paper
    /// notes this term grows with scale (§IV-D).
    pub allgather_alpha: f64,
    /// Per-rank all-gather cost.
    pub allgather_beta: f64,
    /// Prediction overhead as a fraction of compression time (< 0.1
    /// per Jin et al. \[25\]).
    pub predict_frac: f64,
}

impl SimParams {
    /// Defaults on a given bandwidth model.
    pub fn new(bandwidth: BandwidthModel) -> Self {
        SimParams {
            bandwidth,
            policy: ExtraSpacePolicy::default(),
            allgather_alpha: 200e-6,
            allgather_beta: 1.5e-6,
            predict_frac: 0.05,
        }
    }

    /// Override the extra-space policy.
    pub fn with_policy(mut self, policy: ExtraSpacePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn allgather_time(&self, nranks: usize) -> f64 {
        self.allgather_alpha + self.allgather_beta * nranks as f64
    }

    /// Latency of the reservation collective under a topology: the
    /// flat path is one world-sized all-gather; the sharded path is a
    /// group-sized all-gather plus the inter-group exchange of leader
    /// totals (two small collectives instead of one large one).
    pub fn reservation_collective_time(&self, nranks: usize, group_size: Option<usize>) -> f64 {
        match group_size {
            None => self.allgather_time(nranks),
            Some(s) => {
                let s = s.clamp(1, nranks.max(1));
                let n_groups = nranks.div_ceil(s);
                self.allgather_time(s) + self.allgather_time(n_groups)
            }
        }
    }
}

fn totals(profiles: &[Vec<PartitionProfile>]) -> (u64, u64) {
    let raw = profiles.iter().flatten().map(|p| p.raw_bytes).sum();
    let comp = profiles.iter().flatten().map(|p| p.actual_bytes).sum();
    (raw, comp)
}

/// Simulate one method over `profiles[rank][field]`.
pub fn simulate_method(
    method: Method,
    profiles: &[Vec<PartitionProfile>],
    params: &SimParams,
) -> RunResult {
    match method {
        Method::NoCompression => sim_nocomp(profiles, params),
        Method::FilterCollective => sim_filter(profiles, params),
        Method::Overlap => sim_overlap(profiles, params, false),
        Method::OverlapReorder => sim_overlap(profiles, params, true),
    }
}

/// Simulate all four methods (shared profiles → comparable results).
pub fn simulate_all(profiles: &[Vec<PartitionProfile>], params: &SimParams) -> Vec<RunResult> {
    Method::ALL
        .iter()
        .map(|&m| simulate_method(m, profiles, params))
        .collect()
}

fn sim_nocomp(profiles: &[Vec<PartitionProfile>], params: &SimParams) -> RunResult {
    let ranks: Vec<RankPipeline> = profiles
        .iter()
        .map(|fields| RankPipeline {
            release: 0.0,
            tasks: fields
                .iter()
                .map(|p| PipelineTask {
                    compute: 0.0,
                    write_bytes: p.raw_bytes as f64,
                })
                .collect(),
        })
        .collect();
    let out = simulate(&ranks, &params.bandwidth);
    let (raw, _) = totals(profiles);
    RunResult {
        method: Method::NoCompression,
        total_time: out.makespan,
        breakdown: Breakdown {
            write: out.makespan,
            ..Default::default()
        },
        raw_bytes: raw,
        compressed_bytes: raw,
        file_bytes: raw,
        n_overflow: 0,
        overflow_bytes: 0,
    }
}

fn sim_filter(profiles: &[Vec<PartitionProfile>], params: &SimParams) -> RunResult {
    let nranks = profiles.len();
    let nfields = profiles.first().map_or(0, Vec::len);
    // Phase 1: all ranks compress everything; barrier at the slowest.
    let compress = profiles
        .iter()
        .map(|fields| fields.iter().map(|p| p.comp_time).sum::<f64>())
        .fold(0.0, f64::max);
    // Phase 2: all-gather of actual sizes.
    let ag = params.allgather_time(nranks);
    // Phase 3: one collective round per field (filters force collective
    // writes; every rank participates in every round).
    let mut write = 0.0;
    for f in 0..nfields {
        let sizes: Vec<f64> = profiles.iter().map(|r| r[f].actual_bytes as f64).collect();
        write += collective_write_time(&sizes, &params.bandwidth);
    }
    let (raw, comp) = totals(profiles);
    RunResult {
        method: Method::FilterCollective,
        total_time: compress + ag + write,
        breakdown: Breakdown {
            allgather: ag,
            compress,
            write,
            ..Default::default()
        },
        raw_bytes: raw,
        compressed_bytes: comp,
        file_bytes: comp,
        n_overflow: 0,
        overflow_bytes: 0,
    }
}

fn sim_overlap(profiles: &[Vec<PartitionProfile>], params: &SimParams, reorder: bool) -> RunResult {
    let nranks = profiles.len();
    // Layout from *predicted* sizes, reserves from the uniform policy.
    let predictions: Vec<Vec<PartitionPrediction>> = profiles
        .iter()
        .map(|fields| {
            fields
                .iter()
                .map(|p| PartitionPrediction {
                    bytes: p.pred_bytes,
                    ratio: p.pred_ratio,
                })
                .collect()
        })
        .collect();
    let plan = WritePlan::build(&predictions, &params.policy, 0);
    sim_overlap_planned(
        profiles,
        params,
        reorder,
        &plan,
        params.allgather_time(nranks),
    )
}

/// The execution half of the overlap simulation, with the layout (and
/// the reservation-collective latency) supplied by the caller — shared
/// by [`sim_overlap`] (uniform policy, flat collective) and
/// [`simulate_stream`] (adaptive per-partition reserves, flat or
/// sharded collective).
fn sim_overlap_planned(
    profiles: &[Vec<PartitionProfile>],
    params: &SimParams,
    reorder: bool,
    plan: &WritePlan,
    ag: f64,
) -> RunResult {
    let nranks = profiles.len();

    // Phase 1: prediction (sampling) on every rank, then the
    // reservation collective synchronizes everyone at max(predict) + ag.
    let predict = profiles
        .iter()
        .map(|fields| fields.iter().map(|p| p.comp_time).sum::<f64>() * params.predict_frac)
        .fold(0.0, f64::max);
    let release = predict + ag;

    // Phase 3: per-rank ordered compress→write pipelines.
    let mut n_overflow = 0usize;
    let mut overflow_bytes = 0u64;
    let mut rank_overflow = vec![0u64; nranks];
    let ranks: Vec<RankPipeline> = profiles
        .iter()
        .enumerate()
        .map(|(r, fields)| {
            let order = if reorder {
                let pc: Vec<f64> = fields.iter().map(|p| p.pred_comp_time).collect();
                let pw: Vec<f64> = fields.iter().map(|p| p.pred_write_time).collect();
                optimize_order(&pc, &pw)
            } else {
                identity_order(fields.len())
            };
            let tasks = order
                .iter()
                .map(|&f| {
                    let p = &fields[f];
                    let split = fit_split(p.actual_bytes, plan.slots[r][f].reserved);
                    if split.overflow > 0 {
                        n_overflow += 1;
                        overflow_bytes += split.overflow;
                        rank_overflow[r] += split.overflow;
                    }
                    PipelineTask {
                        compute: p.comp_time,
                        write_bytes: split.in_slot as f64,
                    }
                })
                .collect();
            RankPipeline { release, tasks }
        })
        .collect();
    let out = simulate(&ranks, &params.bandwidth);
    let compress_end = out.last_compute_done();
    let makespan = out.makespan;

    // Phase 4: overflow — a second all-gather of overflow sizes, then
    // the affected ranks append concurrently.
    let mut overflow_time = 0.0;
    if overflow_bytes > 0 {
        let sizes: Vec<f64> = rank_overflow
            .iter()
            .filter(|&&b| b > 0)
            .map(|&b| b as f64)
            .collect();
        let (_, round) = simulate_concurrent_writes(&sizes, &params.bandwidth);
        overflow_time = params.allgather_time(nranks) + round;
    }

    let (raw, comp) = totals(profiles);
    // File: everything reserved stays allocated; overflow appends past
    // the end (in-slot bytes within reservations are not reclaimed).
    let file_bytes = plan.reserved_total() + overflow_bytes;
    RunResult {
        method: if reorder {
            Method::OverlapReorder
        } else {
            Method::Overlap
        },
        total_time: makespan + overflow_time,
        breakdown: Breakdown {
            predict,
            allgather: ag,
            compress: compress_end - release,
            write: makespan - compress_end,
            overflow: overflow_time,
            ..Default::default()
        },
        raw_bytes: raw,
        compressed_bytes: comp,
        file_bytes,
        n_overflow,
        overflow_bytes,
    }
}

/// Configuration of a simulated checkpoint stream — the scale-out
/// counterpart of `timeline::TimelineConfig`: same [`AdaptMode`] and
/// [`ReservationTopology`], but steps execute through the
/// discrete-event simulator instead of real threads and real I/O, so
/// thousands of ranks stream in milliseconds.
#[derive(Debug, Clone)]
pub struct StreamSimConfig {
    /// Bandwidth model, extra-space policy, collective latency model.
    pub params: SimParams,
    /// Prediction/headroom mode (adaptive mode carries its
    /// [`ratiomodel::OnlineConfig`], including the band scope).
    pub mode: AdaptMode,
    /// Shape of the per-step reservation collective.
    pub reservation: ReservationTopology,
    /// Timesteps to stream.
    pub steps: usize,
    /// Apply Algorithm 1 queue reordering per rank.
    pub reorder: bool,
}

/// Per-step outcome of a simulated stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStepStats {
    /// Step index.
    pub step: usize,
    /// Simulated wall-clock of the step, seconds.
    pub total_time: f64,
    /// Bytes the step's file occupies (reservations + overflow).
    pub file_bytes: u64,
    /// Actual compressed payload of the step.
    pub compressed_bytes: u64,
    /// Reserved-but-unused bytes (`file_bytes − compressed_bytes`).
    pub waste_bytes: u64,
    /// Bytes redirected to the overflow region.
    pub overflow_bytes: u64,
    /// Partitions that overflowed their reservation.
    pub n_overflow: usize,
    /// Mean relative size-prediction error over the step's partitions.
    pub mean_rel_err: f64,
}

/// Full report of a simulated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSimReport {
    /// [`AdaptMode::label`] of the run.
    pub mode: String,
    /// [`ReservationTopology::label`] of the run.
    pub reservation: String,
    /// Stream shape.
    pub nranks: usize,
    /// Fields per rank.
    pub nfields: usize,
    /// Per-step outcomes, in step order.
    pub steps: Vec<StreamStepStats>,
    /// Measured wall-clock of the representative rank's planner work,
    /// summed over steps (layout derivation only, not the simulated
    /// pipeline). Flat topology times the full
    /// [`WritePlan::build_reserved`]; sharded times the group-local
    /// sums plus [`build_rank_view`] — the other groups' totals are
    /// computed by their own leaders concurrently in a real run, so
    /// they are excluded.
    pub planner_seconds: f64,
    /// Modeled reservation-collective traffic per rank per step, bytes
    /// (see [`reservation_wire_bytes`]).
    pub collective_bytes_per_rank: u64,
}

impl StreamSimReport {
    /// Total reserved-but-unused bytes across the stream.
    pub fn total_waste_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.waste_bytes).sum()
    }

    /// Total overflow bytes across the stream.
    pub fn total_overflow_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.overflow_bytes).sum()
    }

    /// Total overflowed partitions across the stream.
    pub fn total_overflow_partitions(&self) -> usize {
        self.steps.iter().map(|s| s.n_overflow).sum()
    }

    /// Mean simulated step time, seconds.
    pub fn mean_step_time(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.steps.iter().map(|s| s.total_time).sum::<f64>() / self.steps.len() as f64
        }
    }
}

/// Stream `cfg.steps` simulated checkpoints over
/// `step_profiles(step)[rank][field]` (shape must be uniform across
/// steps; the callback may return owned or borrowed profile sets).
///
/// Static mode replays the offline predictions with the engine-wide
/// extra-space policy every step. Adaptive mode threads an
/// [`OnlinePredictor`] through the stream exactly like the real-I/O
/// timeline engine: per-partition bias correction plus adaptive
/// headroom (collective per-field bands under
/// [`BandScope::Field`]), fed back from each step's actual sizes.
///
/// The reservation topology changes *costs*, never *bytes*: the
/// sharded layout is byte-identical to flat (pinned by tests), but the
/// collective latency, per-rank wire traffic, and the representative
/// rank's planner wall-clock all shrink — those are what the report
/// exposes for the scale sweeps.
pub fn simulate_stream<F, D>(cfg: &StreamSimConfig, mut step_profiles: F) -> StreamSimReport
where
    F: FnMut(usize) -> D,
    D: std::borrow::Borrow<Vec<Vec<PartitionProfile>>>,
{
    let mut online: Option<OnlinePredictor> = None;
    let mut shape: Option<(usize, usize)> = None;
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut planner_seconds = 0.0;
    let mut collective_bytes_per_rank = 0u64;

    for step in 0..cfg.steps {
        let profiles = step_profiles(step);
        let profiles = profiles.borrow();
        let nranks = profiles.len();
        let nfields = profiles.first().map_or(0, Vec::len);
        match shape {
            None => shape = Some((nranks, nfields)),
            Some(s) => assert_eq!(s, (nranks, nfields), "step {step} changed the stream shape"),
        }
        let gsize = cfg.reservation.effective_group_size(nranks);
        collective_bytes_per_rank = reservation_wire_bytes(nranks, nfields, gsize);

        // Predictions + reserves for this step, per mode. Mirrors the
        // real engine's wire semantics: adaptive headroom `h > 0`
        // reserves `ceil(bytes · h)`, warm-up falls back to the policy.
        let mut preds = vec![Vec::with_capacity(nfields); nranks];
        let mut reserves = vec![Vec::with_capacity(nfields); nranks];
        let mut err_sum = 0.0;
        let mut err_n = 0usize;
        for (r, fields) in profiles.iter().enumerate() {
            for (f, p) in fields.iter().enumerate() {
                let (bytes, ratio, headroom) = match (&cfg.mode, &online) {
                    (AdaptMode::Adaptive(_), Some(pred)) => {
                        let est = pred.predict(r * nfields + f, p.pred_bytes);
                        let ratio = p.raw_bytes as f64 / est.bytes.max(1) as f64;
                        (est.bytes, ratio, est.headroom)
                    }
                    _ => (p.pred_bytes, p.pred_ratio, None),
                };
                let reserve = match headroom {
                    Some(h) if h > 0.0 => (bytes as f64 * h).ceil() as u64,
                    _ => cfg.params.policy.reserve_bytes(bytes, ratio),
                };
                if p.actual_bytes > 0 {
                    err_sum += (bytes as f64 - p.actual_bytes as f64).abs() / p.actual_bytes as f64;
                    err_n += 1;
                }
                preds[r].push(PartitionPrediction { bytes, ratio });
                reserves[r].push(reserve);
            }
        }

        // Plan the layout, timing only the representative rank's
        // critical path. Flat: every rank derives the whole matrix.
        // Sharded: a rank sums its own group per field and projects its
        // view from the exchanged totals; other groups' sums happen on
        // their own leaders in parallel, so they stay untimed here.
        let plan = match gsize {
            None => {
                let t0 = Instant::now();
                let plan = WritePlan::build_reserved(&preds, &reserves, 0);
                planner_seconds += t0.elapsed().as_secs_f64();
                plan
            }
            Some(s) => {
                let n_groups = nranks.div_ceil(s);
                let head = s.min(nranks);
                let mut group_totals: Vec<Vec<u64>> = vec![Vec::new(); n_groups];
                for (g, totals) in group_totals.iter_mut().enumerate().skip(1) {
                    let members = &reserves[g * s..((g + 1) * s).min(nranks)];
                    *totals = (0..nfields)
                        .map(|f| members.iter().map(|m| m[f]).sum())
                        .collect();
                }
                let t0 = Instant::now();
                group_totals[0] = (0..nfields)
                    .map(|f| reserves[..head].iter().map(|m| m[f]).sum())
                    .collect();
                let view =
                    build_rank_view(&group_totals, 0, &preds[..head], &reserves[..head], 0, 0);
                planner_seconds += t0.elapsed().as_secs_f64();
                let plan = WritePlan::build_reserved(&preds, &reserves, 0);
                debug_assert_eq!(view, plan.rank_view(0), "sharded view diverged from flat");
                plan
            }
        };

        let ag = cfg.params.reservation_collective_time(nranks, gsize);
        let result = sim_overlap_planned(profiles, &cfg.params, cfg.reorder, &plan, ag);
        steps.push(StreamStepStats {
            step,
            total_time: result.total_time,
            file_bytes: result.file_bytes,
            compressed_bytes: result.compressed_bytes,
            waste_bytes: result.file_bytes.saturating_sub(result.compressed_bytes),
            overflow_bytes: result.overflow_bytes,
            n_overflow: result.n_overflow,
            mean_rel_err: if err_n == 0 {
                0.0
            } else {
                err_sum / err_n as f64
            },
        });

        // Feed the step's actual sizes back into the predictor.
        if let AdaptMode::Adaptive(ocfg) = &cfg.mode {
            let pred = online.get_or_insert_with(|| match ocfg.band_scope {
                BandScope::Partition => OnlinePredictor::new(nranks * nfields, *ocfg),
                BandScope::Field => {
                    OnlinePredictor::with_band_groups(nranks * nfields, nfields, *ocfg)
                }
            });
            for (r, fields) in profiles.iter().enumerate() {
                for (f, p) in fields.iter().enumerate() {
                    let cell = r * nfields + f;
                    pred.observe(cell, p.pred_bytes, preds[r][f].bytes, p.actual_bytes);
                }
            }
        }
    }

    let (nranks, nfields) = shape.unwrap_or((0, 0));
    StreamSimReport {
        mode: cfg.mode.label().to_string(),
        reservation: cfg.reservation.label().to_string(),
        nranks,
        nfields,
        steps,
        planner_seconds,
        collective_bytes_per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic profile set: `nranks` ranks × `nfields` fields with a
    /// spread of sizes and compression times. Partition size matches
    /// the paper's weak-scaling unit (256³ points = 64 MiB raw).
    fn synth(
        nranks: usize,
        nfields: usize,
        ratio: f64,
        accurate: bool,
    ) -> Vec<Vec<PartitionProfile>> {
        let n_points = 1 << 24; // 16 Mi points = 64 MiB raw
        (0..nranks)
            .map(|r| {
                (0..nfields)
                    .map(|f| {
                        // Deterministic per-partition variation ×[0.6, 1.67].
                        let h = ((r * 31 + f * 17) % 13) as f64 / 13.0;
                        let scale = 0.6 * (1.67f64 / 0.6).powf(h);
                        let raw = (n_points * 4) as u64;
                        let actual = ((raw as f64 / ratio) * scale) as u64;
                        let pred = if accurate {
                            (actual as f64 * 1.02) as u64
                        } else {
                            (actual as f64 * 0.7) as u64 // systematic under-prediction
                        };
                        let bits = actual as f64 * 8.0 / n_points as f64;
                        let tm = ratiomodel::ThroughputModel::paper_reference();
                        PartitionProfile {
                            n_points,
                            raw_bytes: raw,
                            pred_bytes: pred,
                            pred_ratio: raw as f64 / pred as f64,
                            pred_comp_time: tm.compression_time(raw as f64, bits),
                            pred_write_time: actual as f64 / 100e6,
                            actual_bytes: actual,
                            comp_time: tm.compression_time(raw as f64, bits),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn params() -> SimParams {
        SimParams::new(BandwidthModel::summit()).with_policy(ExtraSpacePolicy::new(1.25))
    }

    #[test]
    fn method_ranking_matches_paper() {
        // At a mid compression ratio (~16×) on a congested system:
        // no-comp slowest, filter+collective better, overlap better
        // still, reorder best (Fig. 16 ordering).
        let profiles = synth(512, 6, 16.0, true);
        let rs = simulate_all(&profiles, &params());
        let t = |m: Method| rs.iter().find(|r| r.method == m).unwrap().total_time;
        assert!(t(Method::NoCompression) > t(Method::FilterCollective));
        assert!(t(Method::FilterCollective) > t(Method::Overlap));
        assert!(t(Method::Overlap) >= t(Method::OverlapReorder) * 0.999);
    }

    #[test]
    fn speedups_in_plausible_range() {
        let profiles = synth(512, 6, 16.0, true);
        let rs = simulate_all(&profiles, &params());
        let no = rs[0];
        let best = rs[3];
        let speedup = best.speedup_over(&no);
        assert!(speedup > 2.0 && speedup < 20.0, "speedup {speedup}");
    }

    #[test]
    fn accurate_predictions_no_overflow() {
        let profiles = synth(16, 4, 16.0, true);
        let r = simulate_method(Method::Overlap, &profiles, &params());
        assert_eq!(r.n_overflow, 0);
        assert_eq!(r.overflow_bytes, 0);
        assert!(r.breakdown.overflow == 0.0);
    }

    #[test]
    fn underprediction_causes_overflow_and_cost() {
        let profiles = synth(16, 4, 16.0, false);
        // With 0.7× under-prediction and 1.25 extra space, reservations
        // are 0.875× of actual → every partition overflows.
        let r = simulate_method(Method::Overlap, &profiles, &params());
        // Most partitions overflow (those whose predicted ratio exceeds
        // 32 get the Eq. 3 widened reserve and may still fit).
        assert!(r.n_overflow > 16 * 4 / 2, "n_overflow {}", r.n_overflow);
        assert!(r.overflow_bytes > 0);
        assert!(r.breakdown.overflow > 0.0);
        // Overflow costs time vs. the accurate case.
        let acc = simulate_method(Method::Overlap, &synth(16, 4, 16.0, true), &params());
        assert!(r.total_time > acc.total_time);
    }

    #[test]
    fn storage_overhead_tracks_rspace() {
        let profiles = synth(16, 4, 16.0, true);
        let lo = simulate_method(
            Method::Overlap,
            &profiles,
            &params().with_policy(ExtraSpacePolicy::new(1.1)),
        );
        let hi = simulate_method(
            Method::Overlap,
            &profiles,
            &params().with_policy(ExtraSpacePolicy::new(1.43)),
        );
        assert!(hi.storage_overhead() > lo.storage_overhead());
        // With accurate predictions, overhead ≈ rspace − 1 + prediction slack.
        assert!(
            (hi.storage_overhead() - 0.46).abs() < 0.1,
            "{}",
            hi.storage_overhead()
        );
    }

    #[test]
    fn reorder_gain_vanishes_at_extreme_ratios() {
        // Fig. 17: at very high compression ratio (tiny writes) and at
        // very low ratio (write-dominated), reordering gains little.
        let p = params();
        for ratio in [200.0, 1.3] {
            let profiles = synth(32, 6, ratio, true);
            let ov = simulate_method(Method::Overlap, &profiles, &p);
            let re = simulate_method(Method::OverlapReorder, &profiles, &p);
            let gain = ov.total_time / re.total_time;
            assert!(gain < 1.15, "ratio {ratio}: gain {gain}");
        }
    }

    #[test]
    fn weak_scaling_stable() {
        // Per-rank work constant; total time should not blow up with
        // rank count beyond bandwidth contention effects.
        let base = synth(32, 6, 16.0, true);
        let p = params();
        let t256 = simulate_method(
            Method::OverlapReorder,
            &crate::profile::replicate_profiles(&base, 256),
            &p,
        )
        .total_time;
        let t1024 = simulate_method(
            Method::OverlapReorder,
            &crate::profile::replicate_profiles(&base, 1024),
            &p,
        )
        .total_time;
        // 4× the ranks on a shared cap: at most ~5× the time.
        assert!(t1024 < t256 * 6.0, "t256 {t256} t1024 {t1024}");
        assert!(t1024 > t256, "more contention must not be faster");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let profiles = synth(16, 6, 16.0, false);
        for m in Method::ALL {
            let r = simulate_method(m, &profiles, &params());
            assert!(
                (r.breakdown.total() - r.total_time).abs() < 1e-6,
                "{m:?}: {} vs {}",
                r.breakdown.total(),
                r.total_time
            );
        }
    }

    fn stream_cfg(
        mode: AdaptMode,
        reservation: ReservationTopology,
        steps: usize,
    ) -> StreamSimConfig {
        StreamSimConfig {
            params: params(),
            mode,
            reservation,
            steps,
            reorder: false,
        }
    }

    fn adaptive() -> AdaptMode {
        AdaptMode::Adaptive(ratiomodel::OnlineConfig::default())
    }

    #[test]
    fn adaptive_stream_cures_systematic_underprediction() {
        // The offline model under-predicts by 0.7× every step; the
        // static stream overflows forever, the adaptive stream learns
        // the bias within a few steps and stops overflowing.
        let profiles = synth(16, 4, 16.0, false);
        let stat = simulate_stream(
            &stream_cfg(AdaptMode::Static, ReservationTopology::Flat, 8),
            |_| &profiles,
        );
        let adap = simulate_stream(
            &stream_cfg(adaptive(), ReservationTopology::Flat, 8),
            |_| &profiles,
        );
        assert!(stat.total_overflow_partitions() > 0, "static must overflow");
        assert!(
            adap.total_overflow_bytes() < stat.total_overflow_bytes() / 2,
            "adaptive {} vs static {}",
            adap.total_overflow_bytes(),
            stat.total_overflow_bytes()
        );
        // Error collapses once the bias correction kicks in.
        assert!(adap.steps.last().unwrap().mean_rel_err < adap.steps[0].mean_rel_err / 2.0);
        // Static replays the same step forever.
        assert!(stat
            .steps
            .iter()
            .all(|s| s.n_overflow == stat.steps[0].n_overflow));
    }

    #[test]
    fn adaptive_stream_trims_waste_on_stable_history() {
        // With accurate predictions the static policy still pads every
        // reservation by rspace − 1; adaptive headroom tightens toward
        // the observed error band and wastes less space.
        let profiles = synth(16, 4, 16.0, true);
        let stat = simulate_stream(
            &stream_cfg(AdaptMode::Static, ReservationTopology::Flat, 8),
            |_| &profiles,
        );
        let adap = simulate_stream(
            &stream_cfg(adaptive(), ReservationTopology::Flat, 8),
            |_| &profiles,
        );
        assert_eq!(
            adap.total_overflow_bytes(),
            0,
            "stable history must not overflow"
        );
        assert!(
            adap.total_waste_bytes() < stat.total_waste_bytes(),
            "adaptive {} vs static {}",
            adap.total_waste_bytes(),
            stat.total_waste_bytes()
        );
    }

    #[test]
    fn sharded_stream_steps_identical_to_flat() {
        // Topology changes costs, not bytes: every per-step stat except
        // the collective-latency contribution to total_time must match.
        // With equal allgather terms the times match too, so compare at
        // a group size whose two-level latency happens to differ and
        // assert the byte-level fields are equal.
        let profiles = synth(24, 3, 16.0, false);
        for mode in [AdaptMode::Static, adaptive()] {
            let flat = simulate_stream(&stream_cfg(mode, ReservationTopology::Flat, 4), |_| {
                &profiles
            });
            let shard = simulate_stream(
                &stream_cfg(mode, ReservationTopology::Sharded { group_size: 5 }, 4),
                |_| &profiles,
            );
            for (a, b) in flat.steps.iter().zip(&shard.steps) {
                assert_eq!(a.file_bytes, b.file_bytes);
                assert_eq!(a.compressed_bytes, b.compressed_bytes);
                assert_eq!(a.waste_bytes, b.waste_bytes);
                assert_eq!(a.overflow_bytes, b.overflow_bytes);
                assert_eq!(a.n_overflow, b.n_overflow);
                assert_eq!(a.mean_rel_err, b.mean_rel_err);
            }
            // Sharding shrinks the per-rank reservation wire traffic.
            assert!(shard.collective_bytes_per_rank < flat.collective_bytes_per_rank);
        }
    }

    #[test]
    fn field_scope_bands_flow_through_stream() {
        let cfg = ratiomodel::OnlineConfig {
            band_scope: ratiomodel::BandScope::Field,
            ..ratiomodel::OnlineConfig::default()
        };
        let profiles = synth(16, 4, 16.0, false);
        let r = simulate_stream(
            &stream_cfg(AdaptMode::Adaptive(cfg), ReservationTopology::Flat, 8),
            |_| &profiles,
        );
        // Collective bands adapt too — the bias fix dominates either
        // way, so the field-scoped stream also stops overflowing.
        assert!(r.steps.last().unwrap().overflow_bytes < r.steps[0].overflow_bytes / 2);
    }

    #[test]
    fn stream_report_shape_and_planner_cost() {
        let profiles = synth(512, 4, 16.0, true);
        let r = simulate_stream(
            &stream_cfg(
                AdaptMode::Static,
                ReservationTopology::Sharded { group_size: 0 },
                3,
            ),
            |_| &profiles,
        );
        assert_eq!((r.nranks, r.nfields), (512, 4));
        assert_eq!(r.steps.len(), 3);
        assert_eq!(r.reservation, "sharded");
        assert!(r.planner_seconds > 0.0 && r.planner_seconds.is_finite());
        // √512 → 23-rank groups: far less wire than the 512-rank gather.
        assert!(r.collective_bytes_per_rank < reservation_wire_bytes(512, 4, None) / 4);
    }

    #[test]
    #[should_panic(expected = "changed the stream shape")]
    fn stream_rejects_shape_change() {
        let cfg = stream_cfg(AdaptMode::Static, ReservationTopology::Flat, 2);
        let mut n = 0usize;
        simulate_stream(&cfg, |_| {
            n += 1;
            synth(8 + n, 2, 16.0, true)
        });
    }
}
