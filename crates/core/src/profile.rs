//! Partition profiles: the per-partition quantities both engines need.
//!
//! A profile captures what the planner knows *before* compression
//! (predictions) and what execution later reveals (actual size). The
//! real engine produces profiles as a side effect; the simulated
//! engine consumes pre-computed profiles, which is what lets scale
//! sweeps to 4096 ranks replay measured distributions instead of
//! holding 4096 ranks of live data (DESIGN.md substitution 5).

use ratiomodel::Models;
use szlite::{compress_with_stats, Config, Dims, Result};

/// Everything known about one (rank, field) partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionProfile {
    /// Points in the partition.
    pub n_points: usize,
    /// Uncompressed bytes.
    pub raw_bytes: u64,
    /// Predicted compressed bytes (ratio model).
    pub pred_bytes: u64,
    /// Predicted compression ratio.
    pub pred_ratio: f64,
    /// Predicted compression time (Eq. 1).
    pub pred_comp_time: f64,
    /// Predicted write time (Eq. 2).
    pub pred_write_time: f64,
    /// Actual compressed bytes (ground truth after compression).
    pub actual_bytes: u64,
    /// Compression time used by the simulator: Eq. (1) evaluated at
    /// the *actual* bit-rate (deterministic, hardware-independent).
    pub comp_time: f64,
}

impl PartitionProfile {
    /// Actual compressed bit-rate, bits/value.
    pub fn actual_bit_rate(&self) -> f64 {
        self.actual_bytes as f64 * 8.0 / self.n_points as f64
    }

    /// Prediction error (signed, relative to actual).
    pub fn prediction_error(&self) -> f64 {
        (self.pred_bytes as f64 - self.actual_bytes as f64) / self.actual_bytes as f64
    }
}

/// Build a profile by running the prediction phase and a real
/// compression over `data`.
pub fn profile_partition(
    data: &[f32],
    dims: &Dims,
    cfg: &Config,
    models: &Models,
) -> Result<PartitionProfile> {
    let est = ratiomodel::estimate_partition(data, dims, cfg, models)?;
    let (_, st) = compress_with_stats(data, dims, cfg)?;
    let raw_bytes = (data.len() * 4) as u64;
    let actual_bits = st.compressed_bytes as f64 * 8.0 / data.len() as f64;
    Ok(PartitionProfile {
        n_points: data.len(),
        raw_bytes,
        pred_bytes: est.bytes,
        pred_ratio: est.ratio,
        pred_comp_time: est.comp_time,
        pred_write_time: est.write_time,
        actual_bytes: st.compressed_bytes as u64,
        comp_time: models
            .throughput
            .compression_time(raw_bytes as f64, actual_bits),
    })
}

/// Extend measured profiles (`base[rank][field]`) to `target_ranks`
/// for scale sweeps: ranks beyond the measured set reuse measured rows
/// cyclically with a small deterministic size perturbation, preserving
/// the per-partition bit-rate distribution (the property Fig. 1
/// establishes) without requiring live data at scale.
pub fn replicate_profiles(
    base: &[Vec<PartitionProfile>],
    target_ranks: usize,
) -> Vec<Vec<PartitionProfile>> {
    assert!(!base.is_empty());
    (0..target_ranks)
        .map(|r| {
            let src = &base[r % base.len()];
            if r < base.len() {
                return src.clone();
            }
            // Deterministic ±8 % perturbation of compressed sizes.
            src.iter()
                .enumerate()
                .map(|(f, p)| {
                    let mut h = (r as u64)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(f as u64);
                    h ^= h >> 31;
                    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                    h ^= h >> 29;
                    let scale = 1.0 + ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.16;
                    let actual = ((p.actual_bytes as f64) * scale).max(1.0) as u64;
                    let pred = ((p.pred_bytes as f64) * scale).max(1.0) as u64;
                    PartitionProfile {
                        actual_bytes: actual,
                        pred_bytes: pred,
                        ..*p
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin()).collect()
    }

    fn models() -> Models {
        Models::with_cthr(100e6)
    }

    #[test]
    fn profile_has_consistent_fields() {
        let data = wave(4096);
        let p =
            profile_partition(&data, &Dims::d3(16, 16, 16), &Config::rel(1e-3), &models()).unwrap();
        assert_eq!(p.n_points, 4096);
        assert_eq!(p.raw_bytes, 16384);
        assert!(p.actual_bytes > 0 && p.actual_bytes < p.raw_bytes);
        assert!(p.comp_time > 0.0);
        assert!(p.prediction_error().abs() < 0.5);
    }

    #[test]
    fn replicate_preserves_measured_prefix() {
        let data = wave(1000);
        let p = profile_partition(&data, &Dims::d1(1000), &Config::rel(1e-3), &models()).unwrap();
        let base = vec![vec![p], vec![p]];
        let big = replicate_profiles(&base, 8);
        assert_eq!(big.len(), 8);
        assert_eq!(big[0], base[0]);
        assert_eq!(big[1], base[1]);
        // Extended ranks are perturbed but close.
        #[allow(clippy::needless_range_loop)]
        for r in 2..8 {
            let a = big[r][0].actual_bytes as f64;
            let b = p.actual_bytes as f64;
            assert!((a / b - 1.0).abs() <= 0.09, "rank {r}: {a} vs {b}");
        }
    }

    #[test]
    fn replicate_is_deterministic() {
        let data = wave(500);
        let p = profile_partition(&data, &Dims::d1(500), &Config::rel(1e-3), &models()).unwrap();
        let base = vec![vec![p]];
        assert_eq!(replicate_profiles(&base, 16), replicate_profiles(&base, 16));
    }
}
