//! Read-back verification: the decode half of the engine's round trip.
//!
//! A write-side pipeline is only trustworthy if what landed on disk
//! decodes back within the configured error bound. This module
//! re-opens the file produced by [`run_real`](crate::real::run_real),
//! decompresses every field through the *pipelined* reader
//! ([`h5lite::H5Reader::read_full_pipelined`]) and checks each element
//! against its partition's resolved bound — the same resolution rule
//! the compressor used (value-range-relative bounds resolve against
//! each rank's finite min/max). Each worker decodes through szlite's
//! table-driven entropy path (LUT Huffman over the word-buffered bit
//! reader, via the recycled `DecompressScratch` in its
//! `FilterScratch`), so the verification phase rides every read-side
//! speedup automatically.
//!
//! It runs standalone (any written file plus the original in-memory
//! partitions) or as the opt-in `verify` phase of a real run
//! ([`RealConfig::verify`](crate::real::RealConfig)), where its wall
//! clock lands in [`Breakdown::verify`](crate::metrics::Breakdown).

use crate::real::{RankFieldData, RealError};
use h5lite::H5Reader;
use std::path::Path;
use szlite::Config;

/// Per-field outcome of a verification pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldReport {
    /// Dataset path in the file.
    pub name: String,
    /// Elements checked across all ranks.
    pub n_points: usize,
    /// Worst observed |original − restored| over finite points.
    pub max_abs_err: f64,
    /// Largest resolved per-rank bound the field was checked against
    /// (0 for lossless runs, where equality is required).
    pub max_bound: f64,
    /// Whether every element honored its bound.
    pub ok: bool,
}

/// Outcome of a verification pass over a whole file.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// One report per field, in field order.
    pub fields: Vec<FieldReport>,
}

impl VerifyReport {
    /// True when every field verified clean.
    pub fn ok(&self) -> bool {
        self.fields.iter().all(|f| f.ok)
    }

    /// Total elements checked.
    pub fn n_points(&self) -> usize {
        self.fields.iter().map(|f| f.n_points).sum()
    }
}

/// Resolve the absolute bound a rank's partition was compressed under
/// — literally the compressor's own resolution rule
/// ([`szlite::ErrorBound::resolve_for`]), so the check can never
/// drift from what the stream was produced with.
fn resolve_bound(cfg: &Config, data: &[f32]) -> Result<f64, RealError> {
    cfg.error_bound
        .resolve_for(data)
        .map_err(|e| RealError(format!("verify: {e}")))
}

/// Verify one element against its bound. Non-finite originals must
/// round-trip bit-exactly (the compressor stores them verbatim).
#[inline]
fn element_ok(orig: f32, restored: f32, eb: f64) -> bool {
    if orig.is_finite() {
        (f64::from(orig) - f64::from(restored)).abs() <= eb
    } else {
        orig.to_bits() == restored.to_bits()
    }
}

/// Re-open `path`, decode every field with the pipelined reader at
/// `workers` threads and check every element of every rank partition
/// against its resolved bound.
///
/// `configs` carries one compression [`Config`] per field; pass `None`
/// for a no-compression run, which demands exact equality instead.
/// Returns the per-field report; decoding failures (unreadable file,
/// shape mismatch) surface as [`RealError`], while bound violations
/// are recorded in the report (`ok = false`) for the caller to act on.
pub fn verify_file(
    path: &Path,
    data: &[Vec<RankFieldData>],
    configs: Option<&[Config]>,
    workers: usize,
) -> Result<VerifyReport, RealError> {
    let reader = H5Reader::open(path)?;
    let nranks = data.len();
    let nfields = data.first().map_or(0, Vec::len);
    // The standalone entry point cannot rely on run_real's input
    // validation: reject ragged shapes up front instead of panicking.
    for (r, rank_fields) in data.iter().enumerate() {
        if rank_fields.len() != nfields {
            return Err(RealError(format!(
                "verify: rank {r} has {} fields, expected {nfields}",
                rank_fields.len()
            )));
        }
    }
    if let Some(cfgs) = configs {
        if cfgs.len() != nfields {
            return Err(RealError(format!(
                "verify: {} configs for {nfields} fields",
                cfgs.len()
            )));
        }
    }
    let mut fields = Vec::with_capacity(nfields);
    for f in 0..nfields {
        let name = &data[0][f].name;
        let restored = reader
            .read_pipelined::<f32>(name, workers)
            .map_err(|e| RealError(format!("verify {name}: {e}")))?;
        let part_len = data[0][f].data.len();
        if restored.len() != part_len * nranks {
            return Err(RealError(format!(
                "verify {name}: decoded {} points, expected {}",
                restored.len(),
                part_len * nranks
            )));
        }
        let mut max_abs_err = 0.0f64;
        let mut max_bound = 0.0f64;
        let mut ok = true;
        for (r, rank_fields) in data.iter().enumerate() {
            let orig = &rank_fields[f].data;
            if orig.len() != part_len {
                return Err(RealError(format!(
                    "verify {name}: rank {r} partition has {} points, expected {part_len}",
                    orig.len()
                )));
            }
            let chunk = &restored[r * part_len..(r + 1) * part_len];
            let eb = match configs {
                Some(cfgs) => resolve_bound(&cfgs[f], orig)?,
                None => 0.0,
            };
            max_bound = max_bound.max(eb);
            for (&a, &b) in orig.iter().zip(chunk) {
                let good = element_ok(a, b, eb);
                if a.is_finite() {
                    let d = (f64::from(a) - f64::from(b)).abs();
                    // A NaN restore of a finite original would vanish
                    // under f64::max; report it as an infinite error so
                    // the failure message stays truthful.
                    max_abs_err = if d.is_nan() {
                        f64::INFINITY
                    } else {
                        max_abs_err.max(d)
                    };
                } else if !good {
                    max_abs_err = f64::INFINITY;
                }
                ok &= good;
            }
        }
        fields.push(FieldReport {
            name: name.clone(),
            n_points: part_len * nranks,
            max_abs_err,
            max_bound,
            ok,
        });
    }
    Ok(VerifyReport { fields })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_check_handles_nonfinite() {
        assert!(element_ok(1.0, 1.0005, 1e-3));
        assert!(!element_ok(1.0, 1.1, 1e-3));
        assert!(element_ok(f32::NAN, f32::NAN, 0.0));
        assert!(element_ok(f32::INFINITY, f32::INFINITY, 0.0));
        assert!(!element_ok(f32::INFINITY, f32::NEG_INFINITY, 0.0));
        assert!(!element_ok(f32::NAN, 0.0, 1e9));
    }

    #[test]
    fn bound_resolution_matches_compressor() {
        // Relative bounds resolve against the finite range; absolute
        // bounds pass through; all-NaN partitions use the constant
        // fallback (range 0 → |min|.max(1) scaling).
        let data = vec![-1.0f32, 3.0, f32::NAN];
        let eb = resolve_bound(&Config::rel(1e-2), &data).unwrap();
        assert!((eb - 0.04).abs() < 1e-12);
        let eb = resolve_bound(&Config::abs(0.5), &data).unwrap();
        assert!((eb - 0.5).abs() < 1e-12);
        let all_nan = vec![f32::NAN; 4];
        assert!(resolve_bound(&Config::rel(1e-2), &all_nan).unwrap() > 0.0);
    }
}
