//! # predwrite — predictive lossy compression deeply integrated with
//! parallel write
//!
//! The core of the SC'22 paper reproduction: pre-computing shared-file
//! write offsets from *predicted* compressed sizes so compression and
//! parallel writes overlap, instead of serializing compress → gather →
//! collective-write as the H5Z-SZ filter path must.
//!
//! Pipeline (paper §III, Fig. 3):
//!
//! 1. **Predict** ratio + compression/write time per partition
//!    (`ratiomodel`), ~5 % of compression cost.
//! 2. **All-gather** predicted sizes; every rank then derives the
//!    *same* file layout independently ([`plan::WritePlan`]), each
//!    slot padded by the extra-space policy ([`extraspace`], Eq. 3).
//! 3. **Reorder** each rank's compression queue to maximize
//!    compute/write overlap ([`scheduler`], Algorithm 1).
//! 4. **Overlap**: compress each field and hand the stream to an
//!    asynchronous write (h5lite event set) targeting the
//!    pre-computed offset.
//! 5. **Redirect overflow**: partitions larger than their reservation
//!    write a fitting prefix in place; the excess is appended past the
//!    reserved region after an all-gather of overflow sizes (Fig. 8).
//! 6. **Verify (opt-in)**: re-open the closed file, decode every field
//!    through the pipelined reader and check each element against its
//!    resolved error bound ([`verify`]), timed as its own phase.
//!
//! Two engines execute the pipeline: [`real`] (threads-as-ranks, real
//! compression, real throttled file I/O; used up to 64 ranks) and
//! [`sim`] (discrete-event replay of partition profiles; used for the
//! 256–4096-rank sweeps of Fig. 16–18). Both share the planner code.
//!
//! The real engine's predict phase is pluggable
//! ([`real::PredictionSource`]): [`real::run_real_with`] swaps the
//! prediction source, accepts per-partition extra-space headroom, and
//! returns per-partition [`real::FieldObservation`]s — the hooks the
//! `timeline` checkpoint-stream engine uses to adapt predictions and
//! headroom from step to step.

pub mod extraspace;
pub mod metrics;
pub mod plan;
pub mod profile;
pub mod real;
pub mod scheduler;
pub mod sim;
pub mod verify;

pub use extraspace::{weight_to_rspace, ExtraSpacePolicy, RSPACE_MAX, RSPACE_MIN};
pub use metrics::{Breakdown, Method, RunResult};
pub use plan::{
    build_rank_view, fit_split, plan_overflow, reservation_wire_bytes, FitSplit,
    PartitionPrediction, PartitionSlot, RankPlanView, WritePlan,
};
pub use profile::{profile_partition, replicate_profiles, PartitionProfile};
pub use real::{
    run_real, run_real_with, AdaptMode, FieldObservation, ModelSource, PredictionSource,
    RankFieldData, RealConfig, RealError, ReservationTopology, RunObservations, SourceEstimate,
};
pub use scheduler::{identity_order, optimize_order, queue_time};
pub use sim::{
    simulate_all, simulate_method, simulate_stream, SimParams, StreamSimConfig, StreamSimReport,
    StreamStepStats,
};
pub use verify::{verify_file, FieldReport, VerifyReport};
