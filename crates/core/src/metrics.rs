//! Result records shared by the real and simulated engines.

/// The four parallel-write methods of the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// (1) Independent write, no compression (the paper's first
    /// baseline; independent beats collective for raw data, §IV-D).
    NoCompression,
    /// (2) Compression filter + collective write (H5Z-SZ baseline).
    FilterCollective,
    /// (3) Predictive overlap of compression and independent async
    /// write, original field order.
    Overlap,
    /// (4) Overlap + compression-order optimization (Algorithm 1).
    OverlapReorder,
}

impl Method {
    /// All methods, in the paper's presentation order.
    pub const ALL: [Method; 4] = [
        Method::NoCompression,
        Method::FilterCollective,
        Method::Overlap,
        Method::OverlapReorder,
    ];

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::NoCompression => "no-compression",
            Method::FilterCollective => "filter+collective",
            Method::Overlap => "overlapping",
            Method::OverlapReorder => "overlap+reorder",
        }
    }
}

/// Per-phase time breakdown (the stacked bars of Fig. 16/17).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Ratio/throughput prediction (sampling) time.
    pub predict: f64,
    /// All-gather communication time (prediction + overflow rounds).
    pub allgather: f64,
    /// Compression time (max over ranks of the serial compute span).
    pub compress: f64,
    /// Write time. For overlapped methods this is the *extra* write
    /// time after the last compression finished (the paper's gray
    /// bar); for baselines it is the full write phase.
    pub write: f64,
    /// Overflow handling time (gather + redirected writes).
    pub overflow: f64,
    /// Read-back verification time (re-open, pipelined decode, bound
    /// check); zero unless the run enables verification.
    pub verify: f64,
}

impl Breakdown {
    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.predict + self.allgather + self.compress + self.write + self.overflow + self.verify
    }
}

/// Outcome of one parallel-write run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Which method ran.
    pub method: Method,
    /// End-to-end time (slowest rank), seconds.
    pub total_time: f64,
    /// Phase breakdown.
    pub breakdown: Breakdown,
    /// Uncompressed bytes across all partitions.
    pub raw_bytes: u64,
    /// Actual compressed bytes (= raw for no-compression).
    pub compressed_bytes: u64,
    /// Bytes occupied in the shared file (reserved + overflow).
    pub file_bytes: u64,
    /// Partitions that overflowed their reservation.
    pub n_overflow: usize,
    /// Total overflow bytes redirected.
    pub overflow_bytes: u64,
}

impl RunResult {
    /// Effective compression ratio including extra-space waste
    /// (the paper's "actual compression ratio", e.g. 14.13× vs the
    /// ideal 17.94× in Fig. 16).
    pub fn effective_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.file_bytes.max(1) as f64
    }

    /// Ideal compression ratio (no extra space).
    pub fn ideal_ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes.max(1) as f64
    }

    /// Storage overhead relative to the ideal compressed size.
    pub fn storage_overhead(&self) -> f64 {
        self.file_bytes as f64 / self.compressed_bytes.max(1) as f64 - 1.0
    }

    /// Storage overhead relative to the *original* data (the paper's
    /// headline "1.5 % of original data" framing).
    pub fn storage_overhead_vs_original(&self) -> f64 {
        (self.file_bytes.saturating_sub(self.compressed_bytes)) as f64
            / self.raw_bytes.max(1) as f64
    }

    /// Speedup of this run over another (other / self).
    pub fn speedup_over(&self, other: &RunResult) -> f64 {
        other.total_time / self.total_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr(total: f64, raw: u64, comp: u64, file: u64) -> RunResult {
        RunResult {
            method: Method::Overlap,
            total_time: total,
            breakdown: Breakdown::default(),
            raw_bytes: raw,
            compressed_bytes: comp,
            file_bytes: file,
            n_overflow: 0,
            overflow_bytes: 0,
        }
    }

    #[test]
    fn ratios() {
        let r = rr(1.0, 1600, 100, 125);
        assert!((r.ideal_ratio() - 16.0).abs() < 1e-12);
        assert!((r.effective_ratio() - 12.8).abs() < 1e-12);
        assert!((r.storage_overhead() - 0.25).abs() < 1e-12);
        assert!((r.storage_overhead_vs_original() - 25.0 / 1600.0).abs() < 1e-12);
    }

    #[test]
    fn speedup() {
        let fast = rr(1.0, 100, 100, 100);
        let slow = rr(4.0, 100, 100, 100);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total() {
        let b = Breakdown {
            predict: 1.0,
            allgather: 2.0,
            compress: 3.0,
            write: 4.0,
            overflow: 5.0,
            verify: 6.0,
        };
        assert_eq!(b.total(), 21.0);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
