//! Property and concurrency tests of the obs internals.
//!
//! 1. The log-bucketed histogram's nearest-rank percentiles track an
//!    exact sorted oracle within the bucket-width bound (`exact/4 + 1`,
//!    typically ≤ 12.5%) on arbitrary sample sets.
//! 2. Per-thread span buffers interleave without loss: N threads each
//!    record K nested spans concurrently and every event survives the
//!    drain with consistent per-thread nesting.
//! 3. Random garbage prepended/appended to a valid flight-recorder
//!    file never panics the reader and never loses the valid record.

use proptest::prelude::*;

use obs::metrics::Histogram;
use obs::trace;

/// Exact nearest-rank percentile over a sorted copy of the samples —
/// the oracle the histogram estimate is checked against.
fn exact_percentile(samples: &mut [u64], p: f64) -> u64 {
    samples.sort_unstable();
    let n = samples.len() as u64;
    let k = ((p * n as f64).ceil() as u64).clamp(1, n);
    samples[(k - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0x0B5E_2026) /* pinned: deterministic CI */)]

    #[test]
    fn histogram_percentiles_match_sorted_oracle_within_bucket_error(
        samples in proptest::collection::vec(0u64..=1u64 << 40, 1..400),
        p in 0.01f64..1.0,
    ) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        let mut sorted = samples.clone();
        let exact = exact_percentile(&mut sorted, p);
        let est = h.percentile(p);
        // The estimate is the midpoint of the bucket holding the exact
        // nearest-rank sample; a bucket is at most 1/4 of its lower
        // bound wide (+1 absorbs the exact unit buckets at 0).
        let bound = exact / 4 + 1;
        let err = est.abs_diff(exact);
        prop_assert!(
            err <= bound,
            "p={p}: est {est} vs exact {exact} (err {err} > bound {bound})"
        );
        // p100 never exceeds the true maximum and stays within the
        // same bucket-width bound of it.
        let max = *sorted.last().unwrap();
        let p100 = h.percentile(1.0);
        prop_assert!(p100 <= max);
        prop_assert!(max - p100 <= max / 4 + 1, "p100 {p100} vs max {max}");
    }

    #[test]
    fn flight_reader_survives_arbitrary_garbage_lines(
        garbage in proptest::collection::vec(proptest::collection::vec(0u64..=255, 0..60), 0..6),
        step in 0u64..10_000,
    ) {
        let rec = obs::StepFlight { step, host_parallelism: 1, ..Default::default() };
        let dir = std::env::temp_dir().join(format!("obs_props_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("garbage-{step}.obs.jsonl"));
        let mut body = Vec::new();
        for g in &garbage {
            // Strip newlines so each garbage blob stays one line.
            body.extend(
                g.iter()
                    .map(|&b| b as u8)
                    .filter(|&b| b != b'\n' && b != b'\r'),
            );
            body.push(b'\n');
        }
        body.extend(rec.to_json_line().as_bytes());
        body.push(b'\n');
        std::fs::write(&path, &body).unwrap();
        // Must not panic; the valid record must survive whatever the
        // garbage lines did. (Non-UTF-8 bytes surface as a file-level
        // Io error from read_to_string, which is also acceptable.)
        match obs::read_flight(&path) {
            Ok(scan) => {
                prop_assert_eq!(
                    scan.records.iter().filter(|r| r.step == step).count(),
                    1,
                    "valid record lost among {} errors",
                    scan.errors.len()
                );
            }
            Err(obs::FlightError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

/// N threads × K nested span pairs recorded concurrently: nothing is
/// lost, thread ids stay distinct, and nesting depths are consistent
/// within each thread.
#[test]
fn concurrent_span_buffers_interleave_without_loss() {
    const THREADS: usize = 8;
    const SPANS: usize = 200;
    trace::set_enabled(true);
    // Flush anything a previous test in this binary left behind so the
    // counts below are exact.
    trace::drain();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for i in 0..SPANS {
                    let _outer = trace::span_arg("prop.outer", i as u64);
                    let _inner = trace::span("prop.inner");
                }
                // Scoped-thread closures finish before TLS destructors
                // run, so workers flush explicitly (the same pattern
                // the engine's worker threads use).
                trace::flush_thread();
            });
        }
    });
    let events = trace::drain();
    trace::set_enabled(false);
    assert_eq!(
        events.len(),
        THREADS * SPANS * 2,
        "events lost or duplicated"
    );

    use std::collections::BTreeMap;
    let mut by_tid: BTreeMap<u64, Vec<&obs::SpanEvent>> = BTreeMap::new();
    for e in &events {
        by_tid.entry(e.tid).or_default().push(e);
    }
    assert_eq!(by_tid.len(), THREADS, "thread ids collided or went missing");
    for (tid, evs) in &by_tid {
        let outers = evs.iter().filter(|e| e.name == "prop.outer").count();
        let inners = evs.iter().filter(|e| e.name == "prop.inner").count();
        assert_eq!(outers, SPANS, "tid {tid}: outer spans lost");
        assert_eq!(inners, SPANS, "tid {tid}: inner spans lost");
        for e in evs {
            match e.name {
                "prop.outer" => assert_eq!(e.depth, 0, "tid {tid}"),
                "prop.inner" => assert_eq!(e.depth, 1, "tid {tid}"),
                other => panic!("tid {tid}: foreign span {other}"),
            }
        }
        // drain() sorts parent-first: each inner is contained in the
        // outer that precedes it.
        for pair in evs.chunks(2) {
            let (outer, inner) = (pair[0], pair[1]);
            assert_eq!(outer.name, "prop.outer");
            assert_eq!(inner.name, "prop.inner");
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        }
    }
}
