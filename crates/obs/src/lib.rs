//! # obs — zero-dependency observability for the checkpoint stack
//!
//! Three pillars, all std-only so every workspace crate (down to the
//! leaf compressor) can instrument through this crate:
//!
//! * [`trace`] — scoped RAII spans in lock-free per-thread buffers,
//!   exported as Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto) via the `OBS_TRACE=path.json` env knob. Compiled in
//!   but disabled by default; the disabled path is one relaxed atomic
//!   load.
//! * [`metrics`] — a process-wide registry of named counters, gauges
//!   (with high-water marks), and log-bucketed histograms with
//!   p50/p90/p99 extraction. No allocation or locking on the record
//!   path.
//! * [`flight`] — the per-step JSONL flight recorder
//!   (`step-NNNN.obs.jsonl` beside the `.pred` sidecars), readable
//!   after a crash with typed per-line errors.
//!
//! [`json`] is the workspace's shared strict mini JSON parser /
//! escaper backing the flight recorder, the trace validator in the
//! bench suite, and `scrub --json`.

pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

pub use flight::{flight_path, read_flight, FlightError, FlightScan, StepFlight};
pub use json::Json;
pub use metrics::{counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, Snapshot};
pub use trace::{enabled, export_env, set_enabled, span, span_arg, Span, SpanEvent};
