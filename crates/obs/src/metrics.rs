//! Process-wide metrics registry: named counters, gauges, and
//! log-bucketed histograms.
//!
//! The record path is allocation-free and lock-free: handles returned
//! by [`counter`]/[`gauge`]/[`histogram`] are `&'static` references to
//! leaked atomics, so instrumented code pays one registry lock at
//! first lookup (cache the handle in a `OnceLock`) and plain relaxed
//! atomic operations per event afterwards. [`snapshot`] walks the
//! registry for reporting; per-interval figures come from snapshot
//! deltas, since the registry lives for the whole process.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, bytes in flight) with a
/// high-water mark that survives until explicitly reset.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
    hwm: AtomicI64,
}

impl Gauge {
    const fn new() -> Self {
        Gauge {
            v: AtomicI64::new(0),
            hwm: AtomicI64::new(0),
        }
    }

    /// Adjust the level by `d` (negative to decrease); returns the new
    /// level and folds it into the high-water mark.
    #[inline]
    pub fn add(&self, d: i64) -> i64 {
        let now = self.v.fetch_add(d, Ordering::Relaxed) + d;
        self.hwm.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Set the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
        self.hwm.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Highest level seen since the last [`Gauge::reset_high_water`].
    pub fn high_water(&self) -> i64 {
        self.hwm.load(Ordering::Relaxed)
    }

    /// Restart high-water tracking from the current level, returning
    /// the old mark. Used for per-step maxima over a global gauge.
    pub fn reset_high_water(&self) -> i64 {
        self.hwm.swap(self.get(), Ordering::Relaxed)
    }
}

/// Bucket count: exact buckets for 0..16, then 4 sub-buckets per
/// octave up to `u64::MAX` (16 + 60·4 = 256).
pub const N_BUCKETS: usize = 256;

/// Log-bucketed histogram of `u64` samples.
///
/// Values below 16 land in exact unit buckets; above that each octave
/// splits into 4 sub-buckets, so a bucket's width is at most 1/4 of
/// its lower bound and percentile estimates carry at most ~12.5%
/// relative error (25% worst case at the bucket edge, which the
/// property test bounds as `exact/4 + 1`).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 2)) & 3) as usize;
        16 + (msb - 4) * 4 + sub
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        let octave = (i - 16) / 4 + 4;
        let sub = ((i - 16) % 4) as u64;
        (4 + sub) << (octave - 2)
    }
}

/// Representative value reported for bucket `i` (its midpoint).
fn bucket_mid(i: usize) -> u64 {
    if i < 16 {
        return i as u64;
    }
    let octave = (i - 16) / 4 + 4;
    let width = 1u64 << (octave - 2);
    bucket_lo(i) + (width - 1) / 2
}

impl Histogram {
    const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile estimate for `p` in (0, 1]: the
    /// midpoint of the bucket holding the `ceil(p·count)`-th smallest
    /// sample, clamped to the observed maximum. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let k = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= k {
                return bucket_mid(i).min(self.max());
            }
        }
        self.max()
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge `(level, high_water)` by name.
    pub gauges: BTreeMap<String, (i64, i64)>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// Counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter growth since `earlier` (saturating, so a registry
    /// recreated between snapshots reads as 0, not a panic).
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    hists: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Metric updates are plain atomics; a poisoned registry lock can
    // only mean a panic mid-insert, where the map is still consistent.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Look up (or register) the counter called `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    lock(&registry().counters)
        .entry(name)
        .or_insert_with(|| &*Box::leak(Box::new(Counter::new())))
}

/// Look up (or register) the gauge called `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    lock(&registry().gauges)
        .entry(name)
        .or_insert_with(|| &*Box::leak(Box::new(Gauge::new())))
}

/// Look up (or register) the histogram called `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    lock(&registry().hists)
        .entry(name)
        .or_insert_with(|| &*Box::leak(Box::new(Histogram::new())))
}

/// Copy every registered metric's current state.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut snap = Snapshot::default();
    for (name, c) in lock(&reg.counters).iter() {
        snap.counters.insert((*name).to_string(), c.get());
    }
    for (name, g) in lock(&reg.gauges).iter() {
        snap.gauges
            .insert((*name).to_string(), (g.get(), g.high_water()));
    }
    for (name, h) in lock(&reg.hists).iter() {
        snap.hists.insert(
            (*name).to_string(),
            HistSummary {
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                p50: h.percentile(0.50),
                p90: h.percentile(0.90),
                p99: h.percentile(0.99),
            },
        );
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotonic_and_self_consistent() {
        // Every bucket's lower bound maps back to that bucket, bounds
        // strictly ascend, and the midpoint stays inside the bucket.
        for i in 0..N_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            if i > 0 {
                assert!(bucket_lo(i) > bucket_lo(i - 1), "bounds ascend at {i}");
            }
            let mid = bucket_mid(i);
            assert_eq!(bucket_index(mid), i, "mid of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        // Exact region: unit-wide buckets.
        for v in 0..16u64 {
            assert_eq!(bucket_mid(bucket_index(v)), v);
        }
    }

    #[test]
    fn histogram_percentiles_on_small_exact_sets() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.max(), 10);
        // Values < 16 sit in exact buckets: nearest-rank is exact.
        assert_eq!(h.percentile(0.50), 5);
        assert_eq!(h.percentile(0.90), 9);
        assert_eq!(h.percentile(1.0), 10);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn gauge_high_water_tracks_and_resets() {
        let g = Gauge::new();
        assert_eq!(g.add(5), 5);
        assert_eq!(g.add(-2), 3);
        assert_eq!(g.high_water(), 5);
        assert_eq!(g.reset_high_water(), 5);
        assert_eq!(g.high_water(), 3);
        g.set(7);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn registry_returns_stable_handles_and_snapshots() {
        let c = counter("test.metrics.counter");
        c.add(3);
        assert!(std::ptr::eq(c, counter("test.metrics.counter")));
        gauge("test.metrics.gauge").set(-4);
        histogram("test.metrics.hist").record(100);
        let snap = snapshot();
        assert_eq!(snap.counter("test.metrics.counter"), 3);
        assert_eq!(snap.counter("test.metrics.absent"), 0);
        assert_eq!(snap.gauges["test.metrics.gauge"].0, -4);
        assert_eq!(snap.hists["test.metrics.hist"].count, 1);
        let later = snapshot();
        assert_eq!(later.counter_delta(&snap, "test.metrics.counter"), 0);
        c.incr();
        assert_eq!(snapshot().counter_delta(&snap, "test.metrics.counter"), 1);
    }
}
