//! Per-step JSONL flight recorder.
//!
//! The timeline engine writes one `step-NNNN.obs.jsonl` beside each
//! step's `.pred` sidecar: a single JSON object per line recording
//! where that step's bytes and time went (reservation/waste/overflow,
//! collective wire bytes, planner wall-clock, queue depth, fault
//! retries, stage timings). The file is written *during* the run, so
//! after a crash the newest readable record says what the dying run
//! was doing — `resume_timeline` and `scrub --json` surface it.
//!
//! Reading is deliberately forgiving: a torn or garbage line (the
//! recorder does not rename-atomically — it is the flight recorder,
//! not the black box data itself) is reported as a typed
//! [`FlightError`], never a panic, and surrounding records survive.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::{self, Json};

/// Extension of flight-recorder files (`step-0000.h5l` →
/// `step-0000.obs.jsonl`).
pub const FLIGHT_EXT: &str = "obs.jsonl";

/// Flight-recorder path for a step container path.
pub fn flight_path(container: &Path) -> PathBuf {
    container.with_extension(FLIGHT_EXT)
}

/// One step's flight record. Byte fields mirror the timeline's
/// `StepMetrics` exactly (the bench asserts they byte-match); second
/// fields mirror the engine's `Breakdown`; the fault/queue/wire
/// fields are per-step deltas of the global obs metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepFlight {
    /// Step index within the timeline.
    pub step: u64,
    /// Bytes reserved for compressed output this step.
    pub reserved_bytes: u64,
    /// Reserved bytes left unused (extra-space waste).
    pub waste_bytes: u64,
    /// Model-predicted compressed bytes.
    pub predicted_bytes: u64,
    /// Actual compressed bytes produced.
    pub actual_bytes: u64,
    /// Bytes redirected to the overflow region.
    pub overflow_bytes: u64,
    /// Partitions that overflowed their reservation.
    pub overflow_parts: u64,
    /// Uncompressed input bytes.
    pub raw_bytes: u64,
    /// Bytes occupied in the step's container file.
    pub file_bytes: u64,
    /// Reservation-collective wire bytes this step (obs counter delta).
    pub collective_wire_bytes: u64,
    /// Prediction/sampling phase, seconds.
    pub predict_secs: f64,
    /// Reservation planner (all-gather) phase, seconds.
    pub planner_secs: f64,
    /// Compression phase, seconds.
    pub compress_secs: f64,
    /// Write phase (post-compression remainder for overlap), seconds.
    pub write_secs: f64,
    /// Overflow handling phase, seconds.
    pub overflow_secs: f64,
    /// Read-back verification phase, seconds (0 when disabled).
    pub verify_secs: f64,
    /// End-to-end step time (slowest rank), seconds.
    pub total_secs: f64,
    /// High-water async write-queue depth during the step.
    pub queue_depth_max: u64,
    /// Fault-injection retry count this step (obs counter delta).
    pub retries: u64,
    /// Injected transient-EIO count this step (obs counter delta).
    pub transient_faults: u64,
    /// Bounded-retry escalations this step (obs counter delta).
    pub escalations: u64,
    /// Mean relative ratio-model error after this step.
    pub mean_rel_err: f64,
    /// `std::thread::available_parallelism` of the recording host.
    pub host_parallelism: u64,
}

impl StepFlight {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"kind\": \"step\", \"step\": {}, \"reserved_bytes\": {}, \
             \"waste_bytes\": {}, \"predicted_bytes\": {}, \"actual_bytes\": {}, \
             \"overflow_bytes\": {}, \"overflow_parts\": {}, \"raw_bytes\": {}, \
             \"file_bytes\": {}, \"collective_wire_bytes\": {}, \
             \"predict_secs\": {}, \"planner_secs\": {}, \"compress_secs\": {}, \
             \"write_secs\": {}, \"overflow_secs\": {}, \"verify_secs\": {}, \
             \"total_secs\": {}, \"queue_depth_max\": {}, \"retries\": {}, \
             \"transient_faults\": {}, \"escalations\": {}, \"mean_rel_err\": {}, \
             \"host_parallelism\": {}}}",
            self.step,
            self.reserved_bytes,
            self.waste_bytes,
            self.predicted_bytes,
            self.actual_bytes,
            self.overflow_bytes,
            self.overflow_parts,
            self.raw_bytes,
            self.file_bytes,
            self.collective_wire_bytes,
            finite(self.predict_secs),
            finite(self.planner_secs),
            finite(self.compress_secs),
            finite(self.write_secs),
            finite(self.overflow_secs),
            finite(self.verify_secs),
            finite(self.total_secs),
            self.queue_depth_max,
            self.retries,
            self.transient_faults,
            self.escalations,
            finite(self.mean_rel_err),
            self.host_parallelism,
        )
    }

    /// Decode from a parsed JSON object; every field is required,
    /// numeric, and finite.
    pub fn from_json(v: &Json) -> Result<StepFlight, String> {
        if v.str_of("kind") != Some("step") {
            return Err("not a step record (kind != \"step\")".into());
        }
        let num = |k: &str| -> Result<f64, String> {
            let x = v.num(k).ok_or_else(|| format!("missing field {k}"))?;
            if !x.is_finite() {
                return Err(format!("non-finite field {k}"));
            }
            Ok(x)
        };
        let uns = |k: &str| -> Result<u64, String> {
            let x = num(k)?;
            if x < 0.0 {
                return Err(format!("negative field {k}"));
            }
            Ok(x as u64)
        };
        Ok(StepFlight {
            step: uns("step")?,
            reserved_bytes: uns("reserved_bytes")?,
            waste_bytes: uns("waste_bytes")?,
            predicted_bytes: uns("predicted_bytes")?,
            actual_bytes: uns("actual_bytes")?,
            overflow_bytes: uns("overflow_bytes")?,
            overflow_parts: uns("overflow_parts")?,
            raw_bytes: uns("raw_bytes")?,
            file_bytes: uns("file_bytes")?,
            collective_wire_bytes: uns("collective_wire_bytes")?,
            predict_secs: num("predict_secs")?,
            planner_secs: num("planner_secs")?,
            compress_secs: num("compress_secs")?,
            write_secs: num("write_secs")?,
            overflow_secs: num("overflow_secs")?,
            verify_secs: num("verify_secs")?,
            total_secs: num("total_secs")?,
            queue_depth_max: uns("queue_depth_max")?,
            retries: uns("retries")?,
            transient_faults: uns("transient_faults")?,
            escalations: uns("escalations")?,
            mean_rel_err: num("mean_rel_err")?,
            host_parallelism: uns("host_parallelism")?,
        })
    }
}

// f64 Display writes bare `inf`/`NaN`, which the strict parser (and
// JSON itself) rejects; clamp non-finite timings to 0 so one
// pathological value can't poison the whole record.
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Why a flight-recorder line or file could not be read.
#[derive(Debug)]
pub enum FlightError {
    /// The file itself could not be opened or read.
    Io(io::Error),
    /// One line failed to parse or decode; other lines are unaffected.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Parser or schema failure description.
        reason: String,
    },
}

impl fmt::Display for FlightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlightError::Io(e) => write!(f, "flight recorder I/O: {e}"),
            FlightError::BadLine { line, reason } => {
                write!(f, "flight recorder line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for FlightError {}

impl From<io::Error> for FlightError {
    fn from(e: io::Error) -> Self {
        FlightError::Io(e)
    }
}

/// Result of scanning one flight-recorder file: the records that
/// decoded, plus a typed error per line that did not.
#[derive(Debug, Default)]
pub struct FlightScan {
    /// Successfully decoded records, file order.
    pub records: Vec<StepFlight>,
    /// Per-line failures (truncated tail, garbage, wrong schema).
    pub errors: Vec<FlightError>,
}

/// Write (truncate) `path` with a single step record.
pub fn write_step(path: &Path, rec: &StepFlight) -> io::Result<()> {
    std::fs::write(path, format!("{}\n", rec.to_json_line()))
}

/// Read a flight-recorder file, skipping unreadable lines with typed
/// errors. Only a file-level I/O failure is an `Err`.
pub fn read_flight(path: &Path) -> Result<FlightScan, FlightError> {
    let text = std::fs::read_to_string(path)?;
    let mut scan = FlightScan::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match json::parse(line).and_then(|v| StepFlight::from_json(&v)) {
            Ok(rec) => scan.records.push(rec),
            Err(reason) => scan.errors.push(FlightError::BadLine {
                line: i + 1,
                reason,
            }),
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u64) -> StepFlight {
        StepFlight {
            step,
            reserved_bytes: 4096,
            waste_bytes: 512,
            predicted_bytes: 3500,
            actual_bytes: 3584,
            overflow_bytes: 84,
            overflow_parts: 1,
            raw_bytes: 65536,
            file_bytes: 4180,
            collective_wire_bytes: 576,
            predict_secs: 0.001,
            planner_secs: 0.0005,
            compress_secs: 0.01,
            write_secs: 0.002,
            overflow_secs: 0.0001,
            verify_secs: 0.0,
            total_secs: 0.015,
            queue_depth_max: 3,
            retries: 2,
            transient_faults: 1,
            escalations: 0,
            mean_rel_err: 0.04,
            host_parallelism: 1,
        }
    }

    #[test]
    fn record_round_trips_exactly() {
        let rec = sample(7);
        let v = json::parse(&rec.to_json_line()).unwrap();
        assert_eq!(StepFlight::from_json(&v).unwrap(), rec);
    }

    #[test]
    fn flight_path_replaces_the_container_extension() {
        assert_eq!(
            flight_path(Path::new("/tmp/run/step-0042.h5l")),
            Path::new("/tmp/run/step-0042.obs.jsonl")
        );
    }

    #[test]
    fn garbage_and_truncated_lines_are_typed_errors_not_panics() {
        let dir = std::env::temp_dir().join("obs_flight_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.obs.jsonl");
        let good = sample(3).to_json_line();
        let truncated = &good[..good.len() / 2];
        let body = format!("{good}\nnot json at all\n{truncated}\n{{\"kind\": \"other\"}}\n");
        std::fs::write(&path, body).unwrap();
        let scan = read_flight(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].step, 3);
        assert_eq!(scan.errors.len(), 3);
        for e in &scan.errors {
            assert!(matches!(e, FlightError::BadLine { .. }), "{e}");
        }
        // Missing file: a single typed Io error, not a panic.
        assert!(matches!(
            read_flight(&dir.join("absent.obs.jsonl")),
            Err(FlightError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
