//! Minimal strict JSON: a recursive-descent parser plus a string
//! escaper for hand-written output.
//!
//! This is the workspace's one JSON implementation (no serde in the
//! tree). It started life inside `bench`'s schema tests and moved here
//! so the flight recorder, the trace validator, and the `scrub --json`
//! CLI all share a single strict dialect: no trailing garbage, no
//! trailing commas, no unquoted keys, no bare `inf`/`nan` tokens.

use std::collections::BTreeMap;

/// Minimal JSON value — just enough to validate and read artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers are exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric member of an object.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Array member of an object.
    pub fn arr(&self, key: &str) -> Option<&[Json]> {
        match self.get(key) {
            Some(Json::Arr(a)) => Some(a),
            _ => None,
        }
    }

    /// String member of an object.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Boolean member of an object.
    pub fn bool_of(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Every number reachable from this value, depth first.
    pub fn numbers(&self, out: &mut Vec<f64>) {
        match self {
            Json::Num(n) => out.push(*n),
            Json::Arr(a) => a.iter().for_each(|v| v.numbers(out)),
            Json::Obj(m) => m.values().for_each(|v| v.numbers(out)),
            _ => {}
        }
    }
}

/// Parse `text` as one strict JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    Parser::parse(text)
}

/// Escape `s` for embedding inside a double-quoted JSON string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Strict recursive-descent JSON parser: rejects trailing garbage,
/// trailing commas, unquoted keys, and bare `inf`/`nan` tokens.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                c => return Err(format!("expected ',' or '}}' , found '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape")
                        .copied()?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            // No surrogate-pair support: this dialect only
                            // ever writes \u for C0 control characters.
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                Some(&b) => {
                    s.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": inf}",
            "{\"a\": NaN}",
            "{\"a\": 1} x",
            "{'a': 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
        let ok = parse("{\"a\": [1, 2.5e-3, -4], \"b\": {\"c\": true}}").unwrap();
        assert_eq!(ok.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        let mut nums = Vec::new();
        ok.numbers(&mut nums);
        assert_eq!(nums.len(), 3);
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap_or_else(|e| panic!("{e}: {doc}"));
        assert_eq!(v.str_of("k"), Some(nasty));
    }

    #[test]
    fn accessors_cover_all_shapes() {
        let v = parse("{\"n\": 3, \"s\": \"x\", \"b\": false, \"a\": [null]}").unwrap();
        assert_eq!(v.num("n"), Some(3.0));
        assert_eq!(v.str_of("s"), Some("x"));
        assert_eq!(v.bool_of("b"), Some(false));
        assert_eq!(v.arr("a").map(<[Json]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.num("n"), None);
    }
}
