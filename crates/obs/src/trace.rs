//! Scoped span tracing with Chrome trace-event (catapult) export.
//!
//! [`span`] returns an RAII guard; dropping it records one
//! [`SpanEvent`] (monotonic start, duration, thread id, nesting depth)
//! into a per-thread buffer — no locks and no shared state on the
//! record path. Buffers retire into a global list when their thread
//! exits (or on [`flush_thread`]); [`drain`] collects everything for
//! export as Chrome trace-event JSON, which opens directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Tracing is compiled in but disabled by default: the guard
//! constructor is one relaxed atomic load and a branch when off (the
//! overhead is measured and asserted < 2% of the serial-compress floor
//! by `bench_obs`). Setting the [`TRACE_ENV`] environment variable
//! (`OBS_TRACE=trace.json`) enables recording at first use, and
//! [`export_env`] writes the accumulated trace to that path.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::escape;

/// Environment variable naming the Chrome-trace output path; setting
/// it also enables span recording.
pub const TRACE_ENV: &str = "OBS_TRACE";

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static label, e.g. `"real.compress_field"`.
    pub name: &'static str,
    /// Process-local thread id (sequential from 1, not the OS tid).
    pub tid: u64,
    /// Nesting depth at open on this thread (0 = top level).
    pub depth: u32,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Optional numeric payload (bytes, index, rank…).
    pub arg: Option<u64>,
}

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether spans are currently being recorded. First call resolves
/// the tri-state from [`TRACE_ENV`]; the hot path afterwards is one
/// relaxed load and a branch.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var_os(TRACE_ENV).is_some_and(|v| !v.is_empty());
    let want = if on { STATE_ON } else { STATE_OFF };
    // A concurrent set_enabled wins: only move out of UNINIT.
    let _ = STATE.compare_exchange(STATE_UNINIT, want, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Force recording on or off, overriding the [`TRACE_ENV`] default.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static RETIRED: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

struct ThreadBuf {
    tid: u64,
    depth: u32,
    events: Vec<SpanEvent>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            depth: 0,
            events: Vec::new(),
        }
    }
}

impl Drop for ThreadBuf {
    // Thread exit retires the buffer so worker spans survive the
    // worker. The main thread's TLS destructor may never run; drain()
    // collects the calling thread's live buffer directly instead.
    fn drop(&mut self) {
        if !self.events.is_empty() {
            if let Ok(mut r) = RETIRED.lock() {
                r.append(&mut self.events);
            }
        }
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// RAII span guard; the span is recorded when this drops. Open and
/// close on the same thread (nesting depth is tracked per thread).
#[must_use = "a span measures the scope that holds it"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    arg: Option<u64>,
    start_ns: u64,
    armed: bool,
}

/// Open a span named `name` on this thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_inner(name, None)
}

/// Open a span carrying a numeric payload (bytes, index, rank…).
#[inline]
pub fn span_arg(name: &'static str, arg: u64) -> Span {
    span_inner(name, Some(arg))
}

#[inline]
fn span_inner(name: &'static str, arg: Option<u64>) -> Span {
    if !enabled() {
        return Span {
            name,
            arg,
            start_ns: 0,
            armed: false,
        };
    }
    open_span(name, arg)
}

fn open_span(name: &'static str, arg: Option<u64>) -> Span {
    let _ = BUF.try_with(|b| b.borrow_mut().depth += 1);
    Span {
        name,
        arg,
        start_ns: now_ns(),
        armed: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        // try_with: recording during TLS teardown silently drops the
        // event rather than aborting the unwinding thread.
        let _ = BUF.try_with(|b| {
            let mut b = b.borrow_mut();
            b.depth = b.depth.saturating_sub(1);
            let (tid, depth) = (b.tid, b.depth);
            b.events.push(SpanEvent {
                name: self.name,
                tid,
                depth,
                start_ns: self.start_ns,
                dur_ns,
                arg: self.arg,
            });
        });
    }
}

/// Retire the calling thread's buffered events into the global list
/// without waiting for thread exit. Worker threads should call this
/// before returning: `thread::scope` (and pool join protocols) can
/// observe closure completion before the TLS destructor that would
/// otherwise retire the buffer has run.
pub fn flush_thread() {
    let _ = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        if !b.events.is_empty() {
            if let Ok(mut r) = RETIRED.lock() {
                r.append(&mut b.events);
            }
        }
    });
}

/// Collect every retired event plus the calling thread's buffer,
/// sorted by (thread, start, longest-first) so parents precede their
/// children. Spans still open on other live threads are not included.
pub fn drain() -> Vec<SpanEvent> {
    flush_thread();
    let mut out = std::mem::take(&mut *RETIRED.lock().unwrap_or_else(|e| e.into_inner()));
    out.sort_by_key(|e| (e.tid, e.start_ns, std::cmp::Reverse(e.dur_ns)));
    out
}

/// Write `events` as a Chrome trace-event JSON array of complete
/// (`"ph": "X"`) events, timestamps in microseconds.
pub fn write_chrome_trace(path: &Path, events: &[SpanEvent]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "[")?;
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 == events.len() { "" } else { "," };
        let ts = e.start_ns as f64 / 1000.0;
        let dur = e.dur_ns as f64 / 1000.0;
        write!(
            w,
            "  {{\"name\": \"{}\", \"cat\": \"obs\", \"ph\": \"X\", \"ts\": {ts:.3}, \
             \"dur\": {dur:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"depth\": {}",
            escape(e.name),
            e.tid,
            e.depth
        )?;
        if let Some(a) = e.arg {
            write!(w, ", \"arg\": {a}")?;
        }
        writeln!(w, "}}}}{comma}")?;
    }
    writeln!(w, "]")?;
    w.flush()
}

// Events already exported once: export_env drains incrementally but
// always rewrites the complete trace, so repeated calls (step loops,
// resumed runs) produce a growing, self-contained file.
static EXPORTED: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

/// Drain all events and write the accumulated trace to the path named
/// by [`TRACE_ENV`]. Returns `Ok(None)` when the variable is unset or
/// empty (nothing is written or drained).
pub fn export_env() -> io::Result<Option<PathBuf>> {
    let Some(path) = std::env::var_os(TRACE_ENV).filter(|v| !v.is_empty()) else {
        return Ok(None);
    };
    let path = PathBuf::from(path);
    let mut acc = EXPORTED.lock().unwrap_or_else(|e| e.into_inner());
    acc.extend(drain());
    acc.sort_by_key(|e| (e.tid, e.start_ns, std::cmp::Reverse(e.dur_ns)));
    write_chrome_trace(&path, &acc)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test body: the enable flag, the per-thread buffers, and the
    // retired list are process globals, so the scenarios run serially
    // inside a single #[test] to avoid cross-test interference.
    #[test]
    fn spans_record_nesting_and_disabled_mode_records_nothing() {
        set_enabled(false);
        {
            let _a = span("test.disabled");
        }
        assert!(drain().is_empty(), "disabled mode must record nothing");

        set_enabled(true);
        {
            let _outer = span_arg("test.outer", 7);
            {
                let _inner = span("test.inner");
            }
        }
        let events = drain();
        set_enabled(false);
        assert_eq!(events.len(), 2);
        // Sorted parent-first within the thread.
        assert_eq!(events[0].name, "test.outer");
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[0].arg, Some(7));
        assert_eq!(events[1].name, "test.inner");
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[0].tid, events[1].tid);
        // The child interval is contained in the parent's.
        let (p, c) = (&events[0], &events[1]);
        assert!(c.start_ns >= p.start_ns);
        assert!(c.start_ns + c.dur_ns <= p.start_ns + p.dur_ns);
        assert!(drain().is_empty(), "drain consumes");

        // Chrome export is valid strict JSON with the required keys.
        let dir = std::env::temp_dir().join("obs_trace_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.json");
        write_chrome_trace(&path, &events).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = crate::json::parse(&text).unwrap();
        let crate::json::Json::Arr(items) = &v else {
            panic!("trace is not an array");
        };
        assert_eq!(items.len(), 2);
        for it in items {
            assert_eq!(it.str_of("ph"), Some("X"));
            assert!(it.num("ts").is_some());
            assert!(it.num("dur").is_some());
            assert!(it.num("tid").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
