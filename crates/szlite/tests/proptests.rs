//! Property-based tests for the szlite pipeline invariants.

use proptest::prelude::*;
use szlite::{
    compress_f32, compress_f64, compress_with_stats, decompress_f32, decompress_f64,
    huffman::{HuffmanDecoder, HuffmanEncoder},
    lossless,
    stream::{BitReader, BitWriter},
    Config, Dims,
};

/// Arbitrary small 1-3D shapes with matching data lengths.
fn shape_and_data() -> impl Strategy<Value = (Vec<usize>, Vec<f32>)> {
    prop_oneof![
        (1usize..200).prop_map(|n| vec![n]),
        ((1usize..24), (1usize..24)).prop_map(|(a, b)| vec![a, b]),
        ((1usize..10), (1usize..10), (1usize..10)).prop_map(|(a, b, c)| vec![a, b, c]),
    ]
    .prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        (
            Just(dims),
            proptest::collection::vec(-1e6f32..1e6f32, n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0x52_1173) /* pinned: deterministic CI */)]

    #[test]
    fn error_bound_invariant_abs((dims, data) in shape_and_data(), eb in 1e-4f64..10.0) {
        let d = Dims::from_slice(&dims).unwrap();
        let bytes = compress_f32(&data, &d, &Config::abs(eb)).unwrap();
        let (restored, rdims) = decompress_f32(&bytes).unwrap();
        prop_assert_eq!(rdims, d);
        prop_assert_eq!(restored.len(), data.len());
        for (i, (&a, &b)) in data.iter().zip(&restored).enumerate() {
            prop_assert!(
                (f64::from(a) - f64::from(b)).abs() <= eb,
                "point {} of {}: {} vs {} (eb {})", i, data.len(), a, b, eb
            );
        }
    }

    #[test]
    fn error_bound_invariant_rel((dims, data) in shape_and_data(), r in 1e-5f64..1e-1) {
        let d = Dims::from_slice(&dims).unwrap();
        let bytes = compress_f32(&data, &d, &Config::rel(r)).unwrap();
        let info = szlite::stream_info(&bytes).unwrap();
        let (restored, _) = decompress_f32(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&restored) {
            prop_assert!((f64::from(a) - f64::from(b)).abs() <= info.eb);
        }
    }

    #[test]
    fn f64_roundtrip_bound(data in proptest::collection::vec(-1e12f64..1e12, 1..500), eb in 1e-6f64..1e3) {
        let d = Dims::d1(data.len());
        let bytes = compress_f64(&data, &d, &Config::abs(eb)).unwrap();
        let (restored, _) = decompress_f64(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&restored) {
            prop_assert!((a - b).abs() <= eb);
        }
    }

    #[test]
    fn compressed_size_reported_accurately((dims, data) in shape_and_data()) {
        let d = Dims::from_slice(&dims).unwrap();
        let (bytes, st) = compress_with_stats(&data, &d, &Config::rel(1e-3)).unwrap();
        prop_assert_eq!(bytes.len(), st.compressed_bytes);
        prop_assert_eq!(st.n_points, data.len());
    }

    #[test]
    fn lossless_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = lossless::compress(&data);
        let out = lossless::decompress(&c).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lossless_never_expands_much(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = lossless::compress(&data);
        prop_assert!(c.len() <= data.len() + 16);
    }

    #[test]
    fn huffman_roundtrip(symbols in proptest::collection::vec(0u32..512, 1..2000)) {
        let enc = HuffmanEncoder::from_symbols(&symbols, 512);
        let mut table = Vec::new();
        enc.serialize(&mut table);
        let mut w = BitWriter::new();
        enc.encode(&symbols, &mut w);
        let bits = w.finish();
        let mut pos = 0;
        let dec = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
        let mut r = BitReader::new(&bits);
        let decoded = dec.decode(&mut r, symbols.len()).unwrap();
        prop_assert_eq!(decoded, symbols);
    }

    #[test]
    fn lut_decoder_equivalent_to_reference(
        symbols in proptest::collection::vec(0u32..512, 1..800),
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // The table-driven decode path must agree with the retained
        // canonical-walk oracle on every symbol AND on the exact typed
        // error, on both well-formed and corrupt bitstreams.
        let enc = HuffmanEncoder::from_symbols(&symbols, 512);
        let mut table = Vec::new();
        enc.serialize(&mut table);
        let mut w = BitWriter::new();
        enc.encode(&symbols, &mut w);
        let bits = w.finish();
        let mut pos = 0;
        let dec = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
        for stream in [&bits[..], &garbage[..]] {
            let mut lut_r = BitReader::new(stream);
            let mut ref_r = BitReader::new(stream);
            for _ in 0..symbols.len() + 8 {
                let a = dec.decode_one(&mut lut_r);
                let b = dec.decode_one_reference(&mut ref_r);
                prop_assert_eq!(&a, &b, "paths diverged");
                if a.is_err() {
                    break;
                }
                prop_assert_eq!(lut_r.bits_remaining(), ref_r.bits_remaining());
            }
        }
    }

    #[test]
    fn lut_decoder_equivalent_on_random_length_tables(
        lens in proptest::collection::vec(0u8..14, 1..300),
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Arbitrary code-length tables — including Kraft-oversubscribed
        // ones a corrupt stream could smuggle in — decoded over random
        // bits: symbol-for-symbol and error-for-error equivalence.
        let dec = HuffmanDecoder::from_lens(&lens).unwrap();
        let mut lut_r = BitReader::new(&garbage);
        let mut ref_r = BitReader::new(&garbage);
        for _ in 0..400 {
            let a = dec.decode_one(&mut lut_r);
            let b = dec.decode_one_reference(&mut ref_r);
            prop_assert_eq!(&a, &b, "paths diverged");
            if a.is_err() {
                break;
            }
            prop_assert_eq!(lut_r.bits_remaining(), ref_r.bits_remaining());
        }
    }

    #[test]
    fn decompressor_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must return an error or a valid result, never panic.
        let _ = decompress_f32(&data);
    }

    #[test]
    fn truncation_never_panics((dims, data) in shape_and_data(), frac in 0.0f64..1.0) {
        let d = Dims::from_slice(&dims).unwrap();
        let bytes = compress_f32(&data, &d, &Config::rel(1e-3)).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = decompress_f32(&bytes[..cut.min(bytes.len().saturating_sub(1))]);
    }
}
