//! The compression pipeline: Lorenzo prediction → error-bounded
//! quantization → canonical Huffman → LZSS.
//!
//! The hot path is a fused row kernel: one pass over the data performs
//! prediction, quantization *and* Huffman frequency counting, with the
//! boundary branches of the Lorenzo stencil replaced by reads from a
//! zero row so the inner loop is uniform over `x`. Each pipeline worker
//! carries its own [`Scratch`] — frequency counts are accumulated
//! per-worker and merged into the Huffman build in a single sparse
//! rebuild, so no stage shares mutable state across workers. The
//! produced stream is byte-identical to the scalar reference
//! implementation ([`compress_reference`]) on every input.

use crate::config::{Config, Dims};
use crate::element::Element;
use crate::error::{Result, SzError};
use crate::huffman::{EncoderWorkspace, HuffmanEncoder};
use crate::lossless;
use crate::predictor::Lorenzo;
use crate::quantizer::{Quantizer, UNPREDICTABLE};
use crate::stream::{put_f64, put_u32, put_varint, BitWriter};

/// Stream magic: "SZL1".
pub const MAGIC: u32 = 0x314C5A53;
/// Current stream version.
pub const VERSION: u8 = 1;

/// Summary of one compression run, used by benchmarks and the ratio
/// model validation experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressStats {
    /// Number of points compressed.
    pub n_points: usize,
    /// Uncompressed size in bytes.
    pub raw_bytes: usize,
    /// Final compressed size in bytes (including header).
    pub compressed_bytes: usize,
    /// Points stored as raw literals (outside the codebook).
    pub n_unpredictable: usize,
    /// Serialized Huffman table size in bytes.
    pub huffman_table_bytes: usize,
    /// Bits used by the Huffman-coded symbol stream.
    pub code_bits: u64,
    /// Resolved absolute error bound.
    pub eb: f64,
}

impl CompressStats {
    /// Compression ratio (raw / compressed).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }

    /// Bit-rate: average bits stored per point.
    pub fn bit_rate(&self) -> f64 {
        self.compressed_bytes as f64 * 8.0 / self.n_points as f64
    }
}

/// Reusable compressor workspace: quantization codes, literal bytes,
/// the reconstruction grid, Huffman frequency counts, the serialized
/// payload, the bit-stream backing buffer and the LZSS matcher state.
///
/// The per-chunk hot path allocates all of this state afresh when
/// going through [`compress_with_stats`]; a worker that compresses
/// many chunks keeps one `Scratch` and calls [`compress_into`] so the
/// buffers are recycled — steady-state compression then performs no
/// per-chunk allocation at all. The scratch never changes the produced
/// stream — output is byte-identical either way.
#[derive(Debug, Default)]
pub struct Scratch {
    codes: Vec<u32>,
    literals: Vec<u8>,
    recon: Vec<f64>,
    /// Frequency histogram over the full alphabet. Invariant: all-zero
    /// between calls — entries touched by a run are re-zeroed through
    /// `present` on the way out, so the (large) array is never memset.
    freqs: Vec<u64>,
    /// Symbols observed by the current run, unsorted until the Huffman
    /// build.
    present: Vec<u32>,
    payload: Vec<u8>,
    bits: Vec<u8>,
    zero_row: Vec<f64>,
    enc: HuffmanEncoder,
    enc_ws: EncoderWorkspace,
    lz: lossless::LzScratch,
    lz_out: Vec<u8>,
}

impl Scratch {
    /// Empty workspace; buffers grow to steady-state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compress `data` of shape `dims` under configuration `cfg`.
pub fn compress<T: Element>(data: &[T], dims: &Dims, cfg: &Config) -> Result<Vec<u8>> {
    compress_with_stats(data, dims, cfg).map(|(bytes, _)| bytes)
}

/// Compress and also return run statistics.
pub fn compress_with_stats<T: Element>(
    data: &[T],
    dims: &Dims,
    cfg: &Config,
) -> Result<(Vec<u8>, CompressStats)> {
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    let stats = compress_into(data, dims, cfg, &mut scratch, &mut out)?;
    Ok((out, stats))
}

/// Fused prediction + quantization + frequency-count kernel over one
/// grid row.
///
/// `cur` is the reconstruction row being produced; `py`, `pz`, `pzy`
/// are the neighbor rows at `y-1`, `z-1` and `(z-1, y-1)` — the caller
/// substitutes an all-zero row for rows outside the grid, which makes
/// the Lorenzo stencil uniform over the whole row (adding `+0.0` for an
/// absent neighbor is bit-exact because the accumulator can never be
/// `-0.0` mid-chain: it starts at `+0.0` and IEEE-754 round-to-nearest
/// only yields `-0.0` from sums of two negative zeros).
///
/// The loop carries `x-1` neighbors in registers, keeps the residual →
/// code mapping branch-free (validity folds into one predicate; the
/// code/reconstruction writes are select-based), and escapes to the
/// literal lane only on the rare unpredictable point. The floating
/// operation order matches [`compress_reference`] exactly — division by
/// `2·eb` stays a division, the stencil accumulates in the fixed
/// `+x +y +z −xy −xz −yz +xyz` order — so emitted codes, literals and
/// reconstructions are bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline]
fn quantize_row<T: Element>(
    data: &[T],
    cur: &mut [f64],
    py: &[f64],
    pz: &[f64],
    pzy: &[f64],
    eb: f64,
    twice_eb: f64,
    radius: i64,
    codes: &mut [u32],
    literals: &mut Vec<u8>,
    freqs: &mut [u64],
    present: &mut Vec<u32>,
    n_unpred: &mut usize,
) {
    let nx = data.len();
    debug_assert!(cur.len() == nx && py.len() >= nx && pz.len() >= nx && pzy.len() >= nx);
    debug_assert!(codes.len() == nx);
    let radius_f = radius as f64;
    // Running x-1 neighbors: current row, y-1 row, z-1 row, corner.
    let mut cx = 0.0f64;
    let mut pyx = 0.0f64;
    let mut pzx = 0.0f64;
    let mut pzyx = 0.0f64;
    for x in 0..nx {
        let ry = py[x];
        let rz = pz[x];
        let rzy = pzy[x];
        let pred = ((((((0.0 + cx) + ry) + rz) - pyx) - pzx) - rzy) + pzyx;
        let xv = data[x].to_f64();
        let d = xv - pred;
        let q = (d / twice_eb).round();
        // Branch-free validity: all comparisons are false on NaN, so a
        // non-finite value or prediction lands in the escape lane.
        let in_range = q.is_finite() & (q.abs() < radius_f);
        let qi = if in_range { q as i64 } else { 0 };
        let r64 = pred + qi as f64 * twice_eb;
        // Round through the storage type so the decoder (which emits T)
        // sees exactly this value.
        let rt = T::from_f64(r64).to_f64();
        let ok = in_range & ((xv - r64).abs() <= eb) & ((xv - rt).abs() <= eb);
        let code = if ok {
            (qi + radius) as u32
        } else {
            UNPREDICTABLE
        };
        let rv = if ok {
            rt
        } else if xv.is_finite() {
            xv
        } else {
            0.0
        };
        codes[x] = code;
        cur[x] = rv;
        let f = freqs[code as usize];
        if f == 0 {
            present.push(code);
        }
        freqs[code as usize] = f + 1;
        if !ok {
            // Rare unpredictable-escape lane.
            data[x].write_le(literals);
            *n_unpred += 1;
        }
        cx = rv;
        pyx = ry;
        pzx = rz;
        pzyx = rzy;
    }
}

/// Compress `data`, writing the stream into `out` (cleared first) and
/// reusing `scratch` for all transient compressor state.
pub fn compress_into<T: Element>(
    data: &[T],
    dims: &Dims,
    cfg: &Config,
    scratch: &mut Scratch,
    out: &mut Vec<u8>,
) -> Result<CompressStats> {
    let _span = obs::span_arg("sz.compress", std::mem::size_of_val(data) as u64);
    out.clear();
    if data.is_empty() {
        return Err(SzError::EmptyInput);
    }
    if dims.len() != data.len() {
        return Err(SzError::DimMismatch {
            expected: dims.len(),
            actual: data.len(),
        });
    }

    // Resolve the error bound. Only range-relative bounds scan for
    // min/max inside resolve_for; with an absolute bound the
    // prediction pass below is the single data traversal.
    let eb = cfg.error_bound.resolve_for(data)?;

    let quant = Quantizer::new(eb, cfg.radius);
    let lorenzo = Lorenzo::new(dims);
    let st = *lorenzo.strides();
    let (nz, ny, nx) = (st.ext[0], st.ext[1], st.ext[2]);
    let plane = ny * nx;

    let n = data.len();
    let Scratch {
        codes,
        literals,
        recon,
        freqs,
        present,
        payload,
        bits,
        zero_row,
        enc,
        enc_ws,
        lz,
        lz_out,
    } = scratch;
    codes.clear();
    codes.resize(n, 0);
    literals.clear();
    recon.clear();
    recon.resize(n, 0.0);
    zero_row.clear();
    zero_row.resize(nx, 0.0);
    let alphabet = quant.alphabet();
    if freqs.len() < alphabet {
        freqs.resize(alphabet, 0);
    }
    present.clear();
    let mut n_unpred = 0usize;

    let radius = i64::from(cfg.radius.max(2));
    let twice_eb = 2.0 * eb;
    for z in 0..nz {
        for y in 0..ny {
            let base = z * plane + y * nx;
            let (head, tail) = recon.split_at_mut(base);
            let cur = &mut tail[..nx];
            let py: &[f64] = if y > 0 {
                &head[base - nx..base]
            } else {
                zero_row
            };
            let pz: &[f64] = if z > 0 {
                &head[base - plane..base - plane + nx]
            } else {
                zero_row
            };
            let pzy: &[f64] = if z > 0 && y > 0 {
                &head[base - plane - nx..base - plane]
            } else {
                zero_row
            };
            quantize_row(
                &data[base..base + nx],
                cur,
                py,
                pz,
                pzy,
                eb,
                twice_eb,
                radius,
                &mut codes[base..base + nx],
                literals,
                &mut freqs[..alphabet],
                present,
                &mut n_unpred,
            );
        }
    }

    // Huffman stage: the per-worker frequency counts fused into the
    // pass above merge into one sparse in-place table rebuild.
    present.sort_unstable();
    enc.rebuild_sparse(alphabet, &freqs[..alphabet], present, enc_ws);
    payload.clear();
    enc.serialize(payload);
    let table_bytes = payload.len();
    let mut bw = BitWriter::with_buffer(std::mem::take(bits));
    enc.encode(codes, &mut bw);
    let code_bits = bw.bit_len() as u64;
    let code_bytes = bw.finish();
    put_varint(payload, codes.len() as u64);
    put_varint(payload, code_bytes.len() as u64);
    payload.extend_from_slice(&code_bytes);
    // Reclaim the bit buffer's allocation for the next run.
    *bits = code_bytes;
    put_varint(payload, n_unpred as u64);
    payload.extend_from_slice(literals);

    // Restore the all-zero freqs invariant without touching the
    // alphabet-sized array.
    for &s in present.iter() {
        freqs[s as usize] = 0;
    }

    // Lossless stage.
    let (mode, body): (u8, &[u8]) = if cfg.lossless {
        lossless::compress_into(payload, lz_out, lz);
        (1u8, lz_out)
    } else {
        (0u8, payload)
    };

    // Header.
    out.reserve(body.len() + 64);
    put_u32(out, MAGIC);
    out.push(VERSION);
    out.push(T::DTYPE);
    out.push(dims.ndims() as u8);
    for &d in dims.extents() {
        put_varint(out, d as u64);
    }
    put_f64(out, eb);
    put_u32(out, cfg.radius);
    out.push(mode);
    put_varint(out, body.len() as u64);
    out.extend_from_slice(body);

    let stats = CompressStats {
        n_points: n,
        raw_bytes: n * T::BYTES,
        compressed_bytes: out.len(),
        n_unpredictable: n_unpred,
        huffman_table_bytes: table_bytes,
        code_bits,
        eb,
    };
    Ok(stats)
}

/// Scalar reference implementation of the compressor: per-point
/// [`Lorenzo::predict`] with its boundary branches, [`Quantizer`]
/// returning `Option`, a separate frequency-count pass and a dense
/// [`HuffmanEncoder::from_freqs`] build.
///
/// This is the original (pre-fusion) pipeline, kept as the oracle for
/// the byte-identity test suite: [`compress_into`] must produce exactly
/// these bytes on every input. It is not a hot path — it allocates per
/// call and makes three data passes.
pub fn compress_reference<T: Element>(data: &[T], dims: &Dims, cfg: &Config) -> Result<Vec<u8>> {
    if data.is_empty() {
        return Err(SzError::EmptyInput);
    }
    if dims.len() != data.len() {
        return Err(SzError::DimMismatch {
            expected: dims.len(),
            actual: data.len(),
        });
    }
    let eb = cfg.error_bound.resolve_for(data)?;
    let quant = Quantizer::new(eb, cfg.radius);
    let lorenzo = Lorenzo::new(dims);
    let st = *lorenzo.strides();

    let n = data.len();
    let mut codes: Vec<u32> = Vec::with_capacity(n);
    let mut literals: Vec<u8> = Vec::new();
    let mut recon = vec![0.0f64; n];
    let mut n_unpred = 0usize;

    let mut idx = 0usize;
    for z in 0..st.ext[0] {
        for y in 0..st.ext[1] {
            for x in 0..st.ext[2] {
                let xv = data[idx].to_f64();
                let pred = lorenzo.predict(&recon, z, y, x);
                let mut stored = false;
                if xv.is_finite() {
                    if let Some((code, r64)) = quant.quantize(xv, pred) {
                        // Round through the storage type so the decoder
                        // (which emits T) sees exactly this value.
                        let rt = T::from_f64(r64).to_f64();
                        if (xv - rt).abs() <= eb {
                            codes.push(code);
                            recon[idx] = rt;
                            stored = true;
                        }
                    }
                }
                if !stored {
                    codes.push(UNPREDICTABLE);
                    data[idx].write_le(&mut literals);
                    recon[idx] = if xv.is_finite() { xv } else { 0.0 };
                    n_unpred += 1;
                }
                idx += 1;
            }
        }
    }

    // Huffman stage.
    let mut freqs = vec![0u64; quant.alphabet()];
    for &c in codes.iter() {
        freqs[c as usize] += 1;
    }
    let enc = HuffmanEncoder::from_freqs(&freqs);
    let mut payload = Vec::new();
    enc.serialize(&mut payload);
    let mut bw = BitWriter::new();
    enc.encode(&codes, &mut bw);
    let code_bytes = bw.finish();
    put_varint(&mut payload, codes.len() as u64);
    put_varint(&mut payload, code_bytes.len() as u64);
    payload.extend_from_slice(&code_bytes);
    put_varint(&mut payload, n_unpred as u64);
    payload.extend_from_slice(&literals);

    // Lossless stage.
    let lz;
    let (mode, body): (u8, &[u8]) = if cfg.lossless {
        lz = lossless::compress(&payload);
        (1u8, &lz)
    } else {
        (0u8, &payload)
    };

    // Header.
    let mut out = Vec::with_capacity(body.len() + 64);
    put_u32(&mut out, MAGIC);
    out.push(VERSION);
    out.push(T::DTYPE);
    out.push(dims.ndims() as u8);
    for &d in dims.extents() {
        put_varint(&mut out, d as u64);
    }
    put_f64(&mut out, eb);
    put_u32(&mut out, cfg.radius);
    out.push(mode);
    put_varint(&mut out, body.len() as u64);
    out.extend_from_slice(body);
    Ok(out)
}

/// Convenience wrapper: compress an `f32` array.
pub fn compress_f32(data: &[f32], dims: &Dims, cfg: &Config) -> Result<Vec<u8>> {
    compress(data, dims, cfg)
}

/// Convenience wrapper: compress an `f64` array.
pub fn compress_f64(data: &[f64], dims: &Dims, cfg: &Config) -> Result<Vec<u8>> {
    compress(data, dims, cfg)
}
