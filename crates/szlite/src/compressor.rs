//! The compression pipeline: Lorenzo prediction → error-bounded
//! quantization → canonical Huffman → LZSS.

use crate::config::{Config, Dims};
use crate::element::Element;
use crate::error::{Result, SzError};
use crate::huffman::HuffmanEncoder;
use crate::lossless;
use crate::predictor::Lorenzo;
use crate::quantizer::{Quantizer, UNPREDICTABLE};
use crate::stream::{put_f64, put_u32, put_varint, BitWriter};

/// Stream magic: "SZL1".
pub const MAGIC: u32 = 0x314C5A53;
/// Current stream version.
pub const VERSION: u8 = 1;

/// Summary of one compression run, used by benchmarks and the ratio
/// model validation experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressStats {
    /// Number of points compressed.
    pub n_points: usize,
    /// Uncompressed size in bytes.
    pub raw_bytes: usize,
    /// Final compressed size in bytes (including header).
    pub compressed_bytes: usize,
    /// Points stored as raw literals (outside the codebook).
    pub n_unpredictable: usize,
    /// Serialized Huffman table size in bytes.
    pub huffman_table_bytes: usize,
    /// Bits used by the Huffman-coded symbol stream.
    pub code_bits: u64,
    /// Resolved absolute error bound.
    pub eb: f64,
}

impl CompressStats {
    /// Compression ratio (raw / compressed).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }

    /// Bit-rate: average bits stored per point.
    pub fn bit_rate(&self) -> f64 {
        self.compressed_bytes as f64 * 8.0 / self.n_points as f64
    }
}

/// Reusable compressor workspace: quantization codes, literal bytes,
/// the reconstruction grid, Huffman frequency counts, the serialized
/// payload and the bit-stream backing buffer.
///
/// The per-chunk hot path allocates all of this state afresh when
/// going through [`compress_with_stats`]; a worker that compresses
/// many chunks keeps one `Scratch` and calls [`compress_into`] so the
/// buffers are recycled. The scratch never changes the produced
/// stream — output is byte-identical either way.
#[derive(Debug, Default)]
pub struct Scratch {
    codes: Vec<u32>,
    literals: Vec<u8>,
    recon: Vec<f64>,
    freqs: Vec<u64>,
    payload: Vec<u8>,
    bits: Vec<u8>,
}

impl Scratch {
    /// Empty workspace; buffers grow to steady-state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compress `data` of shape `dims` under configuration `cfg`.
pub fn compress<T: Element>(data: &[T], dims: &Dims, cfg: &Config) -> Result<Vec<u8>> {
    compress_with_stats(data, dims, cfg).map(|(bytes, _)| bytes)
}

/// Compress and also return run statistics.
pub fn compress_with_stats<T: Element>(
    data: &[T],
    dims: &Dims,
    cfg: &Config,
) -> Result<(Vec<u8>, CompressStats)> {
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    let stats = compress_into(data, dims, cfg, &mut scratch, &mut out)?;
    Ok((out, stats))
}

/// Compress `data`, writing the stream into `out` (cleared first) and
/// reusing `scratch` for all transient compressor state.
pub fn compress_into<T: Element>(
    data: &[T],
    dims: &Dims,
    cfg: &Config,
    scratch: &mut Scratch,
    out: &mut Vec<u8>,
) -> Result<CompressStats> {
    out.clear();
    if data.is_empty() {
        return Err(SzError::EmptyInput);
    }
    if dims.len() != data.len() {
        return Err(SzError::DimMismatch {
            expected: dims.len(),
            actual: data.len(),
        });
    }

    // Resolve the error bound. Only range-relative bounds scan for
    // min/max inside resolve_for; with an absolute bound the
    // prediction pass below is the single data traversal.
    let eb = cfg.error_bound.resolve_for(data)?;

    let quant = Quantizer::new(eb, cfg.radius);
    let lorenzo = Lorenzo::new(dims);
    let st = *lorenzo.strides();

    let n = data.len();
    let Scratch {
        codes,
        literals,
        recon,
        freqs,
        payload,
        bits,
    } = scratch;
    codes.clear();
    codes.reserve(n);
    literals.clear();
    recon.clear();
    recon.resize(n, 0.0);
    let mut n_unpred = 0usize;

    let mut idx = 0usize;
    for z in 0..st.ext[0] {
        for y in 0..st.ext[1] {
            for x in 0..st.ext[2] {
                let xv = data[idx].to_f64();
                let pred = lorenzo.predict(recon, z, y, x);
                let mut stored = false;
                if xv.is_finite() {
                    if let Some((code, r64)) = quant.quantize(xv, pred) {
                        // Round through the storage type so the decoder
                        // (which emits T) sees exactly this value.
                        let rt = T::from_f64(r64).to_f64();
                        if (xv - rt).abs() <= eb {
                            codes.push(code);
                            recon[idx] = rt;
                            stored = true;
                        }
                    }
                }
                if !stored {
                    codes.push(UNPREDICTABLE);
                    data[idx].write_le(literals);
                    recon[idx] = if xv.is_finite() { xv } else { 0.0 };
                    n_unpred += 1;
                }
                idx += 1;
            }
        }
    }

    // Huffman stage.
    freqs.clear();
    freqs.resize(quant.alphabet(), 0);
    for &c in codes.iter() {
        freqs[c as usize] += 1;
    }
    let enc = HuffmanEncoder::from_freqs(freqs);
    payload.clear();
    enc.serialize(payload);
    let table_bytes = payload.len();
    let mut bw = BitWriter::with_buffer(std::mem::take(bits));
    enc.encode(codes, &mut bw);
    let code_bits = bw.bit_len() as u64;
    let code_bytes = bw.finish();
    put_varint(payload, codes.len() as u64);
    put_varint(payload, code_bytes.len() as u64);
    payload.extend_from_slice(&code_bytes);
    // Reclaim the bit buffer's allocation for the next run.
    *bits = code_bytes;
    put_varint(payload, n_unpred as u64);
    payload.extend_from_slice(literals);

    // Lossless stage.
    let lz;
    let (mode, body): (u8, &[u8]) = if cfg.lossless {
        lz = lossless::compress(payload);
        (1u8, &lz)
    } else {
        (0u8, payload)
    };

    // Header.
    out.reserve(body.len() + 64);
    put_u32(out, MAGIC);
    out.push(VERSION);
    out.push(T::DTYPE);
    out.push(dims.ndims() as u8);
    for &d in dims.extents() {
        put_varint(out, d as u64);
    }
    put_f64(out, eb);
    put_u32(out, cfg.radius);
    out.push(mode);
    put_varint(out, body.len() as u64);
    out.extend_from_slice(body);

    let stats = CompressStats {
        n_points: n,
        raw_bytes: n * T::BYTES,
        compressed_bytes: out.len(),
        n_unpredictable: n_unpred,
        huffman_table_bytes: table_bytes,
        code_bits,
        eb,
    };
    Ok(stats)
}

/// Convenience wrapper: compress an `f32` array.
pub fn compress_f32(data: &[f32], dims: &Dims, cfg: &Config) -> Result<Vec<u8>> {
    compress(data, dims, cfg)
}

/// Convenience wrapper: compress an `f64` array.
pub fn compress_f64(data: &[f64], dims: &Dims, cfg: &Config) -> Result<Vec<u8>> {
    compress(data, dims, cfg)
}
