//! Trailing lossless stage: LZSS with hash-chain matching.
//!
//! SZ applies a general-purpose lossless compressor (zstd) after Huffman
//! coding; we implement a self-contained LZSS. Like zstd-on-Huffman
//! output, it wins when the code stream has long repeats (very smooth
//! regions → long zero-code runs) and falls back to a raw copy when the
//! Huffman output is effectively random (the paper's low-ratio regime,
//! §III-D factor 3).

use crate::error::{Result, SzError};
use crate::stream::{get_varint, put_varint};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255 + MIN_MATCH;
const WINDOW: usize = 65535;
const HASH_BITS: u32 = 16;
const MAX_CHAIN: usize = 48;

/// Stage tag: payload stored raw (incompressible input).
const MODE_RAW: u8 = 0;
/// Stage tag: payload is LZSS token stream.
const MODE_LZSS: u8 = 1;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Reusable LZSS matcher state: the hash-head table and chain links.
///
/// The head table stores *epoch-offset* positions: each compressed
/// buffer advances `base` by at least `len + WINDOW + 1`, so entries
/// left over from a previous buffer automatically fail the window
/// check. That turns the 512 KiB per-call head-table reset (the old
/// `vec![usize::MAX; 1 << HASH_BITS]`) into a one-time allocation —
/// the dominant LZSS cost for small per-chunk payloads.
#[derive(Debug, Default)]
pub struct LzScratch {
    head: Vec<u64>,
    prev: Vec<u64>,
    base: u64,
}

/// Compress `input`, always producing a self-describing stream
/// (mode byte + payload). Never grows the data by more than a few bytes.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    compress_into(input, &mut out, &mut LzScratch::default());
    out
}

/// Compress `input` into `out` (cleared first), reusing `scratch`
/// across calls. Output is byte-identical to [`compress`].
pub fn compress_into(input: &[u8], out: &mut Vec<u8>, scratch: &mut LzScratch) {
    out.clear();
    out.push(MODE_LZSS);
    lzss_compress_into(input, out, scratch);
    if out.len() >= input.len() {
        // Incompressible: store raw (same cutoff as before — LZSS is
        // kept only when mode byte + tokens is smaller than the input).
        out.clear();
        out.push(MODE_RAW);
        out.extend_from_slice(input);
    }
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    decompress_into(input, &mut out)?;
    Ok(out)
}

/// Decompress a stream produced by [`compress`] into `out` (cleared
/// first), reusing its allocation — the per-chunk decode path calls
/// this once per chunk per worker.
pub fn decompress_into(input: &[u8], out: &mut Vec<u8>) -> Result<()> {
    out.clear();
    let (&mode, rest) = input
        .split_first()
        .ok_or(SzError::Truncated("lossless mode"))?;
    match mode {
        MODE_RAW => {
            out.extend_from_slice(rest);
            Ok(())
        }
        MODE_LZSS => lzss_decompress_into(rest, out),
        _ => Err(SzError::Corrupt("unknown lossless mode")),
    }
}

/// Length of the common prefix of `input[a..]` and `input[b..]`, capped
/// at `max_len`. Compares 8 bytes at a time; the result is identical to
/// the byte-by-byte scan.
#[inline]
fn match_len(input: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut l = 0usize;
    while l + 8 <= max_len {
        let wa = u64::from_le_bytes(input[a + l..a + l + 8].try_into().unwrap());
        let wb = u64::from_le_bytes(input[b + l..b + l + 8].try_into().unwrap());
        let x = wa ^ wb;
        if x != 0 {
            return l + (x.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < max_len && input[a + l] == input[b + l] {
        l += 1;
    }
    l
}

fn lzss_compress_into(input: &[u8], out: &mut Vec<u8>, s: &mut LzScratch) {
    put_varint(out, input.len() as u64);
    if input.is_empty() {
        return;
    }

    if s.head.is_empty() {
        s.head = vec![0u64; 1 << HASH_BITS];
        // Positions are stored as `base + i` with 0 meaning "empty";
        // starting past the window makes the empty marker fail the
        // window check like any stale entry.
        s.base = WINDOW as u64 + 1;
    }
    let base = s.base;
    // Next call's positions are unreachable from this one through the
    // window check, so the head table never needs resetting.
    s.base = base + input.len() as u64 + WINDOW as u64 + 1;
    s.prev.clear();
    s.prev.resize(input.len(), 0);
    let head = &mut s.head[..];
    let prev = &mut s.prev[..];

    let mut i = 0usize;
    // Token group: flag byte position + bit count.
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bits = 0u8;

    macro_rules! push_flag {
        ($bit:expr) => {
            if flag_bits == 8 {
                flag_pos = out.len();
                out.push(0);
                flag_bits = 0;
            }
            if $bit {
                out[flag_pos] |= 1 << flag_bits;
            }
            flag_bits += 1;
        };
    }

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(input, i);
            let gi = base + i as u64;
            let mut g = head[h];
            let mut chain = 0;
            let max_len = (input.len() - i).min(MAX_MATCH);
            while gi - g <= WINDOW as u64 && chain < MAX_CHAIN {
                let cand = (g - base) as usize;
                // A candidate can only beat `best_len` if it also
                // matches at offset `best_len`; skipping the scan
                // otherwise never changes which match wins.
                if best_len == 0
                    || (best_len < max_len && input[cand + best_len] == input[i + best_len])
                {
                    let l = match_len(input, cand, i, max_len);
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l == max_len {
                            break;
                        }
                    }
                }
                g = prev[cand];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            push_flag!(true);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for the covered span (sparsely for speed).
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= input.len() {
                let h = hash4(input, i);
                prev[i] = head[h];
                head[h] = base + i as u64;
                i += 1;
            }
            i = end;
        } else {
            push_flag!(false);
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash4(input, i);
                prev[i] = head[h];
                head[h] = base + i as u64;
            }
            i += 1;
        }
    }
}

fn lzss_decompress_into(input: &[u8], out: &mut Vec<u8>) -> Result<()> {
    let mut pos = 0usize;
    let n = get_varint(input, &mut pos)? as usize;
    // Even a stream of nothing but maximal match tokens (3 payload
    // bytes → MAX_MATCH output bytes) cannot expand past
    // `remaining * MAX_MATCH`, so a forged length varint beyond that
    // is rejected before it can drive a gigantic reservation.
    let remaining = input.len() - pos;
    if n > (1 << 40) || n > remaining.saturating_mul(MAX_MATCH) {
        return Err(SzError::Corrupt("lzss length implausible"));
    }
    out.reserve(n);
    let mut flags = 0u8;
    let mut flag_bits = 0u8;
    while out.len() < n {
        if flag_bits == 0 {
            flags = *input.get(pos).ok_or(SzError::Truncated("lzss flags"))?;
            pos += 1;
            flag_bits = 8;
            if flags == 0 {
                // All-literal group: one chunked copy instead of eight
                // per-bit iterations. Smooth-region payloads (long
                // Huffman-code runs that LZSS could not match) are
                // dominated by these groups.
                let want = (n - out.len()).min(8);
                let lits = input
                    .get(pos..pos + want)
                    .ok_or(SzError::Truncated("lzss literal"))?;
                out.extend_from_slice(lits);
                pos += want;
                flag_bits = 0;
                continue;
            }
        }
        let is_match = flags & 1 != 0;
        flags >>= 1;
        flag_bits -= 1;
        if is_match {
            let b = input
                .get(pos..pos + 3)
                .ok_or(SzError::Truncated("lzss match"))?;
            pos += 3;
            let dist = u16::from_le_bytes([b[0], b[1]]) as usize;
            let len = b[2] as usize + MIN_MATCH;
            if dist == 0 || dist > out.len() {
                return Err(SzError::Corrupt("lzss distance"));
            }
            let start = out.len() - dist;
            if dist >= len {
                // Non-overlapping: one memcpy-class copy.
                out.extend_from_within(start..start + len);
            } else {
                // Overlapping (dist < len): the copied prefix is
                // itself source material, so the copyable window
                // doubles each round — copy_within-style expansion
                // instead of a byte-at-a-time loop.
                let mut copied = 0usize;
                while copied < len {
                    let take = (len - copied).min(out.len() - start);
                    out.extend_from_within(start..start + take);
                    copied += take;
                }
            }
        } else {
            let byte = *input.get(pos).ok_or(SzError::Truncated("lzss literal"))?;
            pos += 1;
            out.push(byte);
        }
    }
    if out.len() != n {
        return Err(SzError::Corrupt("lzss length mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_short() {
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive() {
        let data: Vec<u8> = b"abcabcabcabcabcabc".repeat(100);
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "repetitive data should shrink");
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_zeros() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 2_000);
        roundtrip(&data);
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        // xorshift-style pseudo-random bytes
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + 1);
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." forces dist-1 overlapping copies
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn decompress_into_reuses_dirty_buffer() {
        // The same output buffer recycled across streams of different
        // sizes and modes must match the allocating path exactly.
        let streams: Vec<Vec<u8>> = vec![
            b"abcabcabcabc".repeat(50),
            (0..255u8).collect(),
            vec![0u8; 10_000],
            b"xy".to_vec(),
        ];
        let mut buf = vec![0xAAu8; 123]; // dirty on purpose
        for s in &streams {
            let c = compress(s);
            decompress_into(&c, &mut buf).unwrap();
            assert_eq!(&buf, s);
        }
    }

    #[test]
    fn reused_scratch_is_byte_identical() {
        // One scratch recycled across many buffers (repeats, randomish,
        // overlapping self-copies, tiny, empty) must emit exactly the
        // stream a fresh scratch does: stale head entries may never
        // surface as match candidates.
        let mut x = 0xdeadbeefu32;
        let mut rnd = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    (x & 0xff) as u8
                })
                .collect()
        };
        let buffers: Vec<Vec<u8>> = vec![
            b"abcabcabcabc".repeat(64),
            rnd(10_000),
            vec![b'a'; 1000],
            b"abcabcabcabc".repeat(64), // repeat of an earlier input
            Vec::new(),
            rnd(3),
            vec![0u8; 100_000],
        ];
        let mut s = LzScratch::default();
        let mut out = Vec::new();
        for b in &buffers {
            compress_into(b, &mut out, &mut s);
            assert_eq!(out, compress(b), "diverged on len {}", b.len());
            assert_eq!(decompress(&out).unwrap(), *b);
        }
    }

    /// Naive per-byte expansion of a raw LZSS token stream (no mode
    /// byte) — the oracle the chunked fast paths are checked against.
    fn naive_expand(input: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        let n = get_varint(input, &mut pos)? as usize;
        let mut flags = 0u8;
        let mut flag_bits = 0u8;
        while out.len() < n {
            if flag_bits == 0 {
                flags = *input.get(pos).ok_or(SzError::Truncated("lzss flags"))?;
                pos += 1;
                flag_bits = 8;
            }
            let is_match = flags & 1 != 0;
            flags >>= 1;
            flag_bits -= 1;
            if is_match {
                let b = input
                    .get(pos..pos + 3)
                    .ok_or(SzError::Truncated("lzss match"))?;
                pos += 3;
                let dist = u16::from_le_bytes([b[0], b[1]]) as usize;
                let len = b[2] as usize + MIN_MATCH;
                if dist == 0 || dist > out.len() {
                    return Err(SzError::Corrupt("lzss distance"));
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            } else {
                let byte = *input.get(pos).ok_or(SzError::Truncated("lzss literal"))?;
                pos += 1;
                out.push(byte);
            }
        }
        if out.len() != n {
            return Err(SzError::Corrupt("lzss length mismatch"));
        }
        Ok(out)
    }

    /// Hand-build a MODE_LZSS stream: `lits` literal bytes, then one
    /// match of (`dist`, `len`), then `tail_lits` more literals.
    fn craft_stream(lits: &[u8], dist: u16, len: usize, tail_lits: &[u8]) -> Vec<u8> {
        assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
        let mut body = Vec::new();
        put_varint(&mut body, (lits.len() + len + tail_lits.len()) as u64);
        let mut tokens: Vec<(bool, Vec<u8>)> = Vec::new();
        for &b in lits {
            tokens.push((false, vec![b]));
        }
        let mut m = dist.to_le_bytes().to_vec();
        m.push((len - MIN_MATCH) as u8);
        tokens.push((true, m));
        for &b in tail_lits {
            tokens.push((false, vec![b]));
        }
        for group in tokens.chunks(8) {
            let mut flag = 0u8;
            for (i, (is_match, _)) in group.iter().enumerate() {
                if *is_match {
                    flag |= 1 << i;
                }
            }
            body.push(flag);
            for (_, payload) in group {
                body.extend_from_slice(payload);
            }
        }
        let mut s = vec![MODE_LZSS];
        s.extend_from_slice(&body);
        s
    }

    #[test]
    fn overlapping_matches_at_every_small_distance() {
        // dist 1..=8 with len far beyond dist exercises the doubling
        // copy_within-style expansion at every window size, including
        // maximal 259-byte matches; output must equal the naive
        // per-byte oracle.
        for dist in 1u16..=8 {
            for len in [MIN_MATCH, 7, 16, 100, MAX_MATCH] {
                let seed: Vec<u8> = (0..dist as u8).map(|i| i.wrapping_mul(41) + 3).collect();
                let s = craft_stream(&seed, dist, len, b"xy");
                let fast = decompress(&s).unwrap();
                let naive = naive_expand(&s[1..]).unwrap();
                assert_eq!(fast, naive, "dist {dist} len {len}");
                // The expansion really is periodic with period `dist`.
                let body = &fast[seed.len()..seed.len() + len];
                for (k, &b) in body.iter().enumerate() {
                    assert_eq!(b, seed[k % dist as usize], "dist {dist} len {len} at {k}");
                }
            }
        }
    }

    #[test]
    fn non_overlapping_match_spanning_literal_group_boundary() {
        // 13 leading literals put the match token inside the second
        // flag group, and dist ≥ len takes the single-copy fast path.
        let lits: Vec<u8> = (0..13u8).collect();
        for (dist, len) in [(13u16, 8usize), (10, 10), (9, MIN_MATCH)] {
            let s = craft_stream(&lits, dist, len, b"tail");
            assert_eq!(decompress(&s).unwrap(), naive_expand(&s[1..]).unwrap());
        }
    }

    #[test]
    fn match_expansion_across_chunk_copy_boundary() {
        // dist just below len makes the first extend_from_within round
        // stop mid-match and a short second round finish it — the seam
        // between the chunked copy and the overlap loop.
        for (dist, len) in [(7u16, 8usize), (8, 9), (5, 11), (128, 255)] {
            let seed: Vec<u8> = (0..dist).map(|i| (i * 89 + 17) as u8).collect();
            let s = craft_stream(&seed, dist, len, &[]);
            assert_eq!(
                decompress(&s).unwrap(),
                naive_expand(&s[1..]).unwrap(),
                "dist {dist} len {len}"
            );
        }
    }

    #[test]
    fn roundtrip_small_period_data_hits_fast_paths() {
        // Compressor-produced streams for periodic data emit real
        // dist-1..8 matches; the full encode→fast-decode loop must
        // roundtrip bit-exactly.
        for period in 1usize..=8 {
            let seed: Vec<u8> = (0..period as u8).map(|i| i.wrapping_mul(67) + 5).collect();
            let data: Vec<u8> = seed.iter().copied().cycle().take(4096 + period).collect();
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data, "period {period}");
        }
    }

    #[test]
    fn forged_length_rejected_without_allocation() {
        // A huge declared length over a tiny payload must be rejected
        // up front (no terabyte reserve), even below the absolute cap.
        let mut s = vec![MODE_LZSS];
        put_varint(&mut s, 1u64 << 39);
        s.push(0);
        assert!(matches!(
            decompress(&s),
            Err(SzError::Corrupt("lzss length implausible"))
        ));
    }

    #[test]
    fn corrupt_mode_rejected() {
        assert!(decompress(&[9, 1, 2, 3]).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let data: Vec<u8> = b"hello world hello world hello world".to_vec();
        let mut c = compress(&data);
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn bad_distance_rejected() {
        // Hand-craft: n=8, flag byte with match bit, dist 100 > produced 0
        let mut buf = vec![MODE_LZSS];
        put_varint(&mut buf, 8);
        buf.push(0b0000_0001);
        buf.extend_from_slice(&100u16.to_le_bytes());
        buf.push(0);
        assert!(decompress(&buf).is_err());
    }
}
