//! Canonical Huffman coding over quantization codes.
//!
//! SZ-style compressors Huffman-encode the quantization-code stream. The
//! codebook is bounded (`2 * radius` symbols), which bounds tree-build
//! time — the mechanism behind the compression-throughput floor the
//! paper observes (Fig. 6).
//!
//! Codes are canonical so the table serializes as `(symbol, length)`
//! pairs only; both sides reconstruct identical codes.

use crate::error::{Result, SzError};
use crate::stream::{get_varint, put_varint, BitReader, BitWriter};
use std::collections::BinaryHeap;

/// Maximum admissible code length. Rebuilt with flattened frequencies
/// if exceeded (rare; needs near-Fibonacci frequency profiles).
const MAX_CODE_LEN: u8 = 32;

/// Width of the decoder's primary lookup table: an `LUT_BITS`-bit peek
/// resolves every code of length ≤ `LUT_BITS` in a single table hit
/// (2^11 × 4 bytes = 8 KiB, resident in L1); longer codes fall back to
/// the canonical first_code/first_index walk.
pub const LUT_BITS: u32 = 11;
const LUT_SIZE: usize = 1 << LUT_BITS;
/// Primary-table entries pack `(symbol << LUT_LEN_BITS) | code_len`;
/// a zero entry means "no short code with this prefix" (fall back).
const LUT_LEN_BITS: u32 = 6;

/// Encoder-side canonical Huffman table.
#[derive(Debug, Clone, Default)]
pub struct HuffmanEncoder {
    /// `(code, len)` per symbol; `len == 0` means the symbol is absent.
    codes: Vec<(u32, u8)>,
    /// Symbols with `len > 0`, ascending — lets [`Self::serialize`] and
    /// in-place rebuilds skip full-alphabet scans.
    present: Vec<u32>,
}

/// Reusable workspace for [`HuffmanEncoder::rebuild_sparse`]: the tree
/// arrays sized by the number of *used* symbols, not the alphabet, so a
/// per-chunk encode loop does no alphabet-proportional allocation.
#[derive(Debug, Default)]
pub struct EncoderWorkspace {
    lens: Vec<u8>,
    parent: Vec<usize>,
    nodes: Vec<Node>,
    flat: Vec<u64>,
    by_len: Vec<(u8, u32)>,
}

/// Decoder-side canonical Huffman table.
///
/// A decoder is reusable: [`HuffmanDecoder::reinit`] repopulates the
/// table from a new serialized stream while recycling the `symbols`
/// and primary-LUT allocations, so a per-chunk decode loop builds no
/// fresh tables.
///
/// Decoding is two-level: an [`LUT_BITS`]-bit prefix peeked from the
/// word-buffered [`BitReader`] indexes the primary table directly to
/// `(symbol, code_len)` for short codes; longer (or invalid) prefixes
/// fall back to [`HuffmanDecoder::decode_one_reference`], the retained
/// bit-at-a-time canonical walk that doubles as the equivalence oracle.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// Symbols sorted in canonical order.
    symbols: Vec<u32>,
    /// `first_code[len]`: canonical code value of the first code of
    /// length `len`; `first_index[len]`: its index into `symbols`.
    first_code: [u64; MAX_CODE_LEN as usize + 1],
    first_index: [usize; MAX_CODE_LEN as usize + 1],
    count: [usize; MAX_CODE_LEN as usize + 1],
    /// Primary table: `LUT_BITS`-bit prefix → packed
    /// `(symbol << LUT_LEN_BITS) | code_len`, zero = fall back.
    lut: Vec<u32>,
    /// [`HuffmanDecoder::reinit`] scratch: the parsed `(len, symbol)`
    /// pairs, kept so per-chunk re-initialization does no
    /// alphabet-proportional work (the serialized table lists only the
    /// *present* symbols, and so does this).
    pairs: Vec<(u8, u32)>,
}

impl Default for HuffmanDecoder {
    /// An empty table (decodes nothing); fill it with
    /// [`HuffmanDecoder::reinit`].
    fn default() -> Self {
        HuffmanDecoder {
            symbols: Vec::new(),
            first_code: [0; MAX_CODE_LEN as usize + 1],
            first_index: [0; MAX_CODE_LEN as usize + 1],
            count: [0; MAX_CODE_LEN as usize + 1],
            lut: Vec::new(),
            pairs: Vec::new(),
        }
    }
}

// Standard heap-based Huffman tree node; ids index a parent array.
#[derive(Debug, PartialEq, Eq)]
struct Node {
    freq: u64,
    id: usize,
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap; tie-break on id for determinism.
        other
            .freq
            .cmp(&self.freq)
            .then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Compute code lengths for the used symbols only. `used` must list the
/// symbols with `freqs[s] > 0` in ascending order; on return
/// `ws.lens[i]` is the code length of `used[i]`. All scratch lives in
/// `ws`, so steady-state calls allocate nothing.
fn code_lengths_sparse(freqs: &[u64], used: &[u32], ws: &mut EncoderWorkspace) {
    ws.lens.clear();
    ws.lens.resize(used.len(), 0);
    match used.len() {
        0 => return,
        1 => {
            ws.lens[0] = 1;
            return;
        }
        _ => {}
    }

    // Work on a compact copy of the used frequencies; the flatten-retry
    // path (rare; needs near-Fibonacci profiles) mutates it in place.
    ws.flat.clear();
    ws.flat.extend(used.iter().map(|&s| freqs[s as usize]));
    loop {
        ws.parent.clear();
        ws.parent.resize(used.len() * 2, usize::MAX);
        ws.nodes.clear();
        ws.nodes.extend(
            ws.flat
                .iter()
                .enumerate()
                .map(|(i, &f)| Node { freq: f, id: i }),
        );
        let mut heap = BinaryHeap::from(std::mem::take(&mut ws.nodes));
        let mut next_id = used.len();
        while heap.len() > 1 {
            let a = heap.pop().unwrap();
            let b = heap.pop().unwrap();
            ws.parent[a.id] = next_id;
            ws.parent[b.id] = next_id;
            heap.push(Node {
                freq: a.freq.saturating_add(b.freq),
                id: next_id,
            });
            next_id += 1;
        }
        // Depth of each leaf = chain length to the root.
        let root = heap.pop().unwrap().id;
        // Hand the heap's allocation back to the workspace.
        ws.nodes = heap.into_vec();
        let mut too_deep = false;
        for i in 0..used.len() {
            let mut d = 0u32;
            let mut n = i;
            while n != root {
                n = ws.parent[n];
                d += 1;
            }
            if d > MAX_CODE_LEN as u32 {
                too_deep = true;
                break;
            }
            ws.lens[i] = d.max(1) as u8;
        }
        if !too_deep {
            return;
        }
        // Flatten the distribution and retry; converges quickly.
        for f in ws.flat.iter_mut() {
            if *f > 0 {
                *f = (*f >> 1) + 1;
            }
        }
    }
}

/// Compute code lengths for `freqs` (index = symbol), returning a vector
/// of lengths. Zero-frequency symbols get length 0.
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let used: Vec<u32> = (0..freqs.len() as u32)
        .filter(|&s| freqs[s as usize] > 0)
        .collect();
    let mut ws = EncoderWorkspace::default();
    code_lengths_sparse(freqs, &used, &mut ws);
    let mut lens = vec![0u8; freqs.len()];
    for (i, &s) in used.iter().enumerate() {
        lens[s as usize] = ws.lens[i];
    }
    lens
}

/// Assign canonical codes given lengths. Returns `(code, len)` per symbol.
fn canonical_codes(lens: &[u8]) -> Vec<(u32, u8)> {
    let mut by_len: Vec<(u8, u32)> = lens
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0)
        .map(|(s, &l)| (l, s as u32))
        .collect();
    by_len.sort_unstable();
    let mut codes = vec![(0u32, 0u8); lens.len()];
    let mut code: u64 = 0;
    let mut prev_len = 0u8;
    for &(len, sym) in &by_len {
        code <<= len - prev_len;
        codes[sym as usize] = (code as u32, len);
        code += 1;
        prev_len = len;
    }
    codes
}

impl HuffmanEncoder {
    /// Build an encoder from symbol frequencies (`freqs[s]` = count of
    /// symbol `s`).
    pub fn from_freqs(freqs: &[u64]) -> Self {
        let lens = code_lengths(freqs);
        let present: Vec<u32> = lens
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, _)| s as u32)
            .collect();
        HuffmanEncoder {
            codes: canonical_codes(&lens),
            present,
        }
    }

    /// Rebuild this encoder in place from sparse frequency data,
    /// recycling its table allocation and the caller's workspace.
    ///
    /// `used` must list the symbols with `freqs[s] > 0` in ascending
    /// order. The resulting table — codes, serialized bytes, encoded
    /// stream — is byte-identical to
    /// `HuffmanEncoder::from_freqs(&freqs[..alphabet])`, but the only
    /// alphabet-proportional work is the (amortized) table resize: the
    /// tree build touches `used.len()` entries, not the alphabet.
    pub fn rebuild_sparse(
        &mut self,
        alphabet: usize,
        freqs: &[u64],
        used: &[u32],
        ws: &mut EncoderWorkspace,
    ) {
        // Clear the previous build's entries before resizing so stale
        // (code, len) pairs can't survive under a new symbol set.
        for &s in &self.present {
            if let Some(e) = self.codes.get_mut(s as usize) {
                *e = (0, 0);
            }
        }
        self.codes.resize(alphabet, (0, 0));

        code_lengths_sparse(freqs, used, ws);
        // Canonical assignment in (len, symbol) order, as in
        // `canonical_codes`.
        ws.by_len.clear();
        ws.by_len.extend(
            used.iter()
                .enumerate()
                .filter(|&(i, _)| ws.lens[i] > 0)
                .map(|(i, &s)| (ws.lens[i], s)),
        );
        ws.by_len.sort_unstable();
        let mut code: u64 = 0;
        let mut prev_len = 0u8;
        for &(len, sym) in &ws.by_len {
            code <<= len - prev_len;
            self.codes[sym as usize] = (code as u32, len);
            code += 1;
            prev_len = len;
        }
        self.present.clear();
        self.present.extend_from_slice(used);
    }

    /// Build directly from a symbol stream.
    pub fn from_symbols(symbols: &[u32], alphabet: usize) -> Self {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        Self::from_freqs(&freqs)
    }

    /// Code length in bits for a symbol (0 if absent).
    pub fn len_of(&self, sym: u32) -> u8 {
        self.codes.get(sym as usize).map_or(0, |&(_, l)| l)
    }

    /// Total encoded bit length of a stream with the given frequencies.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * u64::from(self.len_of(s as u32)))
            .sum()
    }

    /// Serialize the table: varint count then (delta-coded symbol, len).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        let n_present = self.present.len();
        // Two header varints plus, per entry, a symbol delta (≤ 5 bytes
        // for any alphabet we admit) and one length byte.
        out.reserve(20 + n_present * 6);
        put_varint(out, self.codes.len() as u64);
        put_varint(out, n_present as u64);
        let mut prev = 0u32;
        for &sym in &self.present {
            let len = self.codes[sym as usize].1;
            put_varint(out, u64::from(sym - prev));
            out.push(len);
            prev = sym;
        }
    }

    /// Encode `symbols` appending to the writer.
    pub fn encode(&self, symbols: &[u32], w: &mut BitWriter) {
        for &s in symbols {
            let (code, len) = self.codes[s as usize];
            debug_assert!(len > 0, "encoding absent symbol {s}");
            w.write_bits(u64::from(code), len);
        }
    }

    /// Table size when serialized, in bytes (used by the ratio model).
    pub fn table_bytes(&self) -> usize {
        let mut v = Vec::with_capacity(20 + self.present.len() * 6);
        self.serialize(&mut v);
        v.len()
    }
}

impl HuffmanDecoder {
    /// Deserialize a table previously written by
    /// [`HuffmanEncoder::serialize`].
    pub fn deserialize(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let mut dec = HuffmanDecoder::default();
        dec.reinit(buf, pos)?;
        Ok(dec)
    }

    /// Re-initialize this decoder from a serialized table, recycling
    /// its allocations. The resulting table is identical to
    /// [`HuffmanDecoder::deserialize`] on the same bytes.
    ///
    /// All work is proportional to the number of *present* symbols, not
    /// the alphabet: the serialized table lists `(symbol, len)` pairs
    /// only, and so does the rebuild — a per-chunk decode loop with a
    /// wide quantizer alphabet (default 2·32768) pays for the few
    /// hundred codes a chunk actually uses, never for 64 Ki empty
    /// slots.
    pub fn reinit(&mut self, buf: &[u8], pos: &mut usize) -> Result<()> {
        let alphabet = get_varint(buf, pos)? as usize;
        let n_present = get_varint(buf, pos)? as usize;
        if n_present > alphabet || alphabet > (1 << 24) {
            return Err(SzError::Corrupt("huffman table header"));
        }
        // On a parse error the tables are left untouched (stale), same
        // as the dense-era behavior; callers treat the decoder as
        // uninitialized after a failed reinit.
        let mut pairs = std::mem::take(&mut self.pairs);
        pairs.clear();
        let mut prev = 0u64;
        for i in 0..n_present {
            let delta = get_varint(buf, pos)?;
            let sym = if i == 0 { delta } else { prev + delta };
            let len = *buf.get(*pos).ok_or(SzError::Truncated("huffman len"))?;
            *pos += 1;
            if len == 0 || len > MAX_CODE_LEN || sym >= alphabet as u64 {
                self.pairs = pairs;
                return Err(SzError::Corrupt("huffman table entry"));
            }
            // Symbols are delta-coded non-decreasing, so a duplicate is
            // always adjacent; last-wins mirrors the dense
            // `lens[sym] = len` overwrite exactly.
            if i > 0 && sym == prev {
                *pairs.last_mut().unwrap() = (len, sym as u32);
            } else {
                pairs.push((len, sym as u32));
            }
            prev = sym;
        }
        // Lexicographic (len, symbol) order — canonical order, and the
        // same order the dense path's stable by-length sort of an
        // ascending symbol list produces (symbols are unique here).
        pairs.sort_unstable();
        self.count = [0usize; MAX_CODE_LEN as usize + 1];
        self.symbols.clear();
        for &(len, sym) in &pairs {
            self.count[len as usize] += 1;
            self.symbols.push(sym);
        }
        self.pairs = pairs;
        self.build_tables();
        Ok(())
    }

    /// Build from code lengths.
    pub fn from_lens(lens: &[u8]) -> Result<Self> {
        let mut dec = HuffmanDecoder::default();
        dec.init_from_lens(lens)?;
        Ok(dec)
    }

    /// Populate the table in place from code lengths.
    fn init_from_lens(&mut self, lens: &[u8]) -> Result<()> {
        self.count = [0usize; MAX_CODE_LEN as usize + 1];
        for &l in lens {
            if l > MAX_CODE_LEN {
                return Err(SzError::Corrupt("huffman code too long"));
            }
            if l > 0 {
                self.count[l as usize] += 1;
            }
        }
        // Canonical ordering: by (len, symbol). The extend walks
        // symbols in ascending order, so a stable-by-key sort on length
        // yields the same order as sorting (len, symbol) pairs.
        self.symbols.clear();
        self.symbols.extend(
            lens.iter()
                .enumerate()
                .filter(|(_, &l)| l > 0)
                .map(|(s, _)| s as u32),
        );
        self.symbols.sort_by_key(|&s| lens[s as usize]);
        self.build_tables();
        Ok(())
    }

    /// Rebuild `first_code`/`first_index` and the primary LUT from
    /// `count` and canonically ordered `symbols` — the shared tail of
    /// the dense ([`HuffmanDecoder::from_lens`]) and sparse
    /// ([`HuffmanDecoder::reinit`]) initialization paths.
    fn build_tables(&mut self) {
        let mut code = 0u64;
        let mut index = 0usize;
        for len in 1..=MAX_CODE_LEN as usize {
            code <<= 1;
            self.first_code[len] = code;
            self.first_index[len] = index;
            code += self.count[len] as u64;
            index += self.count[len];
        }

        // Primary LUT: every LUT_BITS-bit prefix whose leading bits
        // form a code of length ≤ LUT_BITS maps straight to that
        // (symbol, len). Lengths are walked longest-first so that with
        // an over-subscribed (corrupt but accepted) table, overlapping
        // spans resolve to the *shortest* matching code — exactly what
        // the reference walk finds first — keeping the two decoders
        // equivalent on every input.
        self.lut.clear();
        self.lut.resize(LUT_SIZE, 0);
        let short_max = LUT_BITS.min(u32::from(MAX_CODE_LEN)) as usize;
        for len in (1..=short_max).rev() {
            let first = self.first_code[len];
            for i in 0..self.count[len] {
                let code = first + i as u64;
                if code >> len != 0 {
                    // Over-subscribed table: the code does not fit in
                    // `len` bits; the reference walk can never match
                    // it, so it gets no LUT span either.
                    continue;
                }
                let sym = self.symbols[self.first_index[len] + i];
                if sym >= (1 << (32 - LUT_LEN_BITS)) {
                    // Symbol too wide to pack (only reachable through
                    // `from_lens` with an absurd alphabet; `reinit`
                    // caps at 2^24): let the reference walk handle it.
                    continue;
                }
                let shift = LUT_BITS as usize - len;
                let base = (code as usize) << shift;
                let entry = (sym << LUT_LEN_BITS) | len as u32;
                for e in &mut self.lut[base..base + (1 << shift)] {
                    *e = entry;
                }
            }
        }
    }

    /// Decode one symbol from the reader: primary-table hit for codes
    /// up to [`LUT_BITS`] long, canonical-walk fallback for longer or
    /// invalid prefixes. Byte- and error-equivalent to
    /// [`HuffmanDecoder::decode_one_reference`] on every stream.
    #[inline]
    pub fn decode_one(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let entry = self.lut[r.peek_bits(LUT_BITS) as usize];
        if entry != 0 {
            let len = entry & ((1 << LUT_LEN_BITS) - 1);
            // Post-peek, `avail < len` only at the stream tail, where
            // `avail == bits_remaining()` — so this one-register test
            // is exactly the "enough bits left?" check.
            if len <= r.avail_bits() {
                r.consume(len);
                return Ok(entry >> LUT_LEN_BITS);
            }
            // The padded peek matched a code longer than what's left in
            // the stream — the reference walk would run out of bits.
            return Err(SzError::Truncated("huffman bits"));
        }
        self.decode_one_reference(r)
    }

    /// Decode one symbol by the bit-at-a-time canonical walk.
    ///
    /// This is the original decoder, retained both as the long-code
    /// fallback of [`HuffmanDecoder::decode_one`] and as the reference
    /// oracle the LUT path is pinned against (see the adversarial
    /// equivalence proptest).
    pub fn decode_one_reference(&self, r: &mut BitReader<'_>) -> Result<u32> {
        // Single-symbol degenerate table: consume one bit.
        let mut code = 0u64;
        for len in 1..=MAX_CODE_LEN as usize {
            let bit = r.read_bit().ok_or(SzError::Truncated("huffman bits"))?;
            code = (code << 1) | u64::from(bit);
            let cnt = self.count[len];
            if cnt > 0 {
                let first = self.first_code[len];
                if code < first + cnt as u64 && code >= first {
                    let idx = self.first_index[len] + (code - first) as usize;
                    return Ok(self.symbols[idx]);
                }
            }
        }
        Err(SzError::Corrupt("invalid huffman code"))
    }

    /// Decode exactly `n` symbols into a fresh vector.
    ///
    /// Allocating convenience for tests and one-off callers; hot paths
    /// go through [`HuffmanDecoder::decode_into`] so the output buffer
    /// is recycled across chunks.
    pub fn decode(&self, r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        self.decode_into(r, n, &mut out)?;
        Ok(out)
    }

    /// Decode exactly `n` symbols into `out` (cleared first), reusing
    /// its allocation across calls.
    ///
    /// The batch loop drives the LUT fast path through the buffered
    /// reader with peek/consume — no per-symbol `Option` plumbing; the
    /// canonical walk is entered only for codes longer than
    /// [`LUT_BITS`] or invalid prefixes.
    pub fn decode_into(&self, r: &mut BitReader<'_>, n: usize, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.decode_one(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32], alphabet: usize) {
        let enc = HuffmanEncoder::from_symbols(symbols, alphabet);
        let mut table = Vec::new();
        enc.serialize(&mut table);
        let mut w = BitWriter::new();
        enc.encode(symbols, &mut w);
        let bits = w.finish();

        let mut pos = 0;
        let dec = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
        assert_eq!(pos, table.len());
        let mut r = BitReader::new(&bits);
        let decoded = dec.decode(&mut r, symbols.len()).unwrap();
        assert_eq!(decoded, symbols);
    }

    #[test]
    fn roundtrip_small() {
        roundtrip(&[1, 2, 3, 1, 1, 1, 2, 0, 0, 3], 4);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[5; 100], 8);
    }

    #[test]
    fn roundtrip_two_symbols() {
        roundtrip(&[0, 1, 0, 1, 1, 1, 0], 2);
    }

    #[test]
    fn roundtrip_skewed() {
        let mut syms = vec![7u32; 10_000];
        syms.extend((0..64).map(|i| i as u32));
        roundtrip(&syms, 64 + 8);
    }

    #[test]
    fn roundtrip_wide_alphabet() {
        let syms: Vec<u32> = (0..5_000u32).map(|i| (i * 7919) % 65536).collect();
        roundtrip(&syms, 65536);
    }

    #[test]
    fn skewed_codes_are_shorter() {
        let mut freqs = vec![1u64; 16];
        freqs[3] = 1_000_000;
        let enc = HuffmanEncoder::from_freqs(&freqs);
        for s in 0..16 {
            if s != 3 {
                assert!(enc.len_of(3) <= enc.len_of(s));
            }
        }
    }

    #[test]
    fn encoded_bits_matches_actual() {
        let syms: Vec<u32> = (0..1000u32).map(|i| i % 10).collect();
        let mut freqs = vec![0u64; 10];
        for &s in &syms {
            freqs[s as usize] += 1;
        }
        let enc = HuffmanEncoder::from_symbols(&syms, 10);
        let mut w = BitWriter::new();
        enc.encode(&syms, &mut w);
        assert_eq!(w.bit_len() as u64, enc.encoded_bits(&freqs));
    }

    #[test]
    fn reused_decoder_matches_fresh() {
        // One decoder reinit-ed across tables of different shapes must
        // decode exactly like a freshly deserialized one.
        let streams: Vec<(Vec<u32>, usize)> = vec![
            (vec![1, 2, 3, 1, 1, 1, 2, 0, 0, 3], 4),
            (vec![5; 100], 8),
            ((0..5_000u32).map(|i| (i * 7919) % 4096).collect(), 4096),
            (vec![0, 1, 0, 1, 1], 2),
        ];
        let mut reused = HuffmanDecoder::default();
        let mut codes = Vec::new();
        for (syms, alphabet) in &streams {
            let enc = HuffmanEncoder::from_symbols(syms, *alphabet);
            let mut table = Vec::new();
            enc.serialize(&mut table);
            let mut w = BitWriter::new();
            enc.encode(syms, &mut w);
            let bits = w.finish();

            let mut pos = 0;
            reused.reinit(&table, &mut pos).unwrap();
            assert_eq!(pos, table.len());
            let mut r = BitReader::new(&bits);
            reused.decode_into(&mut r, syms.len(), &mut codes).unwrap();
            assert_eq!(&codes, syms);

            let mut pos = 0;
            let fresh = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
            let mut r = BitReader::new(&bits);
            assert_eq!(&fresh.decode(&mut r, syms.len()).unwrap(), syms);
        }
    }

    #[test]
    fn rebuild_sparse_matches_from_freqs() {
        // One encoder rebuilt in place across streams of different
        // alphabets and symbol sets must serialize and encode exactly
        // like a fresh dense build — including after shrinks, so stale
        // entries from a wider previous table can't leak through.
        let streams: Vec<(Vec<u32>, usize)> = vec![
            ((0..5_000u32).map(|i| (i * 7919) % 65536).collect(), 65536),
            (vec![1, 2, 3, 1, 1, 1, 2, 0, 0, 3], 4),
            (vec![5; 100], 8),
            ((0..500u32).map(|i| i % 300).collect(), 4096),
            (vec![7], 16),
        ];
        let mut enc = HuffmanEncoder::default();
        let mut ws = EncoderWorkspace::default();
        for (syms, alphabet) in &streams {
            let mut freqs = vec![0u64; *alphabet];
            for &s in syms {
                freqs[s as usize] += 1;
            }
            let used: Vec<u32> = (0..*alphabet as u32)
                .filter(|&s| freqs[s as usize] > 0)
                .collect();
            enc.rebuild_sparse(*alphabet, &freqs, &used, &mut ws);
            let fresh = HuffmanEncoder::from_freqs(&freqs);

            let (mut a, mut b) = (Vec::new(), Vec::new());
            enc.serialize(&mut a);
            fresh.serialize(&mut b);
            assert_eq!(a, b, "serialized table diverged at alphabet {alphabet}");
            let (mut wa, mut wb) = (BitWriter::new(), BitWriter::new());
            enc.encode(syms, &mut wa);
            fresh.encode(syms, &mut wb);
            assert_eq!(wa.finish(), wb.finish());
            assert_eq!(enc.table_bytes(), fresh.table_bytes());
        }
    }

    /// Decode with the LUT path and the reference walk side by side;
    /// both must agree on every symbol and on the exact terminal error.
    fn assert_paths_equivalent(dec: &HuffmanDecoder, bits: &[u8], max_symbols: usize) {
        let mut lut_r = BitReader::new(bits);
        let mut ref_r = BitReader::new(bits);
        for i in 0..max_symbols {
            let a = dec.decode_one(&mut lut_r);
            let b = dec.decode_one_reference(&mut ref_r);
            assert_eq!(a, b, "symbol {i} diverged");
            if a.is_err() {
                return;
            }
            assert_eq!(
                lut_r.bits_remaining(),
                ref_r.bits_remaining(),
                "position diverged after symbol {i}"
            );
        }
    }

    #[test]
    fn lut_matches_reference_on_valid_streams() {
        let streams: Vec<(Vec<u32>, usize)> = vec![
            (vec![1, 2, 3, 1, 1, 1, 2, 0, 0, 3], 4),
            (vec![5; 100], 8),
            ((0..5_000u32).map(|i| (i * 7919) % 65536).collect(), 65536),
            (vec![0, 1, 0, 1, 1], 2),
        ];
        for (syms, alphabet) in &streams {
            let enc = HuffmanEncoder::from_symbols(syms, *alphabet);
            let mut table = Vec::new();
            enc.serialize(&mut table);
            let mut w = BitWriter::new();
            enc.encode(syms, &mut w);
            let bits = w.finish();
            let mut pos = 0;
            let dec = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
            assert_paths_equivalent(&dec, &bits, syms.len() + 4);
        }
    }

    #[test]
    fn long_codes_fall_back_to_the_reference_walk() {
        // A geometric frequency ramp forces code lengths well past
        // LUT_BITS, so the fallback path carries real traffic; decode
        // must still roundtrip and match the reference exactly.
        let mut syms = Vec::new();
        for s in 0..24u32 {
            let reps = 1usize << (24 - s).min(16);
            syms.extend(std::iter::repeat_n(s, reps));
        }
        let enc = HuffmanEncoder::from_symbols(&syms, 24);
        let long_codes = (0..24).filter(|&s| enc.len_of(s) > LUT_BITS as u8).count();
        assert!(long_codes > 0, "profile failed to produce >LUT_BITS codes");
        let mut w = BitWriter::new();
        enc.encode(&syms, &mut w);
        let bits = w.finish();
        let mut table = Vec::new();
        enc.serialize(&mut table);
        let mut pos = 0;
        let dec = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
        let mut r = BitReader::new(&bits);
        assert_eq!(dec.decode(&mut r, syms.len()).unwrap(), syms);
        assert_paths_equivalent(&dec, &bits, syms.len());
    }

    #[test]
    fn lut_matches_reference_on_garbage_bits() {
        // Corrupt bitstreams must produce identical symbols and the
        // identical typed error from both paths.
        let syms: Vec<u32> = (0..500u32).map(|i| (i * 31) % 97).collect();
        let enc = HuffmanEncoder::from_symbols(&syms, 97);
        let mut table = Vec::new();
        enc.serialize(&mut table);
        let mut pos = 0;
        let dec = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
        let mut x = 0x2545F491u64;
        for len in [0usize, 1, 2, 5, 17, 64, 255] {
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x & 0xff) as u8
                })
                .collect();
            assert_paths_equivalent(&dec, &garbage, 200);
        }
    }

    #[test]
    fn oversubscribed_table_decodes_identically_on_both_paths() {
        // `from_lens` accepts Kraft-oversubscribed length sets (corrupt
        // tables); the LUT's shortest-match fill order must keep it in
        // lockstep with the reference walk even there.
        let lens = [1u8, 1, 1, 2, 2, 3, 12, 12, 13];
        let dec = HuffmanDecoder::from_lens(&lens).unwrap();
        let mut x = 0x9E3779B9u64;
        for len in [1usize, 3, 9, 33, 130] {
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x & 0xff) as u8
                })
                .collect();
            assert_paths_equivalent(&dec, &garbage, 300);
        }
    }

    #[test]
    fn corrupt_table_rejected() {
        // length byte of 0 is invalid
        let mut buf = Vec::new();
        put_varint(&mut buf, 4); // alphabet
        put_varint(&mut buf, 1); // one entry
        put_varint(&mut buf, 1); // symbol 1
        buf.push(0); // invalid length
        let mut pos = 0;
        assert!(HuffmanDecoder::deserialize(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncated_bits_detected() {
        let syms = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let enc = HuffmanEncoder::from_symbols(&syms, 4);
        let mut w = BitWriter::new();
        enc.encode(&syms, &mut w);
        let bits = w.finish();
        let mut table = Vec::new();
        enc.serialize(&mut table);
        let mut pos = 0;
        let dec = HuffmanDecoder::deserialize(&table, &mut pos).unwrap();
        let mut r = BitReader::new(&bits[..0]);
        assert!(dec.decode(&mut r, syms.len()).is_err());
    }
}
