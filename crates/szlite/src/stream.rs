//! Low-level byte/bit stream primitives used by the container format.
//!
//! Everything is little-endian. Varints use LEB128.

use crate::error::{Result, SzError};

/// Append a `u64` LEB128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(SzError::Truncated("varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(SzError::Corrupt("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u32` at `*pos`.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = pos.checked_add(4).ok_or(SzError::Truncated("u32"))?;
    let bytes = buf.get(*pos..end).ok_or(SzError::Truncated("u32"))?;
    *pos = end;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u64` at `*pos`.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos.checked_add(8).ok_or(SzError::Truncated("u64"))?;
    let bytes = buf.get(*pos..end).ok_or(SzError::Truncated("u64"))?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

/// Append a little-endian `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `f64` at `*pos`.
pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos.checked_add(8).ok_or(SzError::Truncated("f64"))?;
    let bytes = buf.get(*pos..end).ok_or(SzError::Truncated("f64"))?;
    *pos = end;
    Ok(f64::from_le_bytes(bytes.try_into().unwrap()))
}

/// MSB-first bit writer over a growable byte vector.
///
/// Bits accumulate in a 64-bit word and flush to the byte vector a
/// whole byte at a time, so a multi-bit code costs a couple of shifts
/// rather than a per-bit loop. The backing buffer can be recycled
/// across streams via [`BitWriter::with_buffer`].
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bit accumulator; only the low `nbits` bits are meaningful.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer reusing `buf` (cleared first) as backing storage, so
    /// per-chunk callers can recycle the allocation between streams.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            bytes: buf,
            acc: 0,
            nbits: 0,
        }
    }

    /// Write the low `len` bits of `code`, MSB first. `len <= 64`.
    pub fn write_bits(&mut self, code: u64, len: u8) {
        debug_assert!(len <= 64);
        if len > 32 {
            self.write_bits(code >> 32, len - 32);
            self.write_bits(code & 0xFFFF_FFFF, 32);
            return;
        }
        if len == 0 {
            return;
        }
        // nbits < 8 between calls, so nbits + len <= 39 fits in acc.
        self.acc = (self.acc << len) | (code & ((1u64 << len) - 1));
        self.nbits += u32::from(len);
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Flush the final partial byte (zero padded) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.bytes
    }
}

/// Largest `n` accepted by [`BitReader::peek_bits`]: one refill always
/// tops the accumulator up to at least this many bits while the stream
/// has them.
pub const MAX_PEEK_BITS: u32 = 56;

/// MSB-first bit reader over a byte slice, buffered through a 64-bit
/// accumulator that refills from whole words.
///
/// Two access styles share the same position:
///
/// - the byte-exact API ([`BitReader::read_bit`] /
///   [`BitReader::read_bits`]), which returns `None` once the slice is
///   exhausted — semantics identical to the historical bit-at-a-time
///   reader, except that a failing `read_bits` no longer consumes the
///   bits it managed to read (failure is position-stable);
/// - the decode-loop API ([`BitReader::peek_bits`] /
///   [`BitReader::consume`]), which lets a table-driven decoder look at
///   the next prefix without committing to a length. `peek_bits`
///   zero-pads past the end of the slice; callers that consume must
///   first check [`BitReader::bits_remaining`].
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte not yet loaded into `acc`.
    pos: usize,
    /// MSB-aligned accumulator: the top `avail` bits are the next bits
    /// of the stream, everything below them is zero.
    acc: u64,
    avail: u32,
}

impl<'a> BitReader<'a> {
    /// New reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            avail: 0,
        }
    }

    /// Total bits left in the stream (accumulator plus unread bytes).
    #[inline]
    pub fn bits_remaining(&self) -> usize {
        self.avail as usize + (self.bytes.len() - self.pos) * 8
    }

    /// Bits currently valid in the accumulator. After a refilling call
    /// (e.g. [`BitReader::peek_bits`]) this is < [`MAX_PEEK_BITS`] only
    /// when the byte slice is exhausted, in which case it equals
    /// [`BitReader::bits_remaining`] — which lets a decoder's hot loop
    /// test "are `len ≤ 56` bits really left?" against this single
    /// register instead of recomputing the full remaining count.
    #[inline]
    pub(crate) fn avail_bits(&self) -> u32 {
        self.avail
    }

    /// Top the accumulator up to ≥ 56 valid bits (or to everything the
    /// stream still has). The fast path grafts whole bytes of a 64-bit
    /// word in one shot; the tail falls back to byte-at-a-time.
    #[inline]
    fn refill(&mut self) {
        if self.avail >= MAX_PEEK_BITS {
            return;
        }
        if self.pos + 8 <= self.bytes.len() {
            let w = u64::from_be_bytes(self.bytes[self.pos..self.pos + 8].try_into().unwrap());
            // Whole bytes that fit above the valid region (avail ≤ 55,
            // so 1 ≤ take ≤ 7 and the shifts below stay in range).
            let take = (63 - self.avail) >> 3;
            self.acc |= (w >> (64 - 8 * take)) << (64 - self.avail - 8 * take);
            self.pos += take as usize;
            self.avail += 8 * take;
        } else {
            while self.avail <= MAX_PEEK_BITS && self.pos < self.bytes.len() {
                self.acc |= u64::from(self.bytes[self.pos]) << (56 - self.avail);
                self.pos += 1;
                self.avail += 8;
            }
        }
    }

    /// Look at the next `n` bits (MSB-first, `1 ≤ n ≤ 56`) without
    /// consuming them. Bits past the end of the stream read as zero;
    /// check [`BitReader::bits_remaining`] before consuming.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!((1..=MAX_PEEK_BITS).contains(&n));
        if self.avail < n {
            self.refill();
        }
        self.acc >> (64 - n)
    }

    /// Advance past `n` bits previously exposed by
    /// [`BitReader::peek_bits`]. `n` must not exceed the bits the last
    /// peek actually made available (`bits_remaining` bounds it at the
    /// stream tail).
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.avail, "consume past refilled bits");
        self.acc <<= n;
        self.avail -= n;
    }

    /// Read a single bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u8> {
        if self.avail == 0 {
            self.refill();
            if self.avail == 0 {
                return None;
            }
        }
        let bit = (self.acc >> 63) as u8;
        self.acc <<= 1;
        self.avail -= 1;
        Some(bit)
    }

    /// Read `len` bits MSB-first into a `u64` (`len ≤ 64`).
    ///
    /// Failure is position-stable: if fewer than `len` bits remain the
    /// reader returns `None` without consuming anything, so the
    /// remaining bits can still be read afterwards.
    pub fn read_bits(&mut self, len: u8) -> Option<u64> {
        debug_assert!(len <= 64);
        if len == 0 {
            return Some(0);
        }
        let len = u32::from(len);
        if self.bits_remaining() < len as usize {
            return None;
        }
        if len <= MAX_PEEK_BITS {
            let v = self.peek_bits(len);
            self.consume(len);
            Some(v)
        } else {
            let hi = self.peek_bits(32);
            self.consume(32);
            let lo_len = len - 32;
            let lo = self.peek_bits(lo_len);
            self.consume(lo_len);
            Some((hi << lo_len) | lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let vals = [0u64, 1, 127, 128, 300, 65535, 1 << 32, u64::MAX];
        let mut buf = Vec::new();
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncated() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            get_varint(&buf, &mut pos),
            Err(SzError::Truncated(_))
        ));
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdeadbeef);
        put_u64(&mut buf, 0x0123456789abcdef);
        put_f64(&mut buf, -1.25e300);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xdeadbeef);
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), 0x0123456789abcdef);
        assert_eq!(get_f64(&buf, &mut pos).unwrap(), -1.25e300);
    }

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xffff, 16);
        w.write_bits(0, 1);
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xffff);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn bit_writer_wide_codes_and_buffer_reuse() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);

        // A writer recycling that buffer produces the same stream as a
        // fresh one.
        let mut w2 = BitWriter::with_buffer(bytes);
        w2.write_bits(0b1010101, 7);
        let mut w3 = BitWriter::new();
        w3.write_bits(0b1010101, 7);
        assert_eq!(w2.finish(), w3.finish());
    }

    #[test]
    fn bit_reader_eof() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert!(r.read_bit().is_none());
    }

    #[test]
    fn read_bits_failure_is_position_stable() {
        // A failing read_bits must not consume the bits it could have
        // read: after the None, the remaining bits are all still there.
        let mut r = BitReader::new(&[0b1011_0011, 0b1100_0000]);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        // 12 bits remain; asking for more fails without moving.
        assert!(r.read_bits(13).is_none());
        assert!(r.read_bits(64).is_none());
        assert_eq!(r.bits_remaining(), 12);
        assert_eq!(r.read_bits(12).unwrap(), 0b0011_1100_0000);
        assert!(r.read_bits(1).is_none());
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn peek_consume_matches_read_bits() {
        // Driving the reader through peek/consume yields exactly the
        // bit sequence the byte-exact API reads, across word-refill
        // boundaries.
        let bytes: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        let widths = [3u32, 11, 1, 56, 7, 24, 13, 2, 31, 11, 11, 11];
        let mut peeker = BitReader::new(&bytes);
        let mut reader = BitReader::new(&bytes);
        for &w in widths.iter().cycle().take(40) {
            if peeker.bits_remaining() < w as usize {
                break;
            }
            let a = peeker.peek_bits(w);
            peeker.consume(w);
            let b = reader.read_bits(w as u8).unwrap();
            assert_eq!(a, b, "width {w}");
        }
        assert_eq!(peeker.bits_remaining(), reader.bits_remaining());
    }

    #[test]
    fn peek_zero_pads_past_the_end() {
        // 6 bits of stream left ("111100"): an 11-bit peek sees them
        // MSB-aligned with zero padding, and bits_remaining still says
        // 6 — the caller decides whether a consume is legal.
        let mut r = BitReader::new(&[0b1011_1100]);
        r.peek_bits(2);
        r.consume(2);
        assert_eq!(r.bits_remaining(), 6);
        assert_eq!(r.peek_bits(11), 0b111_1000_0000);
        assert_eq!(r.bits_remaining(), 6);
        // The real bits are still readable through the byte-exact API.
        assert_eq!(r.read_bits(6).unwrap(), 0b11_1100);
    }

    #[test]
    fn bits_remaining_tracks_all_apis() {
        let bytes = vec![0xA5u8; 20];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits_remaining(), 160);
        r.read_bit().unwrap();
        assert_eq!(r.bits_remaining(), 159);
        r.read_bits(56).unwrap();
        assert_eq!(r.bits_remaining(), 103);
        r.peek_bits(11);
        r.consume(11);
        assert_eq!(r.bits_remaining(), 92);
        r.read_bits(64).unwrap();
        assert_eq!(r.bits_remaining(), 28);
    }
}
