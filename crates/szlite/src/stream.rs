//! Low-level byte/bit stream primitives used by the container format.
//!
//! Everything is little-endian. Varints use LEB128.

use crate::error::{Result, SzError};

/// Append a `u64` LEB128 varint to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(SzError::Truncated("varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(SzError::Corrupt("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u32` at `*pos`.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = pos.checked_add(4).ok_or(SzError::Truncated("u32"))?;
    let bytes = buf.get(*pos..end).ok_or(SzError::Truncated("u32"))?;
    *pos = end;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u64` at `*pos`.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos.checked_add(8).ok_or(SzError::Truncated("u64"))?;
    let bytes = buf.get(*pos..end).ok_or(SzError::Truncated("u64"))?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

/// Append a little-endian `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `f64` at `*pos`.
pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos.checked_add(8).ok_or(SzError::Truncated("f64"))?;
    let bytes = buf.get(*pos..end).ok_or(SzError::Truncated("f64"))?;
    *pos = end;
    Ok(f64::from_le_bytes(bytes.try_into().unwrap()))
}

/// MSB-first bit writer over a growable byte vector.
///
/// Bits accumulate in a 64-bit word and flush to the byte vector a
/// whole byte at a time, so a multi-bit code costs a couple of shifts
/// rather than a per-bit loop. The backing buffer can be recycled
/// across streams via [`BitWriter::with_buffer`].
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bit accumulator; only the low `nbits` bits are meaningful.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer reusing `buf` (cleared first) as backing storage, so
    /// per-chunk callers can recycle the allocation between streams.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            bytes: buf,
            acc: 0,
            nbits: 0,
        }
    }

    /// Write the low `len` bits of `code`, MSB first. `len <= 64`.
    pub fn write_bits(&mut self, code: u64, len: u8) {
        debug_assert!(len <= 64);
        if len > 32 {
            self.write_bits(code >> 32, len - 32);
            self.write_bits(code & 0xFFFF_FFFF, 32);
            return;
        }
        if len == 0 {
            return;
        }
        // nbits < 8 between calls, so nbits + len <= 39 fits in acc.
        self.acc = (self.acc << len) | (code & ((1u64 << len) - 1));
        self.nbits += u32::from(len);
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.bytes.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Flush the final partial byte (zero padded) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push((self.acc << (8 - self.nbits)) as u8);
        }
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    /// New reader positioned at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            bit: 0,
        }
    }

    /// Read a single bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u8> {
        let byte = *self.bytes.get(self.pos)?;
        let bit = (byte >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        Some(bit)
    }

    /// Read `len` bits MSB-first into a `u64`.
    pub fn read_bits(&mut self, len: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..len {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let vals = [0u64, 1, 127, 128, 300, 65535, 1 << 32, u64::MAX];
        let mut buf = Vec::new();
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_truncated() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert!(matches!(
            get_varint(&buf, &mut pos),
            Err(SzError::Truncated(_))
        ));
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdeadbeef);
        put_u64(&mut buf, 0x0123456789abcdef);
        put_f64(&mut buf, -1.25e300);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xdeadbeef);
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), 0x0123456789abcdef);
        assert_eq!(get_f64(&buf, &mut pos).unwrap(), -1.25e300);
    }

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xffff, 16);
        w.write_bits(0, 1);
        w.write_bits(0b1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xffff);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn bit_writer_wide_codes_and_buffer_reuse() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);

        // A writer recycling that buffer produces the same stream as a
        // fresh one.
        let mut w2 = BitWriter::with_buffer(bytes);
        w2.write_bits(0b1010101, 7);
        let mut w3 = BitWriter::new();
        w3.write_bits(0b1010101, 7);
        assert_eq!(w2.finish(), w3.finish());
    }

    #[test]
    fn bit_reader_eof() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert!(r.read_bit().is_none());
    }
}
