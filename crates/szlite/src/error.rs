//! Error type shared by all szlite operations.

use std::fmt;

/// Errors produced while compressing or decompressing a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzError {
    /// The input byte stream does not start with the szlite magic number.
    BadMagic,
    /// The stream version is newer than this library understands.
    UnsupportedVersion(u8),
    /// The stream ended before a complete section could be read.
    Truncated(&'static str),
    /// A field in the stream holds a value that is out of range
    /// (e.g. a dimension of zero, a corrupt Huffman table).
    Corrupt(&'static str),
    /// The supplied dimensions do not match the data length.
    DimMismatch { expected: usize, actual: usize },
    /// The error bound is not positive / finite.
    InvalidErrorBound,
    /// Empty input data.
    EmptyInput,
}

impl fmt::Display for SzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SzError::BadMagic => write!(f, "not an szlite stream (bad magic)"),
            SzError::UnsupportedVersion(v) => write!(f, "unsupported stream version {v}"),
            SzError::Truncated(sec) => write!(f, "truncated stream while reading {sec}"),
            SzError::Corrupt(sec) => write!(f, "corrupt stream section: {sec}"),
            SzError::DimMismatch { expected, actual } => {
                write!(f, "dimension product {expected} != data length {actual}")
            }
            SzError::InvalidErrorBound => write!(f, "error bound must be positive and finite"),
            SzError::EmptyInput => write!(f, "input data is empty"),
        }
    }
}

impl std::error::Error for SzError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SzError>;
