//! Block-sampled quantization: the cheap pre-pass behind the ratio
//! prediction model (Jin et al. \[25\]).
//!
//! Instead of compressing the full partition, we quantize a small
//! fraction of it — whole blocks, to preserve spatial locality — and
//! collect the quantization-code histogram. Prediction uses the
//! *original* neighbor values (not reconstructions), which differs
//! from real compression by at most `eb` per neighbor; empirically the
//! histogram is near-identical, which is what makes the <10 % overhead
//! prediction of \[25\] possible.

use crate::config::{Config, Dims};
use crate::element::Element;
use crate::error::{Result, SzError};
use crate::predictor::{Lorenzo, Strides};
use crate::quantizer::Quantizer;

/// Histogram of quantization codes over a sampled subset.
#[derive(Debug, Clone)]
pub struct SampleCodes {
    /// Count per symbol (index = code; code 0 = unpredictable).
    pub histogram: Vec<u64>,
    /// Number of points sampled.
    pub n_sampled: usize,
    /// Total points in the partition.
    pub n_total: usize,
    /// Unpredictable points among the sample.
    pub n_unpredictable: usize,
    /// Number of runs of equal consecutive codes in block scan order
    /// (used to estimate the lossless-stage gain, per Jin et al. \[25\]'s
    /// run-length analysis).
    pub n_runs: usize,
    /// Resolved absolute error bound.
    pub eb: f64,
    /// Codebook size.
    pub alphabet: usize,
}

impl SampleCodes {
    /// Fraction of the partition that was sampled.
    pub fn sample_fraction(&self) -> f64 {
        self.n_sampled as f64 / self.n_total as f64
    }

    /// Shannon entropy of the sampled code distribution, bits/point.
    pub fn entropy_bits(&self) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        self.histogram
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / t;
                -p * p.log2()
            })
            .sum()
    }

    /// Number of distinct codes observed.
    pub fn distinct_codes(&self) -> usize {
        self.histogram.iter().filter(|&&c| c > 0).count()
    }

    /// Fraction of sampled points that fell outside the codebook.
    pub fn unpredictable_fraction(&self) -> f64 {
        if self.n_sampled == 0 {
            0.0
        } else {
            self.n_unpredictable as f64 / self.n_sampled as f64
        }
    }

    /// Mean run length of equal consecutive codes (≥ 1).
    pub fn mean_run_length(&self) -> f64 {
        if self.n_runs == 0 {
            1.0
        } else {
            self.n_sampled as f64 / self.n_runs as f64
        }
    }
}

/// Side length of sampled cubes / segments.
const BLOCK: usize = 8;

/// Minimum number of points a sample aims to cover, regardless of the
/// requested fraction.
///
/// On small partitions a plain fraction leaves the histogram built
/// from a handful of blocks; on noisy fields the rare large residuals
/// are then underrepresented and the model under-predicts compressed
/// size — which downstream turns into undersized reservations and
/// all-overflow writes. The effective fraction is therefore floored at
/// `MIN_SAMPLE_POINTS / n_total`: partitions at or below this size are
/// sampled in full (still cheap — that's the regime where full
/// sampling costs least), and the fraction only starts binding once
/// partitions are large enough for it to cover this many points.
pub const MIN_SAMPLE_POINTS: usize = 8192;

// Within each sampled block the quantizer recurrence is replayed
// exactly (prediction from *reconstructed* in-block neighbors, original
// values across block boundaries). This keeps the sampled histogram
// faithful at loose bounds, where reconstruction noise feeds back into
// the residual distribution and widens it — the effect that makes
// original-value-only sampling underestimate compressed size.

/// Quantize a sampled subset of `data` and return the code histogram.
///
/// `sample_fraction` in (0, 1]: approximate fraction of blocks visited.
/// A fraction of `1.0` visits every block (still cheaper than full
/// compression — no Huffman or lossless stage).
pub fn sample_quantization<T: Element>(
    data: &[T],
    dims: &Dims,
    cfg: &Config,
    sample_fraction: f64,
) -> Result<SampleCodes> {
    if data.is_empty() {
        return Err(SzError::EmptyInput);
    }
    if dims.len() != data.len() {
        return Err(SzError::DimMismatch {
            expected: dims.len(),
            actual: data.len(),
        });
    }
    let floor = (MIN_SAMPLE_POINTS as f64 / data.len() as f64).min(1.0);
    let frac = sample_fraction.clamp(1e-4, 1.0).max(floor);

    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    // Range scan over a stride to keep the pre-pass cheap on huge arrays.
    let range_stride = (data.len() / 65536).max(1);
    for i in (0..data.len()).step_by(range_stride) {
        let v = data[i].to_f64();
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() {
        min = 0.0;
        max = 0.0;
    }
    let eb = cfg.error_bound.resolve(min, max)?;
    let quant = Quantizer::new(eb, cfg.radius);
    let lorenzo = Lorenzo::new(dims);
    let st: Strides = *lorenzo.strides();

    // Widen data to f64 lazily via closure on index.
    let at = |i: usize| data[i].to_f64();

    let mut histogram = vec![0u64; quant.alphabet()];
    let mut n_sampled = 0usize;
    let mut n_unpred = 0usize;
    let mut n_runs = 0usize;
    let mut last_code: Option<u32> = None;

    // Visit every `step`-th block in a linearized block ordering.
    let bz = st.ext[0].div_ceil(BLOCK);
    let by = st.ext[1].div_ceil(BLOCK);
    let bx = st.ext[2].div_ceil(BLOCK);
    let n_blocks = bz * by * bx;
    let step = ((1.0 / frac).round() as usize).clamp(1, n_blocks);

    let mut block_idx = 0usize;
    for zb in 0..bz {
        for yb in 0..by {
            for xb in 0..bx {
                let visit = block_idx.is_multiple_of(step);
                block_idx += 1;
                if !visit {
                    continue;
                }
                let z0 = zb * BLOCK;
                let y0 = yb * BLOCK;
                let x0 = xb * BLOCK;
                let z1 = (z0 + BLOCK).min(st.ext[0]);
                let y1 = (y0 + BLOCK).min(st.ext[1]);
                let x1 = (x0 + BLOCK).min(st.ext[2]);
                // Block-local reconstruction buffer (row-major over the
                // block extents).
                let (lbz, lby, lbx) = (z1 - z0, y1 - y0, x1 - x0);
                let mut brecon = vec![0.0f64; lbz * lby * lbx];
                let bidx =
                    |z: usize, y: usize, x: usize| ((z - z0) * lby + (y - y0)) * lbx + (x - x0);
                for z in z0..z1 {
                    for y in y0..y1 {
                        for x in x0..x1 {
                            let idx = z * st.stride[0] + y * st.stride[1] + x;
                            let xv = at(idx);
                            // Lorenzo prediction: reconstructed values
                            // inside the block, originals outside.
                            let nb = |zz: usize, yy: usize, xx: usize| -> f64 {
                                if zz >= z0 && yy >= y0 && xx >= x0 {
                                    brecon[bidx(zz, yy, xx)]
                                } else {
                                    at(zz * st.stride[0] + yy * st.stride[1] + xx)
                                }
                            };
                            let mut pred = 0.0f64;
                            let gx = x > 0;
                            let gy = y > 0;
                            let gz = z > 0;
                            if gx {
                                pred += nb(z, y, x - 1);
                            }
                            if gy {
                                pred += nb(z, y - 1, x);
                            }
                            if gz {
                                pred += nb(z - 1, y, x);
                            }
                            if gx && gy {
                                pred -= nb(z, y - 1, x - 1);
                            }
                            if gx && gz {
                                pred -= nb(z - 1, y, x - 1);
                            }
                            if gy && gz {
                                pred -= nb(z - 1, y - 1, x);
                            }
                            if gx && gy && gz {
                                pred += nb(z - 1, y - 1, x - 1);
                            }
                            n_sampled += 1;
                            let code = match if xv.is_finite() {
                                quant.quantize(xv, pred)
                            } else {
                                None
                            } {
                                Some((code, recon)) => {
                                    brecon[bidx(z, y, x)] = recon;
                                    code
                                }
                                None => {
                                    brecon[bidx(z, y, x)] = if xv.is_finite() { xv } else { 0.0 };
                                    n_unpred += 1;
                                    0
                                }
                            };
                            histogram[code as usize] += 1;
                            if last_code != Some(code) {
                                n_runs += 1;
                                last_code = Some(code);
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(SampleCodes {
        histogram,
        n_sampled,
        n_total: data.len(),
        n_unpredictable: n_unpred,
        n_runs,
        eb,
        alphabet: quant.alphabet(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.01).collect()
    }

    #[test]
    fn full_sample_counts_everything() {
        let data = ramp(1000);
        let s = sample_quantization(&data, &Dims::d1(1000), &Config::abs(0.1), 1.0).unwrap();
        assert_eq!(s.n_sampled, 1000);
        assert_eq!(s.n_total, 1000);
        assert!((s.sample_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_sample_is_smaller() {
        let data = ramp(100_000);
        let s = sample_quantization(&data, &Dims::d1(100_000), &Config::abs(0.1), 0.05).unwrap();
        assert!(s.n_sampled < 12_000, "sampled {}", s.n_sampled);
        assert!(s.n_sampled > 1_000);
    }

    #[test]
    fn small_partitions_sample_in_full() {
        // Below MIN_SAMPLE_POINTS the requested fraction is overridden
        // and every block is visited — the histogram of a tiny noisy
        // partition must not come from a handful of blocks.
        let data = ramp(4096);
        let s = sample_quantization(&data, &Dims::d1(4096), &Config::abs(0.1), 0.05).unwrap();
        assert_eq!(s.n_sampled, 4096);
    }

    #[test]
    fn sample_floor_binds_above_min_points() {
        // Just above the floor the sample still covers at least about
        // MIN_SAMPLE_POINTS (block rounding allowed).
        let n = 4 * MIN_SAMPLE_POINTS;
        let data = ramp(n);
        let s = sample_quantization(&data, &Dims::d1(n), &Config::abs(0.1), 0.05).unwrap();
        assert!(
            s.n_sampled >= MIN_SAMPLE_POINTS - BLOCK,
            "sampled {} of {n}",
            s.n_sampled
        );
    }

    #[test]
    fn smooth_data_low_entropy() {
        let data = ramp(10_000);
        let s = sample_quantization(&data, &Dims::d1(10_000), &Config::abs(0.5), 1.0).unwrap();
        // A linear ramp is perfectly predicted: entropy near zero.
        assert!(s.entropy_bits() < 0.5, "entropy {}", s.entropy_bits());
        assert_eq!(s.n_unpredictable, 0);
    }

    #[test]
    fn random_data_high_entropy() {
        // Deterministic pseudo-random values spanning a wide range.
        let mut x = 0x9e3779b9u32;
        let data: Vec<f32> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x as f32 / u32::MAX as f32) * 1000.0
            })
            .collect();
        let s = sample_quantization(&data, &Dims::d1(10_000), &Config::abs(0.01), 1.0).unwrap();
        assert!(s.entropy_bits() > 5.0, "entropy {}", s.entropy_bits());
    }

    #[test]
    fn histogram_sums_to_sampled() {
        let data = ramp(5000);
        let s = sample_quantization(&data, &Dims::d2(50, 100), &Config::abs(0.05), 0.3).unwrap();
        let total: u64 = s.histogram.iter().sum();
        assert_eq!(total as usize, s.n_sampled);
    }
}
