//! Distortion and rate metrics for evaluating lossy compression.

/// Peak signal-to-noise ratio (dB) between an original and a
/// reconstructed array. Returns `f64::INFINITY` for identical arrays.
///
/// PSNR = 20·log10(range) − 10·log10(MSE), the metric the paper quotes
/// (e.g. 78.6 dB for the Nyx configuration).
pub fn psnr(orig: &[f32], recon: &[f32]) -> f64 {
    assert_eq!(orig.len(), recon.len(), "length mismatch");
    assert!(!orig.is_empty());
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut mse = 0.0f64;
    for (&a, &b) in orig.iter().zip(recon) {
        let a = f64::from(a);
        let b = f64::from(b);
        min = min.min(a);
        max = max.max(a);
        let d = a - b;
        mse += d * d;
    }
    mse /= orig.len() as f64;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    let range = max - min;
    20.0 * range.log10() - 10.0 * mse.log10()
}

/// Maximum point-wise absolute error.
pub fn max_abs_err(orig: &[f32], recon: &[f32]) -> f64 {
    assert_eq!(orig.len(), recon.len(), "length mismatch");
    orig.iter()
        .zip(recon)
        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
        .fold(0.0, f64::max)
}

/// Value range (max − min) of a slice, ignoring non-finite entries.
pub fn value_range(data: &[f32]) -> f64 {
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in data {
        let v = f64::from(v);
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if min.is_finite() {
        max - min
    } else {
        0.0
    }
}

/// Compression ratio given sizes in bytes.
pub fn ratio(raw_bytes: usize, compressed_bytes: usize) -> f64 {
    raw_bytes as f64 / compressed_bytes as f64
}

/// Bit-rate (bits/value) given compressed size and point count.
pub fn bit_rate(compressed_bytes: usize, n_points: usize) -> f64 {
    compressed_bytes as f64 * 8.0 / n_points as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_identical_is_infinite() {
        let a = vec![1.0f32, 2.0, 3.0];
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let orig: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let small: Vec<f32> = orig.iter().map(|v| v + 1e-4).collect();
        let large: Vec<f32> = orig.iter().map(|v| v + 1e-2).collect();
        assert!(psnr(&orig, &small) > psnr(&orig, &large));
    }

    #[test]
    fn max_err_basic() {
        let a = vec![0.0f32, 1.0];
        let b = vec![0.5f32, 1.25];
        assert!((max_abs_err(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn range_ignores_nan() {
        let a = vec![1.0f32, f32::NAN, 3.0];
        assert!((value_range(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rate_helpers() {
        assert!((ratio(32, 2) - 16.0).abs() < 1e-12);
        assert!((bit_rate(4, 16) - 2.0).abs() < 1e-12);
    }
}
