//! Error-bounded linear-scale quantization of prediction residuals.
//!
//! Residual `d = x − pred` maps to the integer code
//! `q = round(d / (2·eb))`; the reconstruction `pred + q·2·eb` is then
//! within `eb` of `x`. Codes are offset by `radius` so they are
//! non-negative; code `0` is reserved for *unpredictable* points whose
//! raw value is stored verbatim (either because `|q| ≥ radius` or
//! because rounding to the storage type would break the bound).

/// Linear quantizer with a bounded codebook.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    eb: f64,
    twice_eb: f64,
    radius: i64,
}

/// Symbol reserved for unpredictable (literal) points.
pub const UNPREDICTABLE: u32 = 0;

impl Quantizer {
    /// Create a quantizer for absolute bound `eb` (> 0) and codebook
    /// half-size `radius` (≥ 2).
    pub fn new(eb: f64, radius: u32) -> Self {
        debug_assert!(eb > 0.0 && eb.is_finite());
        Quantizer {
            eb,
            twice_eb: 2.0 * eb,
            radius: i64::from(radius.max(2)),
        }
    }

    /// Absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// Alphabet size (number of distinct symbols including the
    /// unpredictable escape).
    pub fn alphabet(&self) -> usize {
        (2 * self.radius) as usize
    }

    /// Quantize `x` against prediction `pred`. Returns the symbol and
    /// the double-precision reconstruction, or `None` when the point
    /// must be stored as a literal.
    #[inline]
    pub fn quantize(&self, x: f64, pred: f64) -> Option<(u32, f64)> {
        let d = x - pred;
        let q = (d / self.twice_eb).round();
        if !q.is_finite() || q.abs() >= self.radius as f64 {
            return None;
        }
        let q = q as i64;
        let recon = pred + q as f64 * self.twice_eb;
        if (x - recon).abs() > self.eb {
            // Rare: accumulated floating error pushed us out of bound.
            return None;
        }
        Some(((q + self.radius) as u32, recon))
    }

    /// Invert a symbol produced by [`Self::quantize`].
    #[inline]
    pub fn reconstruct(&self, code: u32, pred: f64) -> f64 {
        let q = i64::from(code) - self.radius;
        pred + q as f64 * self.twice_eb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_within_bound() {
        let q = Quantizer::new(0.5, 16);
        for (x, pred) in [(1.0, 0.0), (-3.7, 2.1), (0.0, 0.49), (7.2, 7.1)] {
            let (code, recon) = q.quantize(x, pred).unwrap();
            assert!((x - recon).abs() <= 0.5, "x={x} recon={recon}");
            assert_eq!(q.reconstruct(code, pred), recon);
            assert_ne!(code, UNPREDICTABLE);
        }
    }

    #[test]
    fn far_point_is_unpredictable() {
        let q = Quantizer::new(0.5, 16);
        // |q| = 100 / 1.0 = 100 >= 16
        assert!(q.quantize(100.0, 0.0).is_none());
    }

    #[test]
    fn nan_is_unpredictable() {
        let q = Quantizer::new(0.5, 16);
        assert!(q.quantize(f64::NAN, 0.0).is_none());
        assert!(q.quantize(f64::INFINITY, 0.0).is_none());
    }

    #[test]
    fn codes_are_in_alphabet() {
        let q = Quantizer::new(1e-3, 512);
        for i in -400..400 {
            let x = i as f64 * 1.9e-3;
            if let Some((code, _)) = q.quantize(x, 0.0) {
                assert!((code as usize) < q.alphabet());
                assert!(code > 0);
            }
        }
    }

    #[test]
    fn zero_residual_maps_to_radius() {
        let q = Quantizer::new(0.1, 8);
        let (code, recon) = q.quantize(5.0, 5.0).unwrap();
        assert_eq!(code, 8);
        assert_eq!(recon, 5.0);
    }
}
