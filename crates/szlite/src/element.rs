//! Storage-element abstraction: the compressor is generic over `f32`
//! and `f64` scalars.

use crate::error::{Result, SzError};

/// Stream-header type tag for `f32` elements.
pub const DTYPE_F32: u8 = 0;
/// Stream-header type tag for `f64` elements.
pub const DTYPE_F64: u8 = 1;

/// A floating-point storage element szlite can compress.
pub trait Element: Copy + PartialOrd + Send + Sync + 'static {
    /// Type tag stored in the stream header ([`DTYPE_F32`] or
    /// [`DTYPE_F64`]); containers embedding szlite streams match on
    /// these named tags rather than magic numbers.
    const DTYPE: u8;
    /// Size in bytes.
    const BYTES: usize;
    /// Size in bits (the "original bit-rate" `Bori` of the paper).
    const BITS: u32;

    /// Widen to `f64` for prediction/quantization arithmetic.
    fn to_f64(self) -> f64;
    /// Narrow from `f64` (rounding to nearest representable value).
    fn from_f64(v: f64) -> Self;
    /// Append the little-endian byte representation.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read a little-endian value, advancing `pos`.
    fn read_le(buf: &[u8], pos: &mut usize) -> Result<Self>;
}

impl Element for f32 {
    const DTYPE: u8 = DTYPE_F32;
    const BYTES: usize = 4;
    const BITS: u32 = 32;

    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let end = *pos + 4;
        let b = buf
            .get(*pos..end)
            .ok_or(SzError::Truncated("f32 literal"))?;
        *pos = end;
        Ok(f32::from_le_bytes(b.try_into().unwrap()))
    }
}

impl Element for f64 {
    const DTYPE: u8 = DTYPE_F64;
    const BYTES: usize = 8;
    const BITS: u32 = 64;

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let end = *pos + 8;
        let b = buf
            .get(*pos..end)
            .ok_or(SzError::Truncated("f64 literal"))?;
        *pos = end;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let mut buf = Vec::new();
        1.5f32.write_le(&mut buf);
        let mut pos = 0;
        assert_eq!(f32::read_le(&buf, &mut pos).unwrap(), 1.5);
        assert_eq!(pos, 4);
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = Vec::new();
        (-2.25e100f64).write_le(&mut buf);
        let mut pos = 0;
        assert_eq!(f64::read_le(&buf, &mut pos).unwrap(), -2.25e100);
    }

    #[test]
    fn truncated_literal() {
        let buf = vec![0u8; 3];
        let mut pos = 0;
        assert!(f32::read_le(&buf, &mut pos).is_err());
    }
}
