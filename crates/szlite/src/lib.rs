//! # szlite — prediction-based error-bounded lossy compression
//!
//! A from-scratch Rust implementation of the SZ3-style compression
//! pipeline used as the compressor substrate of the SC'22 paper
//! *"Accelerating Parallel Write via Deeply Integrating Predictive
//! Lossy Compression with HDF5"*:
//!
//! 1. **Lorenzo prediction** of each point from already-processed
//!    neighbors ([`predictor`]),
//! 2. **error-bounded linear quantization** of the residual with a
//!    bounded codebook ([`quantizer`]),
//! 3. **canonical Huffman coding** of the code stream ([`huffman`]),
//! 4. a trailing **LZSS lossless stage** ([`lossless`]).
//!
//! The bounded codebook (default radius 32768) caps Huffman tree size
//! and yields the bounded min/max compression throughput the paper's
//! prediction model (its Eq. 1) relies on; unpredictable points escape
//! to raw literals, which produces the throughput floor at tiny error
//! bounds.
//!
//! ## Guarantee
//!
//! For every finite input value `x` and its reconstruction `x̂`:
//! `|x − x̂| ≤ eb` (the resolved absolute bound). Enforced by
//! construction and re-checked against storage-type rounding; points
//! that would violate it are stored verbatim.
//!
//! ## Example
//!
//! ```
//! use szlite::{compress_f32, decompress_f32, Config, Dims};
//!
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let dims = Dims::d3(16, 16, 16);
//! let bytes = compress_f32(&data, &dims, &Config::abs(1e-3)).unwrap();
//! assert!(bytes.len() < 4096 * 4);
//! let (restored, rdims) = decompress_f32(&bytes).unwrap();
//! assert_eq!(rdims, dims);
//! for (a, b) in data.iter().zip(&restored) {
//!     assert!((a - b).abs() <= 1e-3);
//! }
//! ```

pub mod config;
pub mod element;
pub mod error;
pub mod huffman;
pub mod lossless;
pub mod predictor;
pub mod quantizer;
pub mod sampling;
pub mod stats;
pub mod stream;

mod compressor;
mod decompressor;

pub use compressor::{
    compress, compress_f32, compress_f64, compress_into, compress_reference, compress_with_stats,
    CompressStats, Scratch,
};
pub use config::{Config, Dims, ErrorBound};
pub use decompressor::{
    decompress, decompress_f32, decompress_f64, decompress_into, stream_info, DecompressScratch,
    StreamInfo,
};
pub use element::Element;
pub use error::{Result, SzError};
pub use sampling::{sample_quantization, SampleCodes, MIN_SAMPLE_POINTS};

#[cfg(test)]
mod tests {
    use super::*;

    fn wave3d(nz: usize, ny: usize, nx: usize) -> Vec<f32> {
        let mut v = Vec::with_capacity(nz * ny * nx);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    v.push(
                        ((x as f32) * 0.2).sin() * ((y as f32) * 0.13).cos() + 0.01 * (z as f32),
                    );
                }
            }
        }
        v
    }

    #[test]
    fn roundtrip_3d_within_bound() {
        let dims = Dims::d3(12, 10, 14);
        let data = wave3d(12, 10, 14);
        let eb = 1e-3;
        let bytes = compress_f32(&data, &dims, &Config::abs(eb)).unwrap();
        let (restored, rdims) = decompress_f32(&bytes).unwrap();
        assert_eq!(rdims, dims);
        assert!(stats::max_abs_err(&data, &restored) <= eb);
    }

    #[test]
    fn roundtrip_f64() {
        let dims = Dims::d2(32, 32);
        let data: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.03).sin() * 100.0).collect();
        let bytes = compress_f64(&data, &dims, &Config::abs(1e-6)).unwrap();
        let (restored, _) = decompress_f64(&bytes).unwrap();
        for (a, b) in data.iter().zip(&restored) {
            assert!((a - b).abs() <= 1e-6);
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let dims = Dims::d3(32, 32, 32);
        let data = wave3d(32, 32, 32);
        let (_, st) = compress_with_stats(&data, &dims, &Config::rel(1e-3)).unwrap();
        assert!(st.ratio() > 4.0, "ratio {}", st.ratio());
    }

    #[test]
    fn tighter_bound_lower_ratio() {
        let dims = Dims::d3(24, 24, 24);
        let data = wave3d(24, 24, 24);
        let (_, loose) = compress_with_stats(&data, &dims, &Config::rel(1e-2)).unwrap();
        let (_, tight) = compress_with_stats(&data, &dims, &Config::rel(1e-5)).unwrap();
        assert!(loose.ratio() > tight.ratio());
    }

    #[test]
    fn nan_values_survive_roundtrip() {
        let dims = Dims::d1(16);
        let mut data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        data[5] = f32::NAN;
        data[9] = f32::INFINITY;
        let bytes = compress_f32(&data, &dims, &Config::abs(0.1)).unwrap();
        let (restored, _) = decompress_f32(&bytes).unwrap();
        assert!(restored[5].is_nan());
        assert_eq!(restored[9], f32::INFINITY);
        assert!((restored[0] - 0.0).abs() <= 0.1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let dims = Dims::d1(8);
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let bytes = compress_f32(&data, &dims, &Config::abs(0.1)).unwrap();
        assert!(decompress_f64(&bytes).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(compress_f32(&[], &Dims::d1(1), &Config::abs(0.1)).is_err());
    }

    #[test]
    fn dim_mismatch_rejected() {
        let data = vec![0.0f32; 10];
        assert!(matches!(
            compress_f32(&data, &Dims::d1(11), &Config::abs(0.1)),
            Err(SzError::DimMismatch { .. })
        ));
    }

    #[test]
    fn stream_info_reports_header() {
        let dims = Dims::d3(4, 5, 6);
        let data = wave3d(4, 5, 6);
        let bytes = compress_f32(&data, &dims, &Config::abs(0.25)).unwrap();
        let info = stream_info(&bytes).unwrap();
        assert_eq!(info.dims, dims);
        assert_eq!(info.dtype, 0);
        assert!((info.eb - 0.25).abs() < 1e-12);
        assert!(info.lossless);
    }

    #[test]
    fn truncated_stream_rejected() {
        let dims = Dims::d1(256);
        let data: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
        let bytes = compress_f32(&data, &dims, &Config::abs(1e-3)).unwrap();
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decompress_f32(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(decompress_f32(&[0u8; 64]).is_err());
        assert!(matches!(
            decompress_f32(b"not a stream at all"),
            Err(SzError::BadMagic)
        ));
    }

    #[test]
    fn constant_data_compresses_extremely() {
        let dims = Dims::d3(16, 16, 16);
        let data = vec![42.0f32; 4096];
        let (bytes, st) = compress_with_stats(&data, &dims, &Config::rel(1e-3)).unwrap();
        assert!(st.ratio() > 50.0, "ratio {}", st.ratio());
        let (restored, _) = decompress_f32(&bytes).unwrap();
        assert!(restored.iter().all(|&v| (v - 42.0).abs() < 1e-2));
    }

    #[test]
    fn scratch_reuse_is_byte_identical() {
        // One Scratch reused across runs of different shapes, bounds
        // and dirtiness levels must reproduce the fresh-buffer stream
        // exactly — the pipeline's determinism guarantee rests on this.
        let mut scratch = Scratch::new();
        let cases: Vec<(Vec<f32>, Dims, Config)> = vec![
            (wave3d(12, 10, 14), Dims::d3(12, 10, 14), Config::abs(1e-3)),
            (wave3d(4, 5, 6), Dims::d3(4, 5, 6), Config::rel(1e-2)),
            (
                (0..777).map(|i| (i as f32).sin() * 50.0).collect(),
                Dims::d1(777),
                Config::abs(1e-4).with_lossless(false),
            ),
            (vec![3.25; 64], Dims::d2(8, 8), Config::rel(1e-3)),
        ];
        for (data, dims, cfg) in &cases {
            let (fresh, fresh_stats) = compress_with_stats(data, dims, cfg).unwrap();
            let mut out = Vec::new();
            let stats = compress_into(data, dims, cfg, &mut scratch, &mut out).unwrap();
            assert_eq!(out, fresh);
            assert_eq!(stats, fresh_stats);
        }
    }

    #[test]
    fn no_lossless_mode_roundtrip() {
        let dims = Dims::d1(512);
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.1).cos()).collect();
        let cfg = Config::abs(1e-3).with_lossless(false);
        let bytes = compress_f32(&data, &dims, &cfg).unwrap();
        let info = stream_info(&bytes).unwrap();
        assert!(!info.lossless);
        let (restored, _) = decompress_f32(&bytes).unwrap();
        assert!(stats::max_abs_err(&data, &restored) <= 1e-3);
    }
}
