//! Decompression: parse header, undo LZSS, Huffman-decode the symbol
//! stream, and re-run the Lorenzo/quantizer recurrence.
//!
//! The entropy stage is table-driven end to end: the symbol stream is
//! batch-decoded by [`HuffmanDecoder::decode_into`], whose LUT fast
//! path resolves short codes from a single peek at the word-buffered
//! [`BitReader`]; the LZSS stage expands through the chunked copy
//! loops in [`lossless::decompress_into`].
//!
//! The decode path mirrors the compressor's scratch discipline: a
//! [`DecompressScratch`] keeps the Huffman table (LUT included), the
//! code/literal staging buffers, and the reconstruction grid alive
//! across calls, so a per-chunk decode loop ([`decompress_into`])
//! allocates nothing at steady state. [`decompress`] and the typed
//! wrappers remain the allocating convenience entry points.

use crate::compressor::{MAGIC, VERSION};
use crate::config::Dims;
use crate::element::Element;
use crate::error::{Result, SzError};
use crate::huffman::HuffmanDecoder;
use crate::lossless;
use crate::predictor::Lorenzo;
use crate::quantizer::{Quantizer, UNPREDICTABLE};
use crate::stream::{get_f64, get_u32, get_varint, BitReader};

/// Upper bound on the points a stream header may declare (2^48 points
/// ≈ 1 PB of f32 data); anything larger is treated as corruption
/// rather than allowed to drive gigantic allocations.
const MAX_POINTS: u64 = 1 << 48;

/// Parsed stream header, available without decompressing the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Grid shape.
    pub dims: Dims,
    /// Resolved absolute error bound the stream was produced with.
    pub eb: f64,
    /// Quantizer radius.
    pub radius: u32,
    /// Whether the LZSS stage was applied.
    pub lossless: bool,
    /// Offset of the payload within the stream.
    pub payload_offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// Parse the header of an szlite stream.
///
/// Never panics: truncation at any header boundary yields
/// [`SzError::Truncated`] and implausible field values (overflowing
/// dimension products, absurd payload lengths) yield
/// [`SzError::Corrupt`].
pub fn stream_info(bytes: &[u8]) -> Result<StreamInfo> {
    let mut pos = 0usize;
    if get_u32(bytes, &mut pos)? != MAGIC {
        return Err(SzError::BadMagic);
    }
    let version = *bytes.get(pos).ok_or(SzError::Truncated("version"))?;
    pos += 1;
    if version != VERSION {
        return Err(SzError::UnsupportedVersion(version));
    }
    let dtype = *bytes.get(pos).ok_or(SzError::Truncated("dtype"))?;
    pos += 1;
    let ndims = *bytes.get(pos).ok_or(SzError::Truncated("ndims"))? as usize;
    pos += 1;
    if ndims == 0 || ndims > 3 {
        return Err(SzError::Corrupt("ndims"));
    }
    let mut ext = Vec::with_capacity(ndims);
    let mut points = 1u64;
    for _ in 0..ndims {
        let d = get_varint(bytes, &mut pos)?;
        points = points
            .checked_mul(d)
            .filter(|&p| p <= MAX_POINTS)
            .ok_or(SzError::Corrupt("dims overflow"))?;
        ext.push(d as usize);
    }
    let dims = Dims::from_slice(&ext)?;
    let eb = get_f64(bytes, &mut pos)?;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::Corrupt("header eb"));
    }
    let radius = get_u32(bytes, &mut pos)?;
    if radius < 2 {
        return Err(SzError::Corrupt("header radius"));
    }
    let mode = *bytes.get(pos).ok_or(SzError::Truncated("lossless mode"))?;
    pos += 1;
    if mode > 1 {
        return Err(SzError::Corrupt("lossless mode"));
    }
    let payload_len = get_varint(bytes, &mut pos)? as usize;
    let payload_end = pos
        .checked_add(payload_len)
        .ok_or(SzError::Corrupt("payload length"))?;
    if bytes.len() < payload_end {
        return Err(SzError::Truncated("payload"));
    }
    Ok(StreamInfo {
        dtype,
        dims,
        eb,
        radius,
        lossless: mode == 1,
        payload_offset: pos,
        payload_len,
    })
}

/// Reusable decompressor workspace: the LZSS output buffer, the
/// Huffman table (with its LUT and sparse rebuild scratch), decoded
/// quantization codes, and the reconstruction grid.
///
/// Mirrors the compressor's [`Scratch`](crate::Scratch): the per-chunk
/// hot path allocates all of this afresh when going through
/// [`decompress`]; a worker that decodes many chunks keeps one
/// `DecompressScratch` and calls [`decompress_into`] so the buffers are
/// recycled. The scratch never changes the decoded values — output is
/// value-identical either way.
#[derive(Debug, Default)]
pub struct DecompressScratch {
    payload: Vec<u8>,
    huffman: HuffmanDecoder,
    codes: Vec<u32>,
    recon: Vec<f64>,
    zero_row: Vec<f64>,
}

impl DecompressScratch {
    /// Empty workspace; buffers grow to steady-state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decompress a stream into elements of type `T`.
///
/// Fails with [`SzError::Corrupt`] if the stream's element type does
/// not match `T`.
pub fn decompress<T: Element>(bytes: &[u8]) -> Result<(Vec<T>, Dims)> {
    let mut scratch = DecompressScratch::new();
    let mut out = Vec::new();
    let dims = decompress_into(bytes, &mut scratch, &mut out)?;
    Ok((out, dims))
}

/// Decompress a stream into `out` (cleared first), reusing `scratch`
/// for all transient decoder state. Returns the grid shape.
pub fn decompress_into<T: Element>(
    bytes: &[u8],
    scratch: &mut DecompressScratch,
    out: &mut Vec<T>,
) -> Result<Dims> {
    let _span = obs::span_arg("sz.decompress", bytes.len() as u64);
    out.clear();
    let info = stream_info(bytes)?;
    if info.dtype != T::DTYPE {
        return Err(SzError::Corrupt("element type mismatch"));
    }
    let DecompressScratch {
        payload,
        huffman,
        codes,
        recon,
        zero_row,
    } = scratch;
    let body = &bytes[info.payload_offset..info.payload_offset + info.payload_len];
    let payload_ref: &[u8] = if info.lossless {
        lossless::decompress_into(body, payload)?;
        payload
    } else {
        body
    };

    let mut pos = 0usize;
    huffman.reinit(payload_ref, &mut pos)?;
    let n_codes = get_varint(payload_ref, &mut pos)? as usize;
    if n_codes != info.dims.len() {
        return Err(SzError::Corrupt("code count vs dims"));
    }
    let code_len = get_varint(payload_ref, &mut pos)? as usize;
    let code_end = pos
        .checked_add(code_len)
        .ok_or(SzError::Corrupt("code length"))?;
    let code_bytes = payload_ref
        .get(pos..code_end)
        .ok_or(SzError::Truncated("code bytes"))?;
    // Every symbol costs at least one bit, so a well-formed stream
    // never declares more codes than the bit budget can hold; checking
    // here keeps a corrupt count from driving a gigantic allocation.
    if n_codes
        > code_len
            .checked_mul(8)
            .ok_or(SzError::Corrupt("code length"))?
    {
        return Err(SzError::Corrupt("code count vs code bytes"));
    }
    let mut br = BitReader::new(code_bytes);
    huffman.decode_into(&mut br, n_codes, codes)?;
    pos = code_end;
    let n_literals = get_varint(payload_ref, &mut pos)? as usize;
    let lit_bytes = payload_ref
        .get(pos..)
        .ok_or(SzError::Truncated("literals"))?;
    let lit_needed = n_literals
        .checked_mul(T::BYTES)
        .ok_or(SzError::Corrupt("literal count"))?;
    if lit_bytes.len() < lit_needed {
        return Err(SzError::Truncated("literal bytes"));
    }

    let quant = Quantizer::new(info.eb, info.radius);
    let lorenzo = Lorenzo::new(&info.dims);
    let st = *lorenzo.strides();

    let n = info.dims.len();
    out.reserve(n);
    recon.clear();
    recon.resize(n, 0.0);
    let (nz, ny, nx) = (st.ext[0], st.ext[1], st.ext[2]);
    let plane = ny * nx;
    zero_row.clear();
    zero_row.resize(nx, 0.0);
    let mut lit_pos = 0usize;
    // Row-kernel replay of the compressor's recurrence: absent neighbor
    // rows read from a zero row, `x-1` neighbors carried in registers.
    // Values are identical to the per-point branchy replay — same
    // argument as the compressor's fused kernel.
    for z in 0..nz {
        for y in 0..ny {
            let base = z * plane + y * nx;
            let (head, tail) = recon.split_at_mut(base);
            let cur = &mut tail[..nx];
            let py: &[f64] = if y > 0 {
                &head[base - nx..base]
            } else {
                zero_row
            };
            let pz: &[f64] = if z > 0 {
                &head[base - plane..base - plane + nx]
            } else {
                zero_row
            };
            let pzy: &[f64] = if z > 0 && y > 0 {
                &head[base - plane - nx..base - plane]
            } else {
                zero_row
            };
            decode_row(
                &codes[base..base + nx],
                cur,
                py,
                pz,
                pzy,
                &quant,
                lit_bytes,
                &mut lit_pos,
                out,
            )?;
        }
    }
    Ok(info.dims)
}

/// Decode one grid row: invert the quantizer against the row-kernel
/// Lorenzo prediction, pulling literals for escape codes.
#[allow(clippy::too_many_arguments)]
#[inline]
fn decode_row<T: Element>(
    codes: &[u32],
    cur: &mut [f64],
    py: &[f64],
    pz: &[f64],
    pzy: &[f64],
    quant: &Quantizer,
    lit_bytes: &[u8],
    lit_pos: &mut usize,
    out: &mut Vec<T>,
) -> Result<()> {
    let nx = codes.len();
    debug_assert!(cur.len() == nx && py.len() >= nx && pz.len() >= nx && pzy.len() >= nx);
    let alphabet = quant.alphabet();
    let mut cx = 0.0f64;
    let mut pyx = 0.0f64;
    let mut pzx = 0.0f64;
    let mut pzyx = 0.0f64;
    // Escape-free rows — the overwhelmingly common case — take a
    // branch-light kernel: validate the whole row up front, then
    // reconstruct with no per-point literal or alphabet branches. The
    // prediction expression is textually identical to the general
    // loop's, so the replayed values (and thus the output) are
    // bit-identical; on a validation failure the general loop below
    // reports the same typed error.
    if codes
        .iter()
        .all(|&c| c != UNPREDICTABLE && (c as usize) < alphabet)
    {
        let rows = cur
            .iter_mut()
            .zip(codes)
            .zip(py[..nx].iter().zip(&pz[..nx]).zip(&pzy[..nx]));
        for ((c, &code), ((&ry, &rz), &rzy)) in rows {
            let pred = ((((((0.0 + cx) + ry) + rz) - pyx) - pzx) - rzy) + pzyx;
            let r64 = quant.reconstruct(code, pred);
            let v = T::from_f64(r64);
            let rv = v.to_f64();
            *c = rv;
            out.push(v);
            cx = rv;
            pyx = ry;
            pzx = rz;
            pzyx = rzy;
        }
        return Ok(());
    }
    for x in 0..nx {
        let ry = py[x];
        let rz = pz[x];
        let rzy = pzy[x];
        let pred = ((((((0.0 + cx) + ry) + rz) - pyx) - pzx) - rzy) + pzyx;
        let code = codes[x];
        let rv: f64;
        let value: T;
        if code == UNPREDICTABLE {
            let v = T::read_le(lit_bytes, lit_pos)?;
            rv = if v.to_f64().is_finite() {
                v.to_f64()
            } else {
                0.0
            };
            value = v;
        } else {
            if code as usize >= alphabet {
                return Err(SzError::Corrupt("symbol out of alphabet"));
            }
            let r64 = quant.reconstruct(code, pred);
            let v = T::from_f64(r64);
            rv = v.to_f64();
            value = v;
        }
        cur[x] = rv;
        out.push(value);
        cx = rv;
        pyx = ry;
        pzx = rz;
        pzyx = rzy;
    }
    Ok(())
}

/// Convenience wrapper: decompress an `f32` stream.
pub fn decompress_f32(bytes: &[u8]) -> Result<(Vec<f32>, Dims)> {
    decompress(bytes)
}

/// Convenience wrapper: decompress an `f64` stream.
pub fn decompress_f64(bytes: &[u8]) -> Result<(Vec<f64>, Dims)> {
    decompress(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::{compress_f32, compress_f64};
    use crate::config::Config;
    use crate::stream::put_varint;

    fn sample_stream(lossless: bool) -> (Vec<f32>, Dims, Vec<u8>) {
        let dims = Dims::d3(6, 5, 4);
        let data: Vec<f32> = (0..120).map(|i| (i as f32 * 0.13).sin()).collect();
        let cfg = Config::abs(1e-3).with_lossless(lossless);
        let bytes = compress_f32(&data, &dims, &cfg).unwrap();
        (data, dims, bytes)
    }

    fn sample_stream_f64(lossless: bool) -> (Vec<f64>, Dims, Vec<u8>) {
        let dims = Dims::d3(6, 5, 4);
        let data: Vec<f64> = (0..120).map(|i| (i as f64 * 0.13).sin()).collect();
        let cfg = Config::abs(1e-9).with_lossless(lossless);
        let bytes = compress_f64(&data, &dims, &cfg).unwrap();
        (data, dims, bytes)
    }

    #[test]
    fn truncation_at_every_header_boundary_is_typed() {
        // Cutting the stream anywhere inside the header must surface a
        // typed error from both the header parser and the decoder —
        // never a panic. The header spans magic(4) + version(1) +
        // dtype(1) + ndims(1) + 3 dim varints + eb(8) + radius(4) +
        // mode(1) + payload-length varint.
        let (_, _, bytes) = sample_stream(true);
        let info = stream_info(&bytes).unwrap();
        for cut in 0..info.payload_offset {
            let err = stream_info(&bytes[..cut]);
            assert!(err.is_err(), "header cut at {cut} accepted");
            let err = decompress_f32(&bytes[..cut]);
            assert!(err.is_err(), "decode of header cut at {cut} accepted");
        }
        // Inside the payload: stream_info and decompress both reject.
        for cut in info.payload_offset..bytes.len() {
            assert!(matches!(
                stream_info(&bytes[..cut]),
                Err(SzError::Truncated(_))
            ));
            assert!(decompress_f32(&bytes[..cut]).is_err(), "payload cut {cut}");
        }
    }

    #[test]
    fn f64_truncation_at_every_header_boundary_is_typed() {
        // Mirror of the f32 test on a dtype=1 stream: the wider literal
        // width (8-byte escapes) and f64 header eb must not open any
        // panic path at header or payload cuts.
        let (_, _, bytes) = sample_stream_f64(true);
        let info = stream_info(&bytes).unwrap();
        assert_eq!(info.dtype, 1);
        for cut in 0..info.payload_offset {
            assert!(stream_info(&bytes[..cut]).is_err(), "header cut at {cut}");
            assert!(
                decompress_f64(&bytes[..cut]).is_err(),
                "decode of header cut at {cut} accepted"
            );
        }
        for cut in info.payload_offset..bytes.len() {
            assert!(matches!(
                stream_info(&bytes[..cut]),
                Err(SzError::Truncated(_))
            ));
            assert!(decompress_f64(&bytes[..cut]).is_err(), "payload cut {cut}");
        }
    }

    #[test]
    fn f64_corrupt_payload_never_panics() {
        // Mirror of `corrupt_payload_counts_rejected` for dtype=1
        // without the lossless stage, so flips land directly in the
        // Huffman payload and literal stream.
        let (_, _, bytes) = sample_stream_f64(false);
        let info = stream_info(&bytes).unwrap();
        for i in info.payload_offset..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = decompress_f64(&b); // must not panic
        }
    }

    #[test]
    fn corrupt_header_fields_are_typed() {
        let (_, _, bytes) = sample_stream(true);

        // Version byte.
        let mut b = bytes.clone();
        b[4] = 99;
        assert!(matches!(
            stream_info(&b),
            Err(SzError::UnsupportedVersion(99))
        ));

        // ndims out of range.
        let mut b = bytes.clone();
        b[6] = 0;
        assert!(matches!(stream_info(&b), Err(SzError::Corrupt("ndims"))));
        b[6] = 4;
        assert!(matches!(stream_info(&b), Err(SzError::Corrupt("ndims"))));

        // Overflowing dimension product (three maximal varints).
        let mut b = Vec::new();
        b.extend_from_slice(&bytes[..7]); // magic+version+dtype+ndims(=3)
        for _ in 0..3 {
            put_varint(&mut b, u64::MAX);
        }
        b.extend_from_slice(&[0u8; 16]); // eb + radius + mode filler
        assert!(matches!(
            stream_info(&b),
            Err(SzError::Corrupt("dims overflow"))
        ));
    }

    #[test]
    fn absurd_payload_length_rejected_without_allocation() {
        // Rewrite the payload-length varint to a huge value; the parser
        // must reject it (truncated) instead of wrapping or allocating.
        let (_, _, bytes) = sample_stream(false);
        let info = stream_info(&bytes).unwrap();
        // Rebuild the header with a forged payload-length varint (the
        // last header field before payload_offset).
        let mode_pos = info.payload_offset - {
            let mut n = 0;
            let mut v = info.payload_len as u64;
            loop {
                n += 1;
                v >>= 7;
                if v == 0 {
                    break;
                }
            }
            n
        };
        let mut forged = bytes[..mode_pos].to_vec();
        put_varint(&mut forged, u64::MAX);
        forged.extend_from_slice(&bytes[info.payload_offset..]);
        assert!(stream_info(&forged).is_err());
        assert!(decompress_f32(&forged).is_err());
    }

    #[test]
    fn corrupt_payload_counts_rejected() {
        // Flip bits across the (uncompressed-mode) payload; decode must
        // error or produce output, never panic.
        let (_, _, bytes) = sample_stream(false);
        let info = stream_info(&bytes).unwrap();
        for i in info.payload_offset..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = decompress_f32(&b); // must not panic
        }
    }

    #[test]
    fn scratch_reuse_is_value_identical() {
        // One DecompressScratch reused across streams of different
        // shapes, bounds, types and lossless modes must reproduce the
        // fresh-scratch output exactly.
        let mut scratch = DecompressScratch::new();
        let mut out32: Vec<f32> = vec![1.0; 7]; // dirty on purpose
        let cases: Vec<(Vec<f32>, Dims, Config)> = vec![
            (
                (0..120).map(|i| (i as f32 * 0.13).sin()).collect(),
                Dims::d3(6, 5, 4),
                Config::abs(1e-3),
            ),
            (
                (0..64).map(|i| i as f32).collect(),
                Dims::d2(8, 8),
                Config::rel(1e-2),
            ),
            (
                (0..777).map(|i| (i as f32).cos() * 40.0).collect(),
                Dims::d1(777),
                Config::abs(1e-4).with_lossless(false),
            ),
            (vec![3.25; 27], Dims::d3(3, 3, 3), Config::rel(1e-3)),
        ];
        for (data, dims, cfg) in &cases {
            let bytes = compress_f32(data, dims, cfg).unwrap();
            let (fresh, fresh_dims) = decompress_f32(&bytes).unwrap();
            let rdims = decompress_into(&bytes, &mut scratch, &mut out32).unwrap();
            assert_eq!(rdims, fresh_dims);
            assert_eq!(out32, fresh);
        }
    }
}
