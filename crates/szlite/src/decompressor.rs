//! Decompression: parse header, undo LZSS, Huffman-decode the symbol
//! stream, and re-run the Lorenzo/quantizer recurrence.

use crate::compressor::{MAGIC, VERSION};
use crate::config::Dims;
use crate::element::Element;
use crate::error::{Result, SzError};
use crate::huffman::HuffmanDecoder;
use crate::lossless;
use crate::predictor::Lorenzo;
use crate::quantizer::{Quantizer, UNPREDICTABLE};
use crate::stream::{get_f64, get_u32, get_varint, BitReader};

/// Parsed stream header, available without decompressing the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// Element type tag (0 = f32, 1 = f64).
    pub dtype: u8,
    /// Grid shape.
    pub dims: Dims,
    /// Resolved absolute error bound the stream was produced with.
    pub eb: f64,
    /// Quantizer radius.
    pub radius: u32,
    /// Whether the LZSS stage was applied.
    pub lossless: bool,
    /// Offset of the payload within the stream.
    pub payload_offset: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// Parse the header of an szlite stream.
pub fn stream_info(bytes: &[u8]) -> Result<StreamInfo> {
    let mut pos = 0usize;
    if get_u32(bytes, &mut pos)? != MAGIC {
        return Err(SzError::BadMagic);
    }
    let version = *bytes.get(pos).ok_or(SzError::Truncated("version"))?;
    pos += 1;
    if version != VERSION {
        return Err(SzError::UnsupportedVersion(version));
    }
    let dtype = *bytes.get(pos).ok_or(SzError::Truncated("dtype"))?;
    pos += 1;
    let ndims = *bytes.get(pos).ok_or(SzError::Truncated("ndims"))? as usize;
    pos += 1;
    if ndims == 0 || ndims > 3 {
        return Err(SzError::Corrupt("ndims"));
    }
    let mut ext = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = get_varint(bytes, &mut pos)? as usize;
        ext.push(d);
    }
    let dims = Dims::from_slice(&ext)?;
    let eb = get_f64(bytes, &mut pos)?;
    if !(eb.is_finite() && eb > 0.0) {
        return Err(SzError::Corrupt("header eb"));
    }
    let radius = get_u32(bytes, &mut pos)?;
    if radius < 2 {
        return Err(SzError::Corrupt("header radius"));
    }
    let mode = *bytes.get(pos).ok_or(SzError::Truncated("lossless mode"))?;
    pos += 1;
    if mode > 1 {
        return Err(SzError::Corrupt("lossless mode"));
    }
    let payload_len = get_varint(bytes, &mut pos)? as usize;
    if bytes.len() < pos + payload_len {
        return Err(SzError::Truncated("payload"));
    }
    Ok(StreamInfo {
        dtype,
        dims,
        eb,
        radius,
        lossless: mode == 1,
        payload_offset: pos,
        payload_len,
    })
}

/// Decompress a stream into elements of type `T`.
///
/// Fails with [`SzError::Corrupt`] if the stream's element type does
/// not match `T`.
pub fn decompress<T: Element>(bytes: &[u8]) -> Result<(Vec<T>, Dims)> {
    let info = stream_info(bytes)?;
    if info.dtype != T::DTYPE {
        return Err(SzError::Corrupt("element type mismatch"));
    }
    let body = &bytes[info.payload_offset..info.payload_offset + info.payload_len];
    let payload;
    let payload_ref: &[u8] = if info.lossless {
        payload = lossless::decompress(body)?;
        &payload
    } else {
        body
    };

    let mut pos = 0usize;
    let dec = HuffmanDecoder::deserialize(payload_ref, &mut pos)?;
    let n_codes = get_varint(payload_ref, &mut pos)? as usize;
    if n_codes != info.dims.len() {
        return Err(SzError::Corrupt("code count vs dims"));
    }
    let code_len = get_varint(payload_ref, &mut pos)? as usize;
    let code_end = pos
        .checked_add(code_len)
        .ok_or(SzError::Corrupt("code length"))?;
    let code_bytes = payload_ref
        .get(pos..code_end)
        .ok_or(SzError::Truncated("code bytes"))?;
    let mut br = BitReader::new(code_bytes);
    let codes = dec.decode(&mut br, n_codes)?;
    pos = code_end;
    let n_literals = get_varint(payload_ref, &mut pos)? as usize;
    let lit_bytes = payload_ref
        .get(pos..)
        .ok_or(SzError::Truncated("literals"))?;
    if lit_bytes.len() < n_literals * T::BYTES {
        return Err(SzError::Truncated("literal bytes"));
    }

    let quant = Quantizer::new(info.eb, info.radius);
    let lorenzo = Lorenzo::new(&info.dims);
    let st = *lorenzo.strides();

    let n = info.dims.len();
    let mut out: Vec<T> = Vec::with_capacity(n);
    let mut recon = vec![0.0f64; n];
    let mut lit_pos = 0usize;
    let mut idx = 0usize;
    for z in 0..st.ext[0] {
        for y in 0..st.ext[1] {
            for x in 0..st.ext[2] {
                let code = codes[idx];
                let value: T = if code == UNPREDICTABLE {
                    let v = T::read_le(lit_bytes, &mut lit_pos)?;
                    recon[idx] = if v.to_f64().is_finite() {
                        v.to_f64()
                    } else {
                        0.0
                    };
                    v
                } else {
                    if code as usize >= quant.alphabet() {
                        return Err(SzError::Corrupt("symbol out of alphabet"));
                    }
                    let pred = lorenzo.predict(&recon, z, y, x);
                    let r64 = quant.reconstruct(code, pred);
                    let v = T::from_f64(r64);
                    recon[idx] = v.to_f64();
                    v
                };
                out.push(value);
                idx += 1;
            }
        }
    }
    Ok((out, info.dims))
}

/// Convenience wrapper: decompress an `f32` stream.
pub fn decompress_f32(bytes: &[u8]) -> Result<(Vec<f32>, Dims)> {
    decompress(bytes)
}

/// Convenience wrapper: decompress an `f64` stream.
pub fn decompress_f64(bytes: &[u8]) -> Result<(Vec<f64>, Dims)> {
    decompress(bytes)
}
