//! Compression configuration: dimensionality, error bounds, codebook size.

use crate::element::Element;
use crate::error::{Result, SzError};

/// Grid dimensions of the array being compressed.
///
/// szlite understands 1-D, 2-D and 3-D arrays laid out in row-major
/// (C) order; the *last* dimension is the fastest varying, matching the
/// conventions of Nyx/VPIC field dumps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dims(Vec<usize>);

impl Dims {
    /// A 1-D array of `n` points.
    pub fn d1(n: usize) -> Self {
        Dims(vec![n])
    }

    /// A 2-D array with `ny` rows of `nx` points.
    pub fn d2(ny: usize, nx: usize) -> Self {
        Dims(vec![ny, nx])
    }

    /// A 3-D array of `nz` planes, `ny` rows, `nx` points.
    pub fn d3(nz: usize, ny: usize, nx: usize) -> Self {
        Dims(vec![nz, ny, nx])
    }

    /// Build from a slice (1..=3 entries, all non-zero).
    pub fn from_slice(dims: &[usize]) -> Result<Self> {
        if dims.is_empty() || dims.len() > 3 {
            return Err(SzError::Corrupt("dims must have 1..=3 entries"));
        }
        if dims.contains(&0) {
            return Err(SzError::Corrupt("zero dimension"));
        }
        Ok(Dims(dims.to_vec()))
    }

    /// Number of dimensions (1..=3).
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the array holds no points (never constructible via the
    /// public constructors, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw dimension extents, slowest-varying first.
    pub fn extents(&self) -> &[usize] {
        &self.0
    }
}

/// User-facing error-bound specification.
///
/// `Abs` bounds the point-wise absolute error; `Rel` bounds the error
/// relative to the value range of the input (SZ's "value-range relative"
/// mode), i.e. the effective absolute bound is `r * (max - min)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Point-wise absolute error bound.
    Abs(f64),
    /// Value-range-relative error bound.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound for the given data range.
    ///
    /// A degenerate (constant) array under `Rel` resolves to a tiny
    /// positive bound so that compression still succeeds.
    pub fn resolve(&self, min: f64, max: f64) -> Result<f64> {
        let eb = match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::Rel(r) => {
                let range = max - min;
                if range > 0.0 {
                    r * range
                } else {
                    r * min.abs().max(1.0)
                }
            }
        };
        if !(eb.is_finite() && eb > 0.0) {
            return Err(SzError::InvalidErrorBound);
        }
        Ok(eb)
    }

    /// Resolve against a data slice — the rule the compressor itself
    /// applies, shared so read-back verification checks the *same*
    /// bound the stream was produced with. Absolute bounds pass
    /// through without touching the data; relative bounds scan the
    /// finite min/max, with all-non-finite input falling back to the
    /// constant-array rule of [`ErrorBound::resolve`].
    pub fn resolve_for<T: Element>(&self, data: &[T]) -> Result<f64> {
        match self {
            ErrorBound::Abs(_) => self.resolve(0.0, 0.0),
            ErrorBound::Rel(_) => {
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in data {
                    let v = v.to_f64();
                    if v.is_finite() {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                if !min.is_finite() {
                    // All-NaN/Inf input: still valid, everything
                    // becomes a literal.
                    min = 0.0;
                    max = 0.0;
                }
                self.resolve(min, max)
            }
        }
    }
}

/// Full compressor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Error bound specification.
    pub error_bound: ErrorBound,
    /// Half-size of the quantization codebook. Codes live in
    /// `[-radius+1, radius-1]`; anything outside is stored as a raw
    /// literal ("unpredictable" point). SZ uses 32768 by default,
    /// capping the Huffman tree size — the source of the compression
    /// throughput lower bound discussed in the paper (Fig. 6).
    pub radius: u32,
    /// Apply the trailing lossless stage (LZSS). Disabling it is useful
    /// for throughput experiments that isolate prediction + Huffman.
    pub lossless: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            error_bound: ErrorBound::Rel(1e-3),
            radius: 32768,
            lossless: true,
        }
    }
}

impl Config {
    /// Configuration with a point-wise absolute error bound.
    pub fn abs(eb: f64) -> Self {
        Config {
            error_bound: ErrorBound::Abs(eb),
            ..Default::default()
        }
    }

    /// Configuration with a value-range-relative error bound.
    pub fn rel(eb: f64) -> Self {
        Config {
            error_bound: ErrorBound::Rel(eb),
            ..Default::default()
        }
    }

    /// Override the quantization radius (codebook half-size).
    pub fn with_radius(mut self, radius: u32) -> Self {
        self.radius = radius.max(2);
        self
    }

    /// Enable/disable the trailing lossless stage.
    pub fn with_lossless(mut self, on: bool) -> Self {
        self.lossless = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_product() {
        assert_eq!(Dims::d3(4, 5, 6).len(), 120);
        assert_eq!(Dims::d2(7, 3).len(), 21);
        assert_eq!(Dims::d1(9).len(), 9);
    }

    #[test]
    fn dims_rejects_zero() {
        assert!(Dims::from_slice(&[0, 3]).is_err());
        assert!(Dims::from_slice(&[]).is_err());
        assert!(Dims::from_slice(&[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn rel_bound_resolves_against_range() {
        let eb = ErrorBound::Rel(1e-2).resolve(-1.0, 3.0).unwrap();
        assert!((eb - 0.04).abs() < 1e-12);
    }

    #[test]
    fn rel_bound_constant_data() {
        let eb = ErrorBound::Rel(1e-2).resolve(5.0, 5.0).unwrap();
        assert!(eb > 0.0);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(ErrorBound::Abs(0.0).resolve(0.0, 1.0).is_err());
        assert!(ErrorBound::Abs(-1.0).resolve(0.0, 1.0).is_err());
        assert!(ErrorBound::Abs(f64::NAN).resolve(0.0, 1.0).is_err());
    }

    #[test]
    fn radius_floor() {
        assert_eq!(Config::abs(1.0).with_radius(0).radius, 2);
    }
}
