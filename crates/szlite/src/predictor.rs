//! Lorenzo prediction over 1-D/2-D/3-D row-major grids.
//!
//! Each point is predicted from its already-processed neighbors
//! (the *reconstructed* values, so encoder and decoder stay in
//! lockstep and the error bound holds end-to-end). Out-of-grid
//! neighbors contribute zero, the classic Lorenzo convention.

use crate::config::Dims;

/// Strides for up to 3 dimensions, slowest first.
#[derive(Debug, Clone, Copy)]
pub struct Strides {
    /// Number of dimensions in use.
    pub ndims: usize,
    /// Extents, slowest-varying first (padded with 1).
    pub ext: [usize; 3],
    /// Linear strides matching `ext`.
    pub stride: [usize; 3],
}

impl Strides {
    /// Compute strides for a row-major layout of `dims`.
    pub fn new(dims: &Dims) -> Self {
        let e = dims.extents();
        let mut ext = [1usize; 3];
        // Right-align extents so ext[2] is always the fastest axis.
        let off = 3 - e.len();
        for (i, &d) in e.iter().enumerate() {
            ext[off + i] = d;
        }
        let stride = [ext[1] * ext[2], ext[2], 1];
        Strides {
            ndims: e.len(),
            ext,
            stride,
        }
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.ext[0] * self.ext[1] * self.ext[2]
    }

    /// True if the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lorenzo predictor of the appropriate order for the grid.
///
/// For 3-D:
/// `p = f(z-1) + f(y-1) + f(x-1) − f(z-1,y-1) − f(z-1,x-1) − f(y-1,x-1) + f(z-1,y-1,x-1)`
/// with lower-dimensional degenerations on the boundary planes.
#[derive(Debug, Clone, Copy)]
pub struct Lorenzo {
    s: Strides,
}

impl Lorenzo {
    /// Build a predictor for the grid.
    pub fn new(dims: &Dims) -> Self {
        Lorenzo {
            s: Strides::new(dims),
        }
    }

    /// Grid strides.
    pub fn strides(&self) -> &Strides {
        &self.s
    }

    /// Predict point `(z, y, x)` (right-aligned coordinates: for 1-D
    /// data use `(0, 0, x)`) from the reconstruction buffer `recon`,
    /// which must hold valid values for all previously visited points
    /// in raster order.
    #[inline]
    pub fn predict(&self, recon: &[f64], z: usize, y: usize, x: usize) -> f64 {
        let st = &self.s;
        let idx = z * st.stride[0] + y * st.stride[1] + x;
        let gx = x > 0;
        let gy = y > 0;
        let gz = z > 0;
        let mut p = 0.0f64;
        if gx {
            p += recon[idx - 1];
        }
        if gy {
            p += recon[idx - st.stride[1]];
        }
        if gz {
            p += recon[idx - st.stride[0]];
        }
        if gx && gy {
            p -= recon[idx - st.stride[1] - 1];
        }
        if gx && gz {
            p -= recon[idx - st.stride[0] - 1];
        }
        if gy && gz {
            p -= recon[idx - st.stride[0] - st.stride[1]];
        }
        if gx && gy && gz {
            p += recon[idx - st.stride[0] - st.stride[1] - 1];
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_1d() {
        let s = Strides::new(&Dims::d1(10));
        assert_eq!(s.ext, [1, 1, 10]);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn strides_3d() {
        let s = Strides::new(&Dims::d3(2, 3, 4));
        assert_eq!(s.ext, [2, 3, 4]);
        assert_eq!(s.stride, [12, 4, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn predict_origin_is_zero() {
        let p = Lorenzo::new(&Dims::d3(2, 2, 2));
        let recon = vec![5.0; 8];
        assert_eq!(p.predict(&recon, 0, 0, 0), 0.0);
    }

    #[test]
    fn predict_1d_is_previous_value() {
        let p = Lorenzo::new(&Dims::d1(4));
        let recon = vec![1.0, 2.0, 3.0, 0.0];
        assert_eq!(p.predict(&recon, 0, 0, 3), 3.0);
    }

    #[test]
    fn linear_field_is_predicted_exactly_in_interior() {
        // f(z,y,x) = 2z + 3y + 5x is affine, so the 3-D Lorenzo stencil
        // reproduces it exactly away from the boundary.
        let dims = Dims::d3(4, 4, 4);
        let p = Lorenzo::new(&dims);
        let mut recon = vec![0.0f64; 64];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    recon[z * 16 + y * 4 + x] = 2.0 * z as f64 + 3.0 * y as f64 + 5.0 * x as f64;
                }
            }
        }
        for z in 1..4 {
            for y in 1..4 {
                for x in 1..4 {
                    let pred = p.predict(&recon, z, y, x);
                    let truth = recon[z * 16 + y * 4 + x];
                    assert!(
                        (pred - truth).abs() < 1e-12,
                        "({z},{y},{x}): {pred} vs {truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_field_interior_exact_2d() {
        let dims = Dims::d2(5, 5);
        let p = Lorenzo::new(&dims);
        let recon = vec![7.5f64; 25];
        // interior of a constant field: pred = c + c - c = c
        assert!((p.predict(&recon, 0, 2, 3) - 7.5).abs() < 1e-12);
    }
}
