//! Property tests for the workload generators and domain decomposition.

use proptest::prelude::*;
use workloads::{factor3, field::Field, nyx, split_1d, vpic, Decomposition, NyxParams, VpicParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0x30_4C0A) /* pinned: deterministic CI */)]

    #[test]
    fn factor3_product_and_order(n in 1usize..4096) {
        let f = factor3(n);
        prop_assert_eq!(f.iter().product::<usize>(), n);
        prop_assert!(f[0] >= f[1] && f[1] >= f[2]);
    }

    #[test]
    fn split_1d_partitions_exactly(n in 1usize..5000, parts in 1usize..32) {
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let f = Field::new("t", data.clone(), vec![n]);
        let chunks = split_1d(&f, parts);
        prop_assert_eq!(chunks.len(), parts);
        let total: Vec<f32> = chunks.concat();
        prop_assert_eq!(total, data);
        // Sizes differ by at most one element.
        let lens: Vec<usize> = chunks.iter().map(Vec::len).collect();
        let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn decomposition_blocks_partition_cube(p in 0u32..4) {
        // Power-of-two process counts over a 16^3 cube.
        let nprocs = 1usize << (3 * p.min(3)); // 1, 8, 64, 512 capped
        let side = 16usize;
        prop_assume!(nprocs <= side * side * side);
        let data: Vec<f32> = (0..side * side * side).map(|i| i as f32).collect();
        let f = Field::new("t", data.clone(), vec![side, side, side]);
        let dec = Decomposition::new(nprocs, [side, side, side]);
        let mut seen = vec![false; data.len()];
        for r in 0..nprocs {
            for v in dec.extract(&f, r) {
                let idx = v as usize;
                prop_assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn nyx_seeded_determinism(seed in any::<u64>()) {
        let a = nyx::snapshot(NyxParams { side: 8, seed, ..Default::default() });
        let b = nyx::snapshot(NyxParams { side: 8, seed, ..Default::default() });
        for (fa, fb) in a.fields.iter().zip(&b.fields) {
            prop_assert_eq!(&fa.data, &fb.data);
        }
    }

    #[test]
    fn nyx_fields_always_finite(seed in any::<u64>(), z in 0.0f64..12.0) {
        let ds = nyx::snapshot(NyxParams { side: 8, seed, redshift: z, ..Default::default() });
        for f in &ds.fields {
            prop_assert!(f.data.iter().all(|v| v.is_finite()), "{}", f.name);
        }
    }

    #[test]
    fn vpic_energy_nonnegative(seed in any::<u64>()) {
        let ds = vpic::snapshot(VpicParams { n_particles: 256, seed, ..Default::default() });
        let e = &ds.field("energy").unwrap().data;
        prop_assert!(e.iter().all(|&v| v >= 0.0));
    }
}
