//! Domain decomposition: split fields into per-process partitions.
//!
//! HPC codes assign each MPI rank one sub-block per field; the rank's
//! partitions of all fields are what the paper's per-process
//! compression/write pipeline operates on.

use crate::field::Field;

/// A 3-D process-grid decomposition of a cubic/cuboid domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposition {
    /// Process grid extents (pz, py, px); product = process count.
    pub grid: [usize; 3],
    /// Global domain extents (nz, ny, nx).
    pub domain: [usize; 3],
    /// Block extents per process (bz, by, bx).
    pub block: [usize; 3],
}

impl Decomposition {
    /// Choose a near-cubic process grid of `nprocs` ranks over `domain`
    /// (extents must divide evenly; panics otherwise — generators
    /// always produce power-of-two sides).
    pub fn new(nprocs: usize, domain: [usize; 3]) -> Self {
        assert!(nprocs > 0);
        let grid = factor3(nprocs);
        let block = [
            domain[0] / grid[0],
            domain[1] / grid[1],
            domain[2] / grid[2],
        ];
        assert!(
            block[0] * grid[0] == domain[0]
                && block[1] * grid[1] == domain[1]
                && block[2] * grid[2] == domain[2],
            "process grid {grid:?} does not divide domain {domain:?}"
        );
        assert!(block.iter().all(|&b| b > 0), "more processes than cells");
        Decomposition {
            grid,
            domain,
            block,
        }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.grid.iter().product()
    }

    /// Points per block.
    pub fn block_len(&self) -> usize {
        self.block.iter().product()
    }

    /// Block coordinates of `rank` in the process grid.
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        let pyx = self.grid[1] * self.grid[2];
        [
            rank / pyx,
            (rank / self.grid[2]) % self.grid[1],
            rank % self.grid[2],
        ]
    }

    /// Extract rank `rank`'s contiguous sub-block of `field`.
    pub fn extract(&self, field: &Field, rank: usize) -> Vec<f32> {
        assert_eq!(field.dims.len(), 3, "extract requires a 3-D field");
        assert_eq!(field.dims, self.domain.to_vec());
        let [cz, cy, cx] = self.coords(rank);
        let [bz, by, bx] = self.block;
        let (ny, nx) = (self.domain[1], self.domain[2]);
        let mut out = Vec::with_capacity(self.block_len());
        for z in 0..bz {
            let gz = cz * bz + z;
            for y in 0..by {
                let gy = cy * by + y;
                let row = (gz * ny + gy) * nx + cx * bx;
                out.extend_from_slice(&field.data[row..row + bx]);
            }
        }
        out
    }
}

/// Split a 1-D (particle) field into `nprocs` nearly equal chunks.
pub fn split_1d(field: &Field, nprocs: usize) -> Vec<Vec<f32>> {
    assert!(nprocs > 0);
    let n = field.data.len();
    let base = n / nprocs;
    let rem = n % nprocs;
    let mut out = Vec::with_capacity(nprocs);
    let mut start = 0usize;
    for r in 0..nprocs {
        let len = base + usize::from(r < rem);
        out.push(field.data[start..start + len].to_vec());
        start += len;
    }
    out
}

/// Factor `n` into three near-equal factors (largest first).
pub fn factor3(n: usize) -> [usize; 3] {
    let mut best = [n, 1, 1];
    let mut best_score = usize::MAX;
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let m = n / a;
            let mut b = a;
            while b * b <= m {
                if m.is_multiple_of(b) {
                    let c = m / b;
                    // score: spread between max and min factor
                    let score = c - a;
                    if score < best_score {
                        best_score = score;
                        best = [c, b, a];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;

    #[test]
    fn factor3_cases() {
        assert_eq!(factor3(8), [2, 2, 2]);
        assert_eq!(factor3(64), [4, 4, 4]);
        assert_eq!(factor3(512), [8, 8, 8]);
        assert_eq!(factor3(2), [2, 1, 1]);
        let f = factor3(12);
        assert_eq!(f.iter().product::<usize>(), 12);
    }

    #[test]
    fn extract_blocks_cover_domain() {
        let side = 8;
        let data: Vec<f32> = (0..side * side * side).map(|i| i as f32).collect();
        let f = Field::new("t", data.clone(), vec![side, side, side]);
        let dec = Decomposition::new(8, [side, side, side]);
        assert_eq!(dec.block, [4, 4, 4]);
        let mut seen = vec![false; data.len()];
        for r in 0..8 {
            let blk = dec.extract(&f, r);
            assert_eq!(blk.len(), 64);
            for v in blk {
                let idx = v as usize;
                assert!(!seen[idx], "value {idx} extracted twice");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn extract_is_contiguous_subcube() {
        let side = 4;
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let f = Field::new("t", data, vec![side, side, side]);
        let dec = Decomposition::new(1, [side, side, side]);
        let blk = dec.extract(&f, 0);
        assert_eq!(blk, f.data);
    }

    #[test]
    fn split_1d_even_and_ragged() {
        let f = Field::new("p", (0..10).map(|i| i as f32).collect(), vec![10]);
        let parts = split_1d(&f, 3);
        assert_eq!(
            parts.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let all: Vec<f32> = parts.concat();
        assert_eq!(all, f.data);
    }

    #[test]
    fn coords_roundtrip() {
        let dec = Decomposition::new(8, [8, 8, 8]);
        for r in 0..8 {
            let [z, y, x] = dec.coords(r);
            assert_eq!(z * 4 + y * 2 + x, r);
        }
    }
}
