//! # workloads — synthetic HPC datasets
//!
//! Seeded, deterministic stand-ins for the datasets the paper
//! evaluates on (its Table I): Nyx cosmology snapshots, VPIC particle
//! dumps, and the RTM wavefields used in its Fig. 5. Production data
//! is not redistributable, so each generator reproduces the
//! *statistical properties the paper's design depends on*:
//!
//! * per-partition compressed bit-rates spread over a wide range
//!   (Fig. 1) — from spatial clustering / heterogeneous smoothness;
//! * multiple fields per snapshot with different compressibility;
//! * an evolution parameter (red shift) for time-step sweeps (Fig. 15).
//!
//! See `DESIGN.md` §2 for the substitution rationale.

pub mod field;
pub mod noise;
pub mod nyx;
pub mod partition;
pub mod rtm;
pub mod stream;
pub mod vpic;

pub use field::{Dataset, Field};
pub use nyx::{NyxParams, NYX_FIELDS};
pub use partition::{factor3, split_1d, Decomposition};
pub use rtm::RtmParams;
pub use stream::{SnapshotStream, StreamKind};
pub use vpic::{VpicParams, VPIC_FIELDS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nyx_partitions_have_heterogeneous_ranges() {
        // The core claim imported from the paper's Fig. 1: partitions of
        // the same field differ widely in local structure.
        let ds = nyx::snapshot(NyxParams::with_side(32));
        let f = ds.field("baryon_density").unwrap();
        let dec = Decomposition::new(8, [32, 32, 32]);
        let mut ranges: Vec<f64> = (0..8)
            .map(|r| {
                let blk = dec.extract(f, r);
                let mx = blk.iter().cloned().fold(f32::MIN, f32::max);
                let mn = blk.iter().cloned().fold(f32::MAX, f32::min);
                f64::from(mx - mn)
            })
            .collect();
        ranges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            ranges[7] > ranges[0] * 1.5,
            "partition ranges too uniform: {ranges:?}"
        );
    }
}
