//! Timestep streams: deterministic, correlated snapshot sequences.
//!
//! The paper's target applications checkpoint a *time-evolving*
//! simulation, not a single file: timestep *t*'s per-field compression
//! ratios are an excellent predictor for timestep *t + 1*. This module
//! turns the three generators into streams whose consecutive snapshots
//! are strongly correlated but never identical:
//!
//! * **Nyx** — the cosmic web advects past the grid ([`NyxParams::drift`])
//!   while red shift decreases (structure slowly forms);
//! * **VPIC** — particles advect with their momenta and the momenta
//!   wobble ([`VpicParams::time`]);
//! * **RTM** — wavefronts propagate outward ([`RtmParams::time`]);
//!
//! plus a small multiplicative per-step noise injection so observed
//! ratios fluctuate the way real checkpoint streams do. Everything is
//! a pure function of `(seed, step)` — no state is carried between
//! snapshots — so streams replay identically at any worker count.

use crate::field::Dataset;
use crate::noise::uniform01;
use crate::{nyx, rtm, vpic, NyxParams, RtmParams, VpicParams};

/// Which generator a stream draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// 3-D Nyx cosmology snapshots (six fields).
    Nyx,
    /// 1-D VPIC particle dumps (eight fields).
    Vpic,
    /// 3-D RTM pressure wavefields (one field).
    Rtm,
}

/// A deterministic sequence of correlated snapshots.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStream {
    /// Generator family.
    pub kind: StreamKind,
    /// Cube side (Nyx/RTM) or particle count (VPIC).
    pub size: usize,
    /// RNG seed shared by every step.
    pub seed: u64,
    /// Simulation-time advance per step.
    pub dt: f64,
    /// Relative amplitude of the per-step multiplicative noise
    /// injection (`0.0` disables it).
    pub noise: f64,
}

impl SnapshotStream {
    /// A Nyx stream over a `side³` grid with default drift/noise.
    pub fn nyx(side: usize) -> Self {
        SnapshotStream {
            kind: StreamKind::Nyx,
            size: side,
            seed: 0x4E59,
            dt: 0.35,
            noise: 0.02,
        }
    }

    /// A VPIC stream over `n_particles` particles.
    pub fn vpic(n_particles: usize) -> Self {
        SnapshotStream {
            kind: StreamKind::Vpic,
            size: n_particles,
            seed: 0x5649_4350,
            dt: 0.8,
            noise: 0.02,
        }
    }

    /// An RTM stream over a `side³` grid.
    pub fn rtm(side: usize) -> Self {
        SnapshotStream {
            kind: StreamKind::Rtm,
            size: side,
            seed: 0x52_54_4D,
            dt: 0.6,
            noise: 0.02,
        }
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the per-step time advance.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Override the injected-noise amplitude.
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Short label for tables and file names.
    pub fn label(&self) -> &'static str {
        match self.kind {
            StreamKind::Nyx => "nyx",
            StreamKind::Vpic => "vpic",
            StreamKind::Rtm => "rtm",
        }
    }

    /// True for particle (1-D) streams, false for grid (3-D) streams.
    pub fn is_particle(&self) -> bool {
        self.kind == StreamKind::Vpic
    }

    /// Generate the snapshot at `step` (pure in `(seed, step)`).
    pub fn snapshot(&self, step: usize) -> Dataset {
        let t = step as f64 * self.dt;
        let mut ds = match self.kind {
            StreamKind::Nyx => nyx::snapshot(NyxParams {
                seed: self.seed,
                // Structure slowly forms over the run…
                redshift: (3.0 - 0.08 * t).max(0.2),
                // …while the web advects past the grid at an oblique
                // angle (incommensurate components avoid re-sampling
                // the same lattice points).
                drift: [0.83 * t, 0.47 * t, 0.29 * t],
                ..NyxParams::with_side(self.size)
            }),
            StreamKind::Vpic => vpic::snapshot(VpicParams {
                seed: self.seed,
                time: t,
                ..VpicParams::with_particles(self.size)
            }),
            StreamKind::Rtm => rtm::snapshot(RtmParams {
                seed: self.seed,
                time: t,
                ..RtmParams::with_side(self.size)
            }),
        };
        if self.noise > 0.0 {
            inject_noise(&mut ds, self.seed, step, self.noise);
        }
        ds
    }
}

/// Multiplicative per-step noise: each value is scaled by
/// `1 + amp·u` with `u` uniform in [-1, 1], hashed from the element
/// index, field index and step. Keeps signs (and positivity) for
/// `amp < 1` and is uncorrelated across steps — the "measurement
/// noise" on top of the smooth evolution.
fn inject_noise(ds: &mut Dataset, seed: u64, step: usize, amp: f64) {
    for (fi, field) in ds.fields.iter_mut().enumerate() {
        let s = seed ^ 0xA07E_0000 ^ ((step as u64) << 20) ^ ((fi as u64) << 44);
        for (i, v) in field.data.iter_mut().enumerate() {
            let u = uniform01(i as u64, s) * 2.0 - 1.0;
            *v = (f64::from(*v) * (1.0 + amp * u)) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_l2(a: &[f32], b: &[f32]) -> f64 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (&x, &y) in a.iter().zip(b) {
            num += (f64::from(x) - f64::from(y)).powi(2);
            den += f64::from(x).powi(2);
        }
        (num / den.max(1e-300)).sqrt()
    }

    #[test]
    fn steps_are_deterministic() {
        for stream in [
            SnapshotStream::nyx(8),
            SnapshotStream::vpic(512),
            SnapshotStream::rtm(8),
        ] {
            let a = stream.snapshot(3);
            let b = stream.snapshot(3);
            for (fa, fb) in a.fields.iter().zip(&b.fields) {
                assert_eq!(fa.data, fb.data, "{}: step must replay", stream.label());
            }
        }
    }

    #[test]
    fn consecutive_steps_correlated_but_distinct() {
        for stream in [
            SnapshotStream::nyx(12),
            SnapshotStream::vpic(2048),
            SnapshotStream::rtm(12),
        ] {
            let s0 = stream.snapshot(0);
            let s1 = stream.snapshot(1);
            let s8 = stream.snapshot(8);
            let f0 = &s0.fields[0].data;
            let near = rel_l2(f0, &s1.fields[0].data);
            let far = rel_l2(f0, &s8.fields[0].data);
            assert!(near > 0.0, "{}: steps must differ", stream.label());
            assert!(
                near < far,
                "{}: step 1 ({near:.3}) must be closer than step 8 ({far:.3})",
                stream.label()
            );
        }
    }

    #[test]
    fn step_zero_without_noise_matches_static_generator() {
        let stream = SnapshotStream::nyx(8).noise(0.0);
        let ds = stream.snapshot(0);
        let base = nyx::snapshot(NyxParams {
            redshift: 3.0,
            ..NyxParams::with_side(8)
        });
        assert_eq!(ds.fields[0].data, base.fields[0].data);
        let stream = SnapshotStream::rtm(8).noise(0.0);
        let base = rtm::snapshot(RtmParams::with_side(8));
        assert_eq!(stream.snapshot(0).fields[0].data, base.fields[0].data);
    }

    #[test]
    fn fields_stay_finite_under_noise() {
        for stream in [
            SnapshotStream::nyx(8),
            SnapshotStream::vpic(512),
            SnapshotStream::rtm(8),
        ] {
            let ds = stream.snapshot(5);
            for f in &ds.fields {
                assert!(
                    f.data.iter().all(|v| v.is_finite()),
                    "{}/{} has non-finite values",
                    stream.label(),
                    f.name
                );
            }
        }
    }
}
