//! Synthetic VPIC-like particle snapshot generator.
//!
//! VPIC (vector particle-in-cell) magnetic-reconnection runs dump
//! per-particle arrays: positions, momenta, and energy. Particles
//! cluster around the reconnection current sheet (a plane), momenta
//! are Maxwellian with a beam component near the sheet, and energy is
//! derived from momenta. Each array is a 1-D field; compressibility
//! varies between position components (smooth-ish after sorting) and
//! momentum components (noisy) — matching the spread of per-field
//! bit-rates the paper evaluates (their 8-field VPIC configuration).

use crate::field::{Dataset, Field};
use crate::noise::{normal, uniform01};

/// Parameters of a synthetic VPIC particle dump.
#[derive(Debug, Clone, Copy)]
pub struct VpicParams {
    /// Number of particles.
    pub n_particles: usize,
    /// RNG seed.
    pub seed: u64,
    /// Box size (arbitrary units) in x/z; the sheet normal is y.
    pub box_size: f64,
    /// Thermal spread of the Maxwellian momentum components.
    pub thermal: f64,
    /// Beam (reconnection outflow) speed near the current sheet.
    pub beam: f64,
    /// Simulation time. Particles advect with their momenta (periodic
    /// in x/z) and momenta wobble slowly, so snapshots at nearby times
    /// are strongly correlated; `0.0` reproduces the static dump.
    pub time: f64,
}

impl Default for VpicParams {
    fn default() -> Self {
        VpicParams {
            n_particles: 1 << 16,
            seed: 0x5649_4350,
            box_size: 100.0,
            thermal: 0.3,
            beam: 1.2,
            time: 0.0,
        }
    }
}

impl VpicParams {
    /// A dump with `n` particles and defaults otherwise.
    pub fn with_particles(n: usize) -> Self {
        VpicParams {
            n_particles: n,
            ..Default::default()
        }
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The eight per-particle fields, in dump order.
pub const VPIC_FIELDS: [&str; 8] = [
    "pos_x", "pos_y", "pos_z", "mom_x", "mom_y", "mom_z", "energy", "weight",
];

/// Generate a particle dump with the eight standard fields.
pub fn snapshot(p: VpicParams) -> Dataset {
    let n = p.n_particles;
    let s = p.seed;
    let mut pos_x = Vec::with_capacity(n);
    let mut pos_y = Vec::with_capacity(n);
    let mut pos_z = Vec::with_capacity(n);
    let mut mom_x = Vec::with_capacity(n);
    let mut mom_y = Vec::with_capacity(n);
    let mut mom_z = Vec::with_capacity(n);
    let mut energy = Vec::with_capacity(n);
    let mut weight = Vec::with_capacity(n);

    let t = p.time;
    for i in 0..n as u64 {
        // Positions: x,z uniform; y concentrated near the sheet (y=0)
        // with a Harris-sheet-like profile (tanh-distributed).
        let x0 = uniform01(i, s) * p.box_size;
        let z0 = uniform01(i, s ^ 0x33) * p.box_size;
        let u = uniform01(i, s ^ 0x44) * 2.0 - 1.0;
        let y0 = (u.clamp(-0.999_999, 0.999_999)).atanh() * 2.0; // heavy center, long tails

        // Sheet proximity factor in [0,1]: 1 at the sheet.
        let prox = (-y0 * y0 / 8.0).exp();

        // Momenta: Maxwellian + beam along x near the sheet, plus a
        // slow per-particle wobble that vanishes at t = 0 so the
        // static dump is unchanged.
        let wob = |axis: u64| {
            let phase = uniform01(i, s ^ axis) * 2.0 * std::f64::consts::PI;
            0.25 * p.thermal * ((0.35 * t + phase).sin() - phase.sin())
        };
        let ux = normal(i, s ^ 0x55) * p.thermal + p.beam * prox + wob(0x9A);
        let uy = normal(i, s ^ 0x66) * p.thermal * (1.0 + prox) + wob(0x9B);
        let uz = normal(i, s ^ 0x77) * p.thermal + wob(0x9C);
        let e = 0.5 * (ux * ux + uy * uy + uz * uz);
        // Weights: quantized macro-particle weights (highly compressible).
        let w = 1.0 + (uniform01(i, s ^ 0x88) * 4.0).floor() * 0.25;

        // Advect with the (base) momenta: periodic in x/z, slow y
        // drift that preserves the sheet clustering.
        let x = (x0 + ux * t).rem_euclid(p.box_size);
        let z = (z0 + uz * t).rem_euclid(p.box_size);
        let y = y0 + uy * 0.15 * t;

        pos_x.push(x as f32);
        pos_y.push(y as f32);
        pos_z.push(z as f32);
        mom_x.push(ux as f32);
        mom_y.push(uy as f32);
        mom_z.push(uz as f32);
        energy.push(e as f32);
        weight.push(w as f32);
    }

    // VPIC dumps are written in cell order, which sorts particles by
    // position; sort by x so position arrays are piecewise smooth.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        pos_x[a as usize]
            .partial_cmp(&pos_x[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let reorder = |v: &Vec<f32>| -> Vec<f32> { order.iter().map(|&i| v[i as usize]).collect() };

    let dims = vec![n];
    Dataset {
        name: format!("vpic-{n}"),
        fields: vec![
            Field::new(VPIC_FIELDS[0], reorder(&pos_x), dims.clone()),
            Field::new(VPIC_FIELDS[1], reorder(&pos_y), dims.clone()),
            Field::new(VPIC_FIELDS[2], reorder(&pos_z), dims.clone()),
            Field::new(VPIC_FIELDS[3], reorder(&mom_x), dims.clone()),
            Field::new(VPIC_FIELDS[4], reorder(&mom_y), dims.clone()),
            Field::new(VPIC_FIELDS[5], reorder(&mom_z), dims.clone()),
            Field::new(VPIC_FIELDS[6], reorder(&energy), dims.clone()),
            Field::new(VPIC_FIELDS[7], reorder(&weight), dims),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shape() {
        let ds = snapshot(VpicParams::with_particles(1000));
        assert_eq!(ds.fields.len(), 8);
        for f in &ds.fields {
            assert_eq!(f.len(), 1000);
            assert!(
                f.data.iter().all(|v| v.is_finite()),
                "{} has non-finite",
                f.name
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = snapshot(VpicParams::with_particles(500).seed(9));
        let b = snapshot(VpicParams::with_particles(500).seed(9));
        assert_eq!(a.fields[3].data, b.fields[3].data);
    }

    #[test]
    fn positions_sorted_by_x() {
        let ds = snapshot(VpicParams::with_particles(2000));
        let px = &ds.field("pos_x").unwrap().data;
        assert!(px.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn particles_cluster_at_sheet() {
        let ds = snapshot(VpicParams::with_particles(20_000));
        let py = &ds.field("pos_y").unwrap().data;
        let near = py.iter().filter(|&&y| y.abs() < 2.0).count();
        // Far more than the uniform fraction lies near the sheet.
        assert!(near * 2 > py.len(), "{near} of {}", py.len());
    }

    #[test]
    fn energy_consistent_with_momenta() {
        let ds = snapshot(VpicParams::with_particles(100));
        let (mx, my, mz, e) = (
            &ds.field("mom_x").unwrap().data,
            &ds.field("mom_y").unwrap().data,
            &ds.field("mom_z").unwrap().data,
            &ds.field("energy").unwrap().data,
        );
        for i in 0..100 {
            let want = 0.5 * (mx[i] * mx[i] + my[i] * my[i] + mz[i] * mz[i]);
            assert!((want - e[i]).abs() < 1e-3 * (1.0 + want.abs()));
        }
    }
}
