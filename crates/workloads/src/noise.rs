//! Deterministic lattice value-noise and fractal Brownian motion.
//!
//! All generators in this crate build fields out of this noise: it is
//! seeded, allocation-free, and produces smooth-but-heterogeneous data
//! whose per-region compressibility varies — the property (paper
//! Fig. 1) the predictive-write design exploits.

/// 64-bit mix hash (splitmix64 finalizer) of lattice coordinates.
#[inline]
fn hash(x: i64, y: i64, z: i64, seed: u64) -> u64 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F)
        ^ (z as u64).wrapping_mul(0x165667B19E3779F9);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    h
}

/// Uniform value in [-1, 1] at an integer lattice point.
#[inline]
fn lattice(x: i64, y: i64, z: i64, seed: u64) -> f64 {
    let h = hash(x, y, z, seed);
    (h >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
}

/// Quintic smoothstep used for C²-continuous interpolation.
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Smooth value noise in [-1, 1] at a continuous 3-D coordinate.
pub fn value_noise(x: f64, y: f64, z: f64, seed: u64) -> f64 {
    let xi = x.floor() as i64;
    let yi = y.floor() as i64;
    let zi = z.floor() as i64;
    let tx = fade(x - xi as f64);
    let ty = fade(y - yi as f64);
    let tz = fade(z - zi as f64);
    let mut c = [0.0f64; 8];
    for (k, corner) in c.iter_mut().enumerate() {
        let dx = (k & 1) as i64;
        let dy = ((k >> 1) & 1) as i64;
        let dz = ((k >> 2) & 1) as i64;
        *corner = lattice(xi + dx, yi + dy, zi + dz, seed);
    }
    let x00 = lerp(c[0], c[1], tx);
    let x10 = lerp(c[2], c[3], tx);
    let x01 = lerp(c[4], c[5], tx);
    let x11 = lerp(c[6], c[7], tx);
    let y0 = lerp(x00, x10, ty);
    let y1 = lerp(x01, x11, ty);
    lerp(y0, y1, tz)
}

/// Fractal Brownian motion: `octaves` layers of [`value_noise`] with
/// lacunarity 2 and the given `persistence`. Output roughly in [-1, 1].
pub fn fbm(x: f64, y: f64, z: f64, seed: u64, octaves: u32, persistence: f64) -> f64 {
    let mut sum = 0.0;
    let mut amp = 1.0;
    let mut freq = 1.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        sum += amp * value_noise(x * freq, y * freq, z * freq, seed.wrapping_add(o as u64));
        norm += amp;
        amp *= persistence;
        freq *= 2.0;
    }
    sum / norm
}

/// Uniform f64 in [0, 1) derived from an index (for jittered sampling).
pub fn uniform01(i: u64, seed: u64) -> f64 {
    (hash(i as i64, 0x5bd1, 0x27d4, seed) >> 11) as f64 / ((1u64 << 53) as f64)
}

/// Standard-normal deviate from two hashed uniforms (Box–Muller).
pub fn normal(i: u64, seed: u64) -> f64 {
    let u1 = uniform01(i, seed).max(1e-12);
    let u2 = uniform01(i, seed ^ 0xABCD_EF01_2345_6789);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            value_noise(1.5, 2.5, 3.5, 42),
            value_noise(1.5, 2.5, 3.5, 42)
        );
        assert_ne!(
            value_noise(1.5, 2.5, 3.5, 42),
            value_noise(1.5, 2.5, 3.5, 43)
        );
    }

    #[test]
    fn bounded() {
        for i in 0..2000 {
            let t = i as f64 * 0.137;
            let v = value_noise(t, t * 0.7, t * 1.3, 7);
            assert!((-1.0..=1.0).contains(&v), "{v}");
            let f = fbm(t, t * 0.7, t * 1.3, 7, 5, 0.5);
            assert!((-1.2..=1.2).contains(&f), "{f}");
        }
    }

    #[test]
    fn continuous() {
        // Small coordinate change → small value change.
        let a = value_noise(3.0001, 4.0, 5.0, 1);
        let b = value_noise(3.0002, 4.0, 5.0, 1);
        assert!((a - b).abs() < 1e-2);
    }

    #[test]
    fn lattice_matches_at_integers() {
        // Noise at integer points equals the lattice value.
        let v = value_noise(2.0, 3.0, 4.0, 9);
        let l = lattice(2, 3, 4, 9);
        assert!((v - l).abs() < 1e-12);
    }

    #[test]
    fn normal_mean_var() {
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|i| normal(i, 3)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
