//! Synthetic RTM-like (reverse-time-migration) wavefield generator.
//!
//! The paper's Fig. 5 evaluates compression throughput on both a Nyx
//! and an RTM dataset to show the bitrate–throughput curve is
//! consistent across data sources. RTM wavefields are oscillatory
//! (band-limited wavefronts radiating from sources over a smooth
//! velocity model); we synthesize interfering spherical wavelets plus
//! low-amplitude background noise.

use crate::field::{Dataset, Field};
use crate::noise::{fbm, uniform01};

/// Parameters of a synthetic RTM wavefield snapshot.
#[derive(Debug, Clone, Copy)]
pub struct RtmParams {
    /// Cube side.
    pub side: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of point sources.
    pub n_sources: usize,
    /// Dominant wavelength in grid cells.
    pub wavelength: f64,
    /// Propagation time in grid cells travelled (unit phase speed):
    /// wavefronts radiate outward as `time` advances, so snapshots at
    /// nearby times are strongly correlated; `0.0` is the static field.
    pub time: f64,
}

impl Default for RtmParams {
    fn default() -> Self {
        RtmParams {
            side: 64,
            seed: 0x52_54_4D,
            n_sources: 6,
            wavelength: 12.0,
            time: 0.0,
        }
    }
}

impl RtmParams {
    /// Snapshot with a given cube side.
    pub fn with_side(side: usize) -> Self {
        RtmParams {
            side,
            ..Default::default()
        }
    }
}

/// Generate a single-field wavefield snapshot (`pressure`).
pub fn snapshot(p: RtmParams) -> Dataset {
    let n = p.side;
    let k = 2.0 * std::f64::consts::PI / p.wavelength.max(2.0);
    // Random source positions and phases.
    let sources: Vec<(f64, f64, f64, f64)> = (0..p.n_sources as u64)
        .map(|i| {
            (
                uniform01(i, p.seed) * n as f64,
                uniform01(i, p.seed ^ 0x1) * n as f64,
                uniform01(i, p.seed ^ 0x2) * n as f64,
                uniform01(i, p.seed ^ 0x3) * 2.0 * std::f64::consts::PI,
            )
        })
        .collect();

    let mut data = Vec::with_capacity(n * n * n);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let (xf, yf, zf) = (x as f64, y as f64, z as f64);
                let mut v = 0.0;
                for &(sx, sy, sz, ph) in &sources {
                    let r = ((xf - sx).powi(2) + (yf - sy).powi(2) + (zf - sz).powi(2))
                        .sqrt()
                        .max(1.0);
                    // Decaying spherical wavelet with a Gaussian
                    // envelope, travelling outward at unit phase speed.
                    v += (k * (r - p.time) + ph).sin() * (-r / (n as f64 * 0.6)).exp() / r.sqrt();
                }
                // Smooth background (velocity-model imprint) + v.
                v += 0.05 * fbm(xf / 20.0, yf / 20.0, zf / 20.0, p.seed ^ 0x9, 3, 0.5);
                data.push(v as f32);
            }
        }
    }
    Dataset {
        name: format!("rtm-{n}"),
        fields: vec![Field::new("pressure", data, vec![n, n, n])],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shape() {
        let ds = snapshot(RtmParams::with_side(16));
        assert_eq!(ds.fields.len(), 1);
        assert_eq!(ds.fields[0].len(), 4096);
        assert!(ds.fields[0].data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic() {
        let a = snapshot(RtmParams::with_side(8));
        let b = snapshot(RtmParams::with_side(8));
        assert_eq!(a.fields[0].data, b.fields[0].data);
    }

    #[test]
    fn oscillatory_zero_mean() {
        let ds = snapshot(RtmParams::with_side(24));
        let d = &ds.fields[0].data;
        let mean: f64 = d.iter().map(|&v| v as f64).sum::<f64>() / d.len() as f64;
        let amp = d.iter().map(|&v| (v as f64).abs()).fold(0.0, f64::max);
        assert!(mean.abs() < 0.2 * amp, "mean {mean} amp {amp}");
    }
}
