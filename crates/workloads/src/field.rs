//! Common field/dataset containers shared by all generators.

/// A named scalar field over a row-major grid (1-D for particle data).
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name, e.g. `"baryon_density"`.
    pub name: String,
    /// Row-major samples.
    pub data: Vec<f32>,
    /// Grid extents, slowest-varying first (len 1 for particle arrays).
    pub dims: Vec<usize>,
}

impl Field {
    /// Create a field, checking that extents match the data length.
    pub fn new(name: impl Into<String>, data: Vec<f32>, dims: Vec<usize>) -> Self {
        let n: usize = dims.iter().product();
        assert_eq!(n, data.len(), "dims product must equal data length");
        Field {
            name: name.into(),
            data,
            dims,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw size in bytes (f32 storage).
    pub fn raw_bytes(&self) -> usize {
        self.data.len() * 4
    }
}

/// A collection of fields from one simulation snapshot.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label, e.g. `"nyx-128"`.
    pub name: String,
    /// Snapshot fields, in the application's dump order.
    pub fields: Vec<Field>,
}

impl Dataset {
    /// Total raw bytes across fields.
    pub fn raw_bytes(&self) -> usize {
        self.fields.iter().map(Field::raw_bytes).sum()
    }

    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Field names in order.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_checks_dims() {
        let f = Field::new("t", vec![0.0; 24], vec![2, 3, 4]);
        assert_eq!(f.len(), 24);
        assert_eq!(f.raw_bytes(), 96);
    }

    #[test]
    #[should_panic]
    fn field_rejects_bad_dims() {
        Field::new("t", vec![0.0; 10], vec![3, 4]);
    }

    #[test]
    fn dataset_lookup() {
        let ds = Dataset {
            name: "x".into(),
            fields: vec![Field::new("a", vec![0.0; 4], vec![4])],
        };
        assert!(ds.field("a").is_some());
        assert!(ds.field("b").is_none());
        assert_eq!(ds.raw_bytes(), 16);
    }
}
