//! Synthetic Nyx-like cosmology snapshot generator.
//!
//! Nyx dumps several 3-D fields per snapshot: baryon density, dark
//! matter density, temperature and three velocity components. Real Nyx
//! densities are approximately log-normally distributed with strong
//! small-scale clustering (halos) that grows as the simulation evolves
//! (red-shift decreases). We mimic that structure:
//!
//! * a large-scale fBm "cosmic web" field,
//! * multiplicative log-normal transforms for the densities,
//! * additive hashed halo spikes whose contrast scales with the
//!   evolution parameter,
//! * smooth large-scale velocity fields.
//!
//! Per-partition compressed bit-rates under a fixed error bound spread
//! over a wide range (compare the paper's Fig. 1), because clustering
//! makes some sub-volumes much harder to predict than others.

use crate::field::{Dataset, Field};
use crate::noise::{fbm, value_noise};

/// Parameters of a synthetic Nyx snapshot.
#[derive(Debug, Clone, Copy)]
pub struct NyxParams {
    /// Cube side (grid is `side³`).
    pub side: usize,
    /// RNG seed; two snapshots with the same seed are identical.
    pub seed: u64,
    /// Red shift: large values = early universe = smoother fields.
    /// The paper's Fig. 15 sweeps this; sensible range ~ [0, 10].
    pub redshift: f64,
    /// Base feature wavelength in grid cells.
    pub feature_scale: f64,
    /// Grid-cell offsets added to the (x, y, z) sample coordinates:
    /// advection of the cosmic web past the grid. Timestep streams
    /// advance this per step so consecutive snapshots are strongly
    /// correlated but not identical.
    pub drift: [f64; 3],
}

impl Default for NyxParams {
    fn default() -> Self {
        NyxParams {
            side: 64,
            seed: 0x4E59,
            redshift: 2.0,
            feature_scale: 24.0,
            drift: [0.0; 3],
        }
    }
}

impl NyxParams {
    /// Snapshot with a given cube side and defaults otherwise.
    pub fn with_side(side: usize) -> Self {
        NyxParams {
            side,
            ..Default::default()
        }
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the red shift (evolution stage).
    pub fn redshift(mut self, z: f64) -> Self {
        self.redshift = z;
        self
    }
}

/// Field names in the order Nyx dumps them (the paper's six fields).
pub const NYX_FIELDS: [&str; 6] = [
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
];

/// Clustering contrast grows as red shift decreases (structure forms).
fn contrast(redshift: f64) -> f64 {
    2.4 / (1.0 + 0.35 * redshift.max(0.0))
}

fn gen_grid(side: usize, drift: [f64; 3], f: impl Fn(f64, f64, f64) -> f64 + Sync) -> Vec<f32> {
    let mut out = Vec::with_capacity(side * side * side);
    for z in 0..side {
        for y in 0..side {
            for x in 0..side {
                out.push(f(
                    x as f64 + drift[0],
                    y as f64 + drift[1],
                    z as f64 + drift[2],
                ) as f32);
            }
        }
    }
    out
}

/// Generate a full snapshot with the six standard fields.
pub fn snapshot(p: NyxParams) -> Dataset {
    let dims = vec![p.side, p.side, p.side];
    let s = p.feature_scale.max(2.0);
    let c = contrast(p.redshift);
    let seed = p.seed;

    // Shared "web" field correlating density and temperature.
    let web = |x: f64, y: f64, z: f64| fbm(x / s, y / s, z / s, seed, 5, 0.55);
    // Halo spikes: sparse high-frequency peaks, sharpened by contrast.
    let halos = |x: f64, y: f64, z: f64| {
        let v = value_noise(x / (s * 0.25), y / (s * 0.25), z / (s * 0.25), seed ^ 0xA5);
        let v = ((v - 0.55) * 8.0).max(0.0); // only the top tail survives
        v * v
    };

    // Log-density exponents are clamped to keep the dynamic range near
    // real Nyx snapshots (~5 decades), not runaway halo peaks.
    let baryon = gen_grid(p.side, p.drift, |x, y, z| {
        let g = (web(x, y, z) * c + halos(x, y, z) * c).clamp(-5.5, 5.5);
        1.0e8 * g.exp()
    });
    let dm = gen_grid(p.side, p.drift, |x, y, z| {
        let g = (fbm(x / s, y / s, z / s, seed ^ 0x11, 5, 0.6) * (c * 1.2)
            + halos(x + 3.0, y + 7.0, z + 11.0) * (c * 1.4))
            .clamp(-6.0, 6.0);
        3.2e9 * g.exp()
    });
    let temp = gen_grid(p.side, p.drift, |x, y, z| {
        let g = web(x, y, z) * 0.8 + fbm(x / s, y / s, z / s, seed ^ 0x22, 4, 0.5) * 0.4;
        1.0e4 * (g * c * 0.9).exp()
    });
    let vel = |axis_seed: u64| {
        gen_grid(p.side, p.drift, move |x, y, z| {
            2.0e7
                * fbm(
                    x / (s * 1.5),
                    y / (s * 1.5),
                    z / (s * 1.5),
                    seed ^ axis_seed,
                    4,
                    0.5,
                )
        })
    };

    Dataset {
        name: format!("nyx-{}", p.side),
        fields: vec![
            Field::new(NYX_FIELDS[0], baryon, dims.clone()),
            Field::new(NYX_FIELDS[1], dm, dims.clone()),
            Field::new(NYX_FIELDS[2], temp, dims.clone()),
            Field::new(NYX_FIELDS[3], vel(0x100), dims.clone()),
            Field::new(NYX_FIELDS[4], vel(0x200), dims.clone()),
            Field::new(NYX_FIELDS[5], vel(0x300), dims),
        ],
    }
}

/// Generate a single field (cheaper when only one is needed).
pub fn single_field(p: NyxParams, name: &str) -> Field {
    let ds = snapshot_subset(p, &[name]);
    ds.fields.into_iter().next().expect("unknown field name")
}

/// Generate only the named fields.
pub fn snapshot_subset(p: NyxParams, names: &[&str]) -> Dataset {
    let full = snapshot(p);
    let fields: Vec<Field> = full
        .fields
        .into_iter()
        .filter(|f| names.contains(&f.name.as_str()))
        .collect();
    assert!(!fields.is_empty(), "no matching field names");
    Dataset {
        name: full.name,
        fields,
    }
}

/// A time series of snapshots with decreasing red shift (Fig. 15).
pub fn time_series(p: NyxParams, redshifts: &[f64]) -> Vec<Dataset> {
    redshifts
        .iter()
        .map(|&z| snapshot(NyxParams { redshift: z, ..p }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_six_fields() {
        let ds = snapshot(NyxParams::with_side(8));
        assert_eq!(ds.fields.len(), 6);
        for f in &ds.fields {
            assert_eq!(f.len(), 512);
            assert!(f.data.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = snapshot(NyxParams::with_side(8).seed(1));
        let b = snapshot(NyxParams::with_side(8).seed(1));
        let c = snapshot(NyxParams::with_side(8).seed(2));
        assert_eq!(a.fields[0].data, b.fields[0].data);
        assert_ne!(a.fields[0].data, c.fields[0].data);
    }

    #[test]
    fn densities_positive() {
        let ds = snapshot(NyxParams::with_side(8));
        for name in ["baryon_density", "dark_matter_density", "temperature"] {
            let f = ds.field(name).unwrap();
            assert!(
                f.data.iter().all(|&v| v > 0.0),
                "{name} has non-positive values"
            );
        }
    }

    #[test]
    fn later_time_is_more_clustered() {
        // Lower red shift → higher contrast → larger density spread.
        let early = snapshot(NyxParams::with_side(16).redshift(8.0));
        let late = snapshot(NyxParams::with_side(16).redshift(0.5));
        let spread = |f: &crate::field::Field| {
            let mx = f.data.iter().cloned().fold(f32::MIN, f32::max);
            let mn = f.data.iter().cloned().fold(f32::MAX, f32::min);
            (mx / mn) as f64
        };
        let fe = early.field("baryon_density").unwrap();
        let fl = late.field("baryon_density").unwrap();
        assert!(
            spread(fl) > spread(fe),
            "late {} early {}",
            spread(fl),
            spread(fe)
        );
    }

    #[test]
    fn subset_selects_fields() {
        let ds = snapshot_subset(NyxParams::with_side(8), &["temperature"]);
        assert_eq!(ds.fields.len(), 1);
        assert_eq!(ds.fields[0].name, "temperature");
    }
}
