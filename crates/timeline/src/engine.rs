//! The checkpoint-stream engine: drive the real predictive-write
//! engine across a sequence of timesteps.
//!
//! Each step writes one container file through
//! [`predwrite::run_real_with`]. In [`AdaptMode::Static`] every step
//! predicts with the offline models and the engine-wide extra-space
//! policy — the paper's single-shot configuration replayed per step.
//! In [`AdaptMode::Adaptive`] an [`OnlineSource`] blends the offline
//! model with the ratios observed in prior steps and adapts each
//! partition's headroom from its prediction-error band; the step's
//! observed chunk sizes are fed back afterwards, so prediction
//! sharpens (and reservations tighten) as history accumulates.

use crate::adaptive::OnlineSource;
use crate::metrics::{StepMetrics, TimelineReport};
use pfsim::{BandwidthModel, FaultFs};
use predwrite::{
    run_real_with, ExtraSpacePolicy, Method, ModelSource, RankFieldData, RealConfig, RealError,
    ReservationTopology,
};
use ratiomodel::Models;
use std::path::PathBuf;
use std::sync::Arc;
use szlite::Config;

/// Per-step fault-injection hook: maps a step index to the
/// [`FaultFs`] its container I/O runs under (`None` = healthy step).
/// Production runs leave [`TimelineConfig::step_faults`] unset; tests
/// and the fault bench use this to crash or degrade exactly one step
/// of a stream.
#[derive(Clone)]
pub struct StepFaults(pub Arc<dyn Fn(usize) -> Option<Arc<FaultFs>> + Send + Sync>);

impl StepFaults {
    /// Hook from a closure.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn(usize) -> Option<Arc<FaultFs>> + Send + Sync + 'static,
    {
        StepFaults(Arc::new(f))
    }

    /// Inject `faults` into step `step` only.
    pub fn only_step(step: usize, faults: Arc<FaultFs>) -> Self {
        StepFaults::new(move |s| (s == step).then(|| Arc::clone(&faults)))
    }
}

impl std::fmt::Debug for StepFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StepFaults(..)")
    }
}

// Historically defined here; now shared with the discrete-event scale
// simulator (`predwrite::sim::simulate_stream`), which accepts the
// same mode without this crate's real-I/O machinery.
pub use predwrite::AdaptMode;

/// Configuration of a timeline run.
#[derive(Debug, Clone)]
pub struct TimelineConfig {
    /// Number of timesteps to stream.
    pub steps: usize,
    /// Write method per step ([`Method::Overlap`] or
    /// [`Method::OverlapReorder`] exercise the predictive path).
    pub method: Method,
    /// Per-field compression configuration.
    pub configs: Vec<Config>,
    /// Offline-fitted models (the prediction baseline in both modes).
    pub models: Models,
    /// Static extra-space policy (and the adaptive mode's warm-up
    /// fallback).
    pub policy: ExtraSpacePolicy,
    /// Bandwidth model for the write throttle.
    pub bandwidth: BandwidthModel,
    /// Throttle scale (see [`RealConfig::throttle_scale`]).
    pub throttle_scale: f64,
    /// Compression/decode workers per rank (see
    /// [`RealConfig::sz_threads`]).
    pub sz_threads: usize,
    /// Prediction/headroom mode.
    pub mode: AdaptMode,
    /// Shape of each step's reservation collective (see
    /// [`ReservationTopology`]; layouts are identical either way).
    pub reservation: ReservationTopology,
    /// Read back and bound-check every step's file (the step fails on
    /// a violation).
    pub verify: bool,
    /// Directory the per-step container files are written into
    /// (created if missing).
    pub dir: PathBuf,
    /// Keep the step files on disk (default workflows delete each file
    /// once its metrics are collected, like a rotating checkpoint).
    /// Keeping files also persists a predictor sidecar per adaptive
    /// step, which is what makes crash recovery
    /// ([`crate::recovery::resume_timeline`]) possible.
    pub keep_files: bool,
    /// Optional fault-injection hook consulted once per step; the
    /// returned [`FaultFs`] is attached to that step's container.
    pub step_faults: Option<StepFaults>,
}

impl TimelineConfig {
    /// A small, fast configuration for tests and examples: `steps`
    /// streamed checkpoints of `nfields` fields at relative bound
    /// 1e-3, lightly throttled, verified, files deleted after each
    /// step.
    pub fn quick(steps: usize, nfields: usize, mode: AdaptMode, dir: PathBuf) -> Self {
        TimelineConfig {
            steps,
            method: Method::Overlap,
            configs: vec![Config::rel(1e-3); nfields],
            models: Models::with_cthr(50e6),
            policy: ExtraSpacePolicy::default(),
            bandwidth: BandwidthModel::tiny_for_tests(),
            throttle_scale: 1.0,
            sz_threads: 1,
            mode,
            reservation: ReservationTopology::Flat,
            verify: true,
            dir,
            keep_files: false,
            step_faults: None,
        }
    }

    /// Container path of one step's checkpoint.
    pub fn step_path(&self, step: usize) -> PathBuf {
        self.dir.join(format!("step-{step:04}.h5l"))
    }

    /// Predictor-sidecar path of one step's checkpoint.
    pub fn sidecar_path(&self, step: usize) -> PathBuf {
        crate::sidecar::sidecar_path(&self.step_path(step))
    }
}

/// Stream `cfg.steps` checkpoints, pulling each step's partitioned
/// data from `step_data(step)` (shape `data[rank][field]`, uniform
/// across steps). The callback may return owned data (generating each
/// step on the fly) or a borrow of pre-generated steps — e.g.
/// `|s| &data[s]` when comparing modes over identical inputs.
///
/// Returns the per-step metrics; any engine or verification failure
/// aborts the stream with the failing step's error.
pub fn run_timeline<F, D>(cfg: &TimelineConfig, step_data: F) -> Result<TimelineReport, RealError>
where
    F: FnMut(usize) -> D,
    D: std::borrow::Borrow<Vec<Vec<RankFieldData>>>,
{
    run_timeline_resumed(cfg, 0, None, step_data)
}

/// [`run_timeline`] starting at `start_step` with optional pre-warmed
/// adaptation state — the restart half of crash recovery. Steps below
/// `start_step` are assumed to already exist on disk (or to be
/// deliberately skipped); their metrics are not re-collected. When
/// `initial_online` is `Some`, adaptive steps resume from that
/// predictor history instead of a cold warm-up.
pub fn run_timeline_resumed<F, D>(
    cfg: &TimelineConfig,
    start_step: usize,
    initial_online: Option<OnlineSource>,
    mut step_data: F,
) -> Result<TimelineReport, RealError>
where
    F: FnMut(usize) -> D,
    D: std::borrow::Borrow<Vec<Vec<RankFieldData>>>,
{
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| RealError(format!("timeline: create {}: {e}", cfg.dir.display())))?;
    let mut online: Option<OnlineSource> = initial_online;
    if let (AdaptMode::Static, Some(_)) = (&cfg.mode, &online) {
        return Err(RealError(
            "timeline: online state supplied for a static-mode stream".into(),
        ));
    }
    let mut steps = Vec::with_capacity(cfg.steps.saturating_sub(start_step));
    // One engine config serves the whole stream; only the output path
    // changes per step, so the per-field Config list is cloned once,
    // not once per timestep.
    let mut rc = RealConfig {
        method: cfg.method,
        configs: cfg.configs.clone(),
        models: cfg.models,
        policy: cfg.policy,
        bandwidth: cfg.bandwidth,
        throttle_scale: cfg.throttle_scale,
        sz_threads: cfg.sz_threads,
        verify: cfg.verify,
        path: PathBuf::new(),
        reservation: cfg.reservation,
        faults: None,
    };
    for step in start_step..cfg.steps {
        let data = step_data(step);
        let data = data.borrow();
        let nranks = data.len();
        let nfields = data.first().map_or(0, Vec::len);
        rc.path = cfg.step_path(step);
        rc.faults = cfg.step_faults.as_ref().and_then(|h| (h.0)(step));
        // Flight-recorder baseline: per-step figures are deltas of the
        // process-global obs metrics, and the queue gauge's high-water
        // mark restarts so it reports this step's maximum only.
        let metrics_before = obs::snapshot();
        obs::gauge("h5.asyncq.depth").reset_high_water();
        let step_span = obs::span_arg("timeline.step", step as u64);
        let (result, obs) = match &cfg.mode {
            AdaptMode::Static => run_real_with(
                data,
                &rc,
                &ModelSource {
                    models: &cfg.models,
                },
            )?,
            AdaptMode::Adaptive(ocfg) => {
                if online.is_none() {
                    online = Some(OnlineSource::new(nranks, nfields, cfg.models, *ocfg));
                }
                let src = online.as_mut().expect("just initialized");
                if src.nranks() != nranks || src.nfields() != nfields {
                    return Err(RealError(format!(
                        "timeline: step {step} changed shape to {nranks}×{nfields} \
                         (stream started at {}×{})",
                        src.nranks(),
                        src.nfields()
                    )));
                }
                let out = run_real_with(data, &rc, &*src)?;
                src.observe_run(&out.1);
                out
            }
        };
        drop(step_span);
        let mean_rel_err = match (&cfg.mode, &online) {
            (AdaptMode::Adaptive(_), Some(src)) => src.predictor().mean_rel_err(),
            _ => step_mean_rel_err(&obs),
        };
        let m = StepMetrics::collect(step, result, &obs, mean_rel_err);
        if cfg.keep_files {
            // Persist the post-step adaptation state beside the
            // container: a restart after this step resumes prediction
            // with the same history the uninterrupted stream has.
            if let Some(src) = &online {
                crate::sidecar::save_sidecar(
                    &cfg.sidecar_path(step),
                    src.nranks(),
                    src.nfields(),
                    src.predictor(),
                )
                .map_err(|e| RealError(format!("timeline: step {step} sidecar: {e}")))?;
            }
            // Flight record beside the sidecar: byte fields mirror
            // StepMetrics exactly, counters are per-step deltas, so a
            // post-crash reader sees what this step was doing.
            let rec = step_flight(&m, &metrics_before);
            obs::flight::write_step(&obs::flight::flight_path(&rc.path), &rec)
                .map_err(|e| RealError(format!("timeline: step {step} flight record: {e}")))?;
        } else {
            let _ = std::fs::remove_file(&rc.path);
        }
        steps.push(m);
    }
    obs::trace::export_env()
        .map_err(|e| RealError(format!("timeline: chrome-trace export: {e}")))?;
    Ok(TimelineReport {
        mode: cfg.mode.label().to_string(),
        steps,
    })
}

/// Assemble one step's flight record from its collected metrics and
/// the obs-metrics snapshot taken before the step ran.
fn step_flight(m: &StepMetrics, before: &obs::Snapshot) -> obs::StepFlight {
    let after = obs::snapshot();
    let queue_hwm = after
        .gauges
        .get("h5.asyncq.depth")
        .map_or(0, |&(_, hwm)| hwm.max(0)) as u64;
    obs::StepFlight {
        step: m.step as u64,
        reserved_bytes: m.reserved_bytes,
        waste_bytes: m.waste_bytes,
        predicted_bytes: m.predicted_bytes,
        actual_bytes: m.actual_bytes,
        overflow_bytes: m.result.overflow_bytes,
        overflow_parts: m.result.n_overflow as u64,
        raw_bytes: m.result.raw_bytes,
        file_bytes: m.result.file_bytes,
        collective_wire_bytes: after.counter_delta(before, "real.reservation_wire_bytes"),
        predict_secs: m.result.breakdown.predict,
        planner_secs: m.result.breakdown.allgather,
        compress_secs: m.result.breakdown.compress,
        write_secs: m.result.breakdown.write,
        overflow_secs: m.result.breakdown.overflow,
        verify_secs: m.result.breakdown.verify,
        total_secs: m.result.total_time,
        queue_depth_max: queue_hwm,
        retries: after.counter_delta(before, "pfsim.faults.retries"),
        transient_faults: after.counter_delta(before, "pfsim.faults.transient"),
        escalations: after.counter_delta(before, "pfsim.faults.escalations"),
        mean_rel_err: m.mean_rel_err,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
    }
}

/// Mean relative prediction error of one step's partitions (the
/// static mode has no EWMA, so report the instantaneous error).
fn step_mean_rel_err(obs: &predwrite::RunObservations) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for o in obs.iter().flatten() {
        if o.actual > 0 {
            sum += (o.predicted as f64 - o.actual as f64).abs() / o.actual as f64;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// [`run_timeline`] over a [`workloads::SnapshotStream`]: generates
/// and partitions each step's snapshot (3-D decomposition for grid
/// streams, uniform 1-D splits for particle streams).
pub fn run_stream(
    cfg: &TimelineConfig,
    stream: &workloads::SnapshotStream,
    nranks: usize,
) -> Result<TimelineReport, RealError> {
    run_timeline(cfg, |step| {
        crate::data::partition_stream_step(stream, step, nranks)
    })
}
