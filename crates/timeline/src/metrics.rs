//! Per-step and per-run accounting of a timeline stream.

use predwrite::{RunObservations, RunResult};

/// What one streamed checkpoint cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// Timestep index.
    pub step: usize,
    /// The underlying engine result (timings, file size, overflows).
    pub result: RunResult,
    /// Bytes reserved across all partitions.
    pub reserved_bytes: u64,
    /// Reserved bytes left unused — the extra-space waste the
    /// adaptive headroom exists to shrink.
    pub waste_bytes: u64,
    /// Sum of predicted compressed sizes.
    pub predicted_bytes: u64,
    /// Sum of actual compressed sizes.
    pub actual_bytes: u64,
    /// Mean relative prediction error: the EWMA-tracked error after
    /// feedback in adaptive mode, the step's instantaneous error in
    /// static mode.
    pub mean_rel_err: f64,
}

impl StepMetrics {
    /// Derive one step's metrics from the engine output.
    pub fn collect(
        step: usize,
        result: RunResult,
        obs: &RunObservations,
        mean_rel_err: f64,
    ) -> Self {
        let mut reserved = 0u64;
        let mut waste = 0u64;
        let mut predicted = 0u64;
        let mut actual = 0u64;
        for o in obs.iter().flatten() {
            reserved += o.reserved;
            // Bytes of the reservation the partition did not fill (an
            // overflowing partition fills it exactly).
            let in_slot = o.actual - o.overflow;
            waste += o.reserved.saturating_sub(in_slot);
            predicted += o.predicted;
            actual += o.actual;
        }
        StepMetrics {
            step,
            result,
            reserved_bytes: reserved,
            waste_bytes: waste,
            predicted_bytes: predicted,
            actual_bytes: actual,
            mean_rel_err,
        }
    }
}

/// Aggregate outcome of one timeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// [`crate::AdaptMode`] label the run used.
    pub mode: String,
    /// One entry per streamed step, in step order.
    pub steps: Vec<StepMetrics>,
}

impl TimelineReport {
    /// Cumulative extra-space waste across the stream.
    pub fn total_waste(&self) -> u64 {
        self.steps.iter().map(|s| s.waste_bytes).sum()
    }

    /// Total overflow-redirection events across the stream.
    pub fn total_overflows(&self) -> usize {
        self.steps.iter().map(|s| s.result.n_overflow).sum()
    }

    /// Total bytes redirected to overflow regions.
    pub fn total_overflow_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.result.overflow_bytes).sum()
    }

    /// Total container-file bytes written.
    pub fn total_file_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.result.file_bytes).sum()
    }

    /// Total actual compressed bytes.
    pub fn total_compressed_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.result.compressed_bytes).sum()
    }

    /// Sum of per-step wall clocks (slowest rank each step).
    pub fn total_time(&self) -> f64 {
        self.steps.iter().map(|s| s.result.total_time).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predwrite::{Breakdown, FieldObservation, Method};

    fn result(n_overflow: usize, overflow_bytes: u64, file_bytes: u64) -> RunResult {
        RunResult {
            method: Method::Overlap,
            total_time: 1.0,
            breakdown: Breakdown::default(),
            raw_bytes: 4000,
            compressed_bytes: 1000,
            file_bytes,
            n_overflow,
            overflow_bytes,
        }
    }

    #[test]
    fn waste_counts_unused_reservation_only() {
        let obs: RunObservations = vec![vec![
            // Fits with 50 spare.
            FieldObservation {
                predicted: 100,
                model_bytes: 100,
                reserved: 150,
                actual: 100,
                overflow: 0,
            },
            // Overflows: slot filled exactly, zero waste.
            FieldObservation {
                predicted: 100,
                model_bytes: 100,
                reserved: 120,
                actual: 200,
                overflow: 80,
            },
        ]];
        let m = StepMetrics::collect(0, result(1, 80, 500), &obs, 0.25);
        assert_eq!(m.reserved_bytes, 270);
        assert_eq!(m.waste_bytes, 50);
        assert_eq!(m.predicted_bytes, 200);
        assert_eq!(m.actual_bytes, 300);
    }

    #[test]
    fn report_totals_sum_over_steps() {
        let obs: RunObservations = vec![vec![FieldObservation {
            predicted: 100,
            model_bytes: 100,
            reserved: 130,
            actual: 100,
            overflow: 0,
        }]];
        let steps = vec![
            StepMetrics::collect(0, result(0, 0, 400), &obs, 0.0),
            StepMetrics::collect(1, result(2, 60, 450), &obs, 0.0),
        ];
        let rep = TimelineReport {
            mode: "static".into(),
            steps,
        };
        assert_eq!(rep.total_waste(), 60);
        assert_eq!(rep.total_overflows(), 2);
        assert_eq!(rep.total_overflow_bytes(), 60);
        assert_eq!(rep.total_file_bytes(), 850);
        assert!((rep.total_time() - 2.0).abs() < 1e-12);
    }
}
