//! The adaptive prediction source: offline models blended with the
//! online per-partition bias correction.
//!
//! [`OnlineSource`] implements [`predwrite::PredictionSource`], so the
//! real engine's predict phase transparently swaps from the static
//! offline models to history-corrected predictions with per-partition
//! adaptive headroom. The engine threads read it immutably during a
//! step; between steps the timeline engine feeds the step's
//! [`RunObservations`] back via [`OnlineSource::observe_run`].

use predwrite::{PredictionSource, RunObservations, SourceEstimate};
use ratiomodel::{BandScope, Models, OnlineConfig, OnlinePredictor};
use szlite::{Config, Dims};

/// Streaming prediction source: one online cell per (rank, field).
#[derive(Debug, Clone)]
pub struct OnlineSource {
    models: Models,
    online: OnlinePredictor,
    nranks: usize,
    nfields: usize,
}

impl OnlineSource {
    /// Source tracking `nranks × nfields` partitions. Under
    /// [`BandScope::Field`] the error bands are collective — one per
    /// field, pooled across all its ranks — instead of per-partition
    /// (bias corrections and reservation floors stay per-partition
    /// either way).
    pub fn new(nranks: usize, nfields: usize, models: Models, cfg: OnlineConfig) -> Self {
        let online = match cfg.band_scope {
            BandScope::Partition => OnlinePredictor::new(nranks * nfields, cfg),
            // Cells are indexed rank·nfields + field, so grouping by
            // cell % nfields pools exactly the ranks of one field.
            BandScope::Field => OnlinePredictor::with_band_groups(nranks * nfields, nfields, cfg),
        };
        OnlineSource {
            models,
            online,
            nranks,
            nfields,
        }
    }

    /// Source resuming from a previously persisted predictor (e.g. a
    /// sidecar written by an earlier run). The predictor must track
    /// exactly `nranks × nfields` cells — a mismatch means the sidecar
    /// belongs to a differently shaped stream and must not be reused.
    pub fn with_predictor(
        nranks: usize,
        nfields: usize,
        models: Models,
        online: OnlinePredictor,
    ) -> Result<Self, String> {
        if online.n_cells() != nranks * nfields {
            return Err(format!(
                "online state tracks {} cells, stream shape is {nranks}×{nfields}",
                online.n_cells()
            ));
        }
        Ok(OnlineSource {
            models,
            online,
            nranks,
            nfields,
        })
    }

    /// Ranks tracked.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Fields tracked per rank.
    pub fn nfields(&self) -> usize {
        self.nfields
    }

    /// The underlying online predictor (error statistics live here).
    pub fn predictor(&self) -> &OnlinePredictor {
        &self.online
    }

    fn cell(&self, rank: usize, field: usize) -> usize {
        rank * self.nfields + field
    }

    /// Fold one completed step's observations into every cell.
    pub fn observe_run(&mut self, obs: &RunObservations) {
        assert_eq!(obs.len(), self.nranks, "observation rank count changed");
        for (r, row) in obs.iter().enumerate() {
            assert_eq!(row.len(), self.nfields, "observation field count changed");
            for (f, o) in row.iter().enumerate() {
                self.online
                    .observe(self.cell(r, f), o.model_bytes, o.predicted, o.actual);
            }
        }
    }
}

impl PredictionSource for OnlineSource {
    fn estimate(
        &self,
        rank: usize,
        field: usize,
        data: &[f32],
        dims: &Dims,
        cfg: &Config,
    ) -> Result<SourceEstimate, String> {
        let est = ratiomodel::estimate_partition(data, dims, cfg, &self.models)
            .map_err(|e| e.to_string())?;
        let p = self.online.predict(self.cell(rank, field), est.bytes);
        let raw_bytes = (data.len() * 4) as f64;
        // The blend rescales the predicted size; write time scales
        // with it, compression time does not (it depends on the data,
        // not on what we predict about it).
        let scale = p.bytes as f64 / est.bytes.max(1) as f64;
        Ok(SourceEstimate {
            bytes: p.bytes,
            ratio: raw_bytes / p.bytes.max(1) as f64,
            comp_time: est.comp_time,
            write_time: est.write_time * scale,
            model_bytes: est.bytes,
            headroom: p.headroom,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predwrite::FieldObservation;

    #[test]
    fn observations_feed_the_right_cells() {
        let mut src = OnlineSource::new(2, 3, Models::with_cthr(40e6), OnlineConfig::default());
        let obs: RunObservations = (0..2)
            .map(|r| {
                (0..3)
                    .map(|f| FieldObservation {
                        predicted: 1000,
                        model_bytes: 1000,
                        reserved: 1250,
                        actual: 1000 + (r * 3 + f) as u64,
                        overflow: 0,
                    })
                    .collect()
            })
            .collect();
        src.observe_run(&obs);
        for r in 0..2 {
            for f in 0..3 {
                let st = src.predictor().stats(r * 3 + f);
                assert_eq!(st.n_obs, 1);
                assert_eq!(st.last_observed, 1000 + (r * 3 + f) as u64);
            }
        }
    }

    #[test]
    fn field_scope_creates_one_band_group_per_field() {
        let cfg = OnlineConfig {
            band_scope: BandScope::Field,
            ..OnlineConfig::default()
        };
        let src = OnlineSource::new(4, 3, Models::with_cthr(40e6), cfg);
        assert_eq!(src.predictor().band_groups(), 3);
        assert_eq!(src.predictor().n_cells(), 12);
        let per_cell = OnlineSource::new(4, 3, Models::with_cthr(40e6), OnlineConfig::default());
        assert_eq!(per_cell.predictor().band_groups(), 0);
    }

    #[test]
    #[should_panic(expected = "rank count changed")]
    fn rejects_mismatched_observation_shape() {
        let mut src = OnlineSource::new(2, 3, Models::with_cthr(40e6), OnlineConfig::default());
        src.observe_run(&vec![vec![FieldObservation::default(); 3]]);
    }
}
