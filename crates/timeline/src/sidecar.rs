//! Predictor-state sidecars: the online adaptation state persisted
//! beside each step's container.
//!
//! A crash between steps loses the [`ratiomodel::OnlinePredictor`]'s
//! accumulated history, which would force a resumed stream back
//! through warm-up with the static policy's wide reservations. The
//! timeline engine therefore snapshots the predictor after every
//! adaptive step into a tiny checksummed sidecar
//! (`step-NNNN.h5l.pred`), and [`crate::recovery::resume_timeline`]
//! reloads the newest valid one, so a resumed stream predicts — and
//! reserves — like the uninterrupted run within a step or two.
//!
//! Framing: `"TLSC"` magic, version byte, `nranks`/`nfields` varints,
//! payload length varint, the [`OnlinePredictor::to_state_bytes`]
//! payload, then a CRC32C over everything before it. A sidecar that
//! fails any of these checks is treated as absent (cold start), never
//! trusted partially.

use h5lite::crc32c;
use ratiomodel::OnlinePredictor;
use std::io::Write;
use std::path::{Path, PathBuf};
use szlite::stream::{get_varint, put_u32, put_varint};

/// Sidecar magic: "TLSC" (TimeLine SideCar).
const MAGIC: &[u8; 4] = b"TLSC";
/// Current sidecar framing version.
const VERSION: u8 = 1;

/// Sidecar path of a step container: `<container>.pred`.
pub fn sidecar_path(step_path: &Path) -> PathBuf {
    let mut name = step_path.file_name().unwrap_or_default().to_os_string();
    name.push(".pred");
    step_path.with_file_name(name)
}

/// Persist the predictor state beside a step container. The sidecar is
/// written to a temp file, synced, then renamed into place, so a crash
/// mid-save leaves either the old sidecar or none — never a torn one
/// that happens to pass partial parsing.
pub fn save_sidecar(
    path: &Path,
    nranks: usize,
    nfields: usize,
    predictor: &OnlinePredictor,
) -> std::io::Result<()> {
    let payload = predictor.to_state_bytes();
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, nranks as u64);
    put_varint(&mut out, nfields as u64);
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let crc = crc32c(&out);
    put_u32(&mut out, crc);

    let tmp = path.with_extension("pred.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Load and validate a sidecar. Returns the stream shape it was saved
/// for and the reconstructed predictor; any framing, checksum or
/// payload defect is an `Err` (callers fall back to a cold start).
pub fn load_sidecar(path: &Path) -> Result<(usize, usize, OnlinePredictor), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("sidecar {}: {e}", path.display()))?;
    let err = |what: &str| format!("sidecar {}: {what}", path.display());
    if bytes.len() < MAGIC.len() + 1 + 4 {
        return Err(err("too short"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let recorded = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte tail"));
    let actual = crc32c(body);
    if recorded != actual {
        return Err(err(&format!(
            "checksum mismatch (recorded {recorded:#010x}, computed {actual:#010x})"
        )));
    }
    if &body[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    if body[4] != VERSION {
        return Err(err(&format!("unsupported version {}", body[4])));
    }
    let mut pos = 5usize;
    let nranks = get_varint(body, &mut pos).map_err(|_| err("truncated nranks"))? as usize;
    let nfields = get_varint(body, &mut pos).map_err(|_| err("truncated nfields"))? as usize;
    let plen = get_varint(body, &mut pos).map_err(|_| err("truncated payload length"))? as usize;
    if body.len() - pos != plen {
        return Err(err("payload length mismatch"));
    }
    let predictor = OnlinePredictor::from_state_bytes(&body[pos..])
        .map_err(|e| format!("sidecar {}: {e}", path.display()))?;
    if predictor.n_cells() != nranks * nfields {
        return Err(err("cell count does not match recorded shape"));
    }
    Ok((nranks, nfields, predictor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratiomodel::OnlineConfig;
    use testutil::TempPath;

    fn warmed(nranks: usize, nfields: usize) -> OnlinePredictor {
        let mut p = OnlinePredictor::new(nranks * nfields, OnlineConfig::default());
        for step in 0..4u64 {
            for cell in 0..nranks * nfields {
                p.observe(cell, 1000, 990 + step, 970 + 3 * cell as u64 + step);
            }
        }
        p
    }

    #[test]
    fn sidecar_roundtrips_predictor_state() {
        let guard = TempPath::new("timeline-sidecar-rt", "pred");
        let p = warmed(2, 3);
        save_sidecar(guard.path(), 2, 3, &p).unwrap();
        let (nr, nf, q) = load_sidecar(guard.path()).unwrap();
        assert_eq!((nr, nf), (2, 3));
        for cell in 0..6 {
            assert_eq!(q.stats(cell), p.stats(cell));
            assert_eq!(q.predict(cell, 1000), p.predict(cell, 1000));
        }
    }

    #[test]
    fn corrupt_sidecar_rejected() {
        let guard = TempPath::new("timeline-sidecar-bad", "pred");
        save_sidecar(guard.path(), 2, 2, &warmed(2, 2)).unwrap();
        let mut bytes = std::fs::read(guard.path()).unwrap();

        // A flipped payload byte must trip the CRC.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(guard.path(), &bytes).unwrap();
        let e = load_sidecar(guard.path()).unwrap_err();
        assert!(e.contains("checksum"), "{e}");

        // A truncated sidecar must be rejected, not partially parsed.
        bytes[mid] ^= 0x10;
        std::fs::write(guard.path(), &bytes[..bytes.len() - 5]).unwrap();
        assert!(load_sidecar(guard.path()).is_err());

        // A shape-inconsistent sidecar (recorded shape disagrees with
        // the payload's cell count) must be rejected even with a
        // valid checksum — rebuild it with a lying header.
        let p = warmed(2, 2);
        let payload = p.to_state_bytes();
        let mut forged = Vec::new();
        forged.extend_from_slice(b"TLSC");
        forged.push(1);
        szlite::stream::put_varint(&mut forged, 3); // claims 3 ranks
        szlite::stream::put_varint(&mut forged, 2);
        szlite::stream::put_varint(&mut forged, payload.len() as u64);
        forged.extend_from_slice(&payload);
        let crc = crc32c(&forged);
        szlite::stream::put_u32(&mut forged, crc);
        std::fs::write(guard.path(), &forged).unwrap();
        let e = load_sidecar(guard.path()).unwrap_err();
        assert!(e.contains("shape"), "{e}");
    }

    #[test]
    fn missing_sidecar_is_an_error_not_a_panic() {
        let e = load_sidecar(Path::new("/nonexistent/step-0000.h5l.pred")).unwrap_err();
        assert!(e.contains("sidecar"));
    }

    #[test]
    fn sidecar_path_appends_suffix() {
        assert_eq!(
            sidecar_path(Path::new("/tmp/x/step-0007.h5l")),
            PathBuf::from("/tmp/x/step-0007.h5l.pred")
        );
    }
}
