//! Partitioning of workload snapshots into per-rank engine inputs.
//!
//! Shared by the timeline engine's stream driver, the benches and the
//! examples — the one place that turns a [`Dataset`] into the
//! `data[rank][field]` shape [`predwrite::run_real`] consumes.

use predwrite::RankFieldData;
use szlite::Dims;
use workloads::{split_1d, Dataset, Decomposition, SnapshotStream};

/// Decompose a 3-D grid snapshot into `nranks` contiguous sub-blocks
/// per field. Every field must share the first field's (3-D) extents,
/// and the process grid must divide them (the generators produce
/// power-of-two sides, so powers of two always work).
pub fn partition_3d(ds: &Dataset, nranks: usize) -> Vec<Vec<RankFieldData>> {
    let dims = &ds.fields.first().expect("dataset has no fields").dims;
    assert_eq!(dims.len(), 3, "partition_3d requires 3-D fields");
    let domain = [dims[0], dims[1], dims[2]];
    let dec = Decomposition::new(nranks, domain);
    let bd = dec.block;
    (0..nranks)
        .map(|r| {
            ds.fields
                .iter()
                .map(|f| RankFieldData {
                    name: f.name.clone(),
                    data: dec.extract(f, r),
                    dims: Dims::d3(bd[0], bd[1], bd[2]),
                })
                .collect()
        })
        .collect()
}

/// Split a 1-D (particle) snapshot into `nranks` equal partitions per
/// field, truncating the remainder so chunks stay uniform (the chunked
/// dataset layout requires equal per-rank partition sizes).
pub fn partition_1d(ds: &Dataset, nranks: usize) -> Vec<Vec<RankFieldData>> {
    let n = ds.fields.first().expect("dataset has no fields").len();
    let per_rank = n / nranks;
    assert!(per_rank > 0, "more ranks than points");
    let splits: Vec<Vec<Vec<f32>>> = ds.fields.iter().map(|f| split_1d(f, nranks)).collect();
    (0..nranks)
        .map(|r| {
            ds.fields
                .iter()
                .zip(&splits)
                .map(|(f, parts)| RankFieldData {
                    name: f.name.clone(),
                    data: parts[r][..per_rank].to_vec(),
                    dims: Dims::d1(per_rank),
                })
                .collect()
        })
        .collect()
}

/// Generate and partition one stream step: 1-D splits for particle
/// streams, 3-D decomposition for grid streams.
pub fn partition_stream_step(
    stream: &SnapshotStream,
    step: usize,
    nranks: usize,
) -> Vec<Vec<RankFieldData>> {
    let ds = stream.snapshot(step);
    if stream.is_particle() {
        partition_1d(&ds, nranks)
    } else {
        partition_3d(&ds, nranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{nyx, vpic, NyxParams, VpicParams};

    #[test]
    fn partition_3d_covers_every_point() {
        let ds = nyx::snapshot(NyxParams::with_side(8));
        let parts = partition_3d(&ds, 8);
        assert_eq!(parts.len(), 8);
        let total: usize = parts.iter().map(|r| r[0].data.len()).sum();
        assert_eq!(total, 512);
        assert!(parts.iter().all(|r| r.len() == 6));
    }

    #[test]
    fn partition_1d_truncates_to_uniform_chunks() {
        let ds = vpic::snapshot(VpicParams::with_particles(1001));
        let parts = partition_1d(&ds, 4);
        assert_eq!(parts.len(), 4);
        for r in &parts {
            assert_eq!(r.len(), 8);
            assert!(r.iter().all(|f| f.data.len() == 250));
        }
    }

    #[test]
    fn stream_step_picks_the_right_split() {
        let parts = partition_stream_step(&SnapshotStream::nyx(8), 0, 8);
        assert_eq!(parts[0][0].dims.extents(), &[4, 4, 4][..]);
        let parts = partition_stream_step(&SnapshotStream::vpic(512), 0, 4);
        assert_eq!(parts[0][0].dims.extents(), &[128][..]);
    }
}
