//! Crash-mid-step recovery: restart a checkpoint stream from what
//! survives on disk.
//!
//! A stream killed mid-step leaves the step directory in one of a few
//! shapes: the newest container may be torn (created but never
//! closed, so its superblock is still zeroed), bit-flipped, truncated,
//! or fine but missing its predictor sidecar. [`resume_timeline`]
//! classifies all of it with the container scrubber
//! ([`h5lite::scrub`]), quarantines anything damaged, picks the first
//! step that needs (re)writing, reloads the newest valid sidecar so
//! adaptation history survives the crash, and hands off to
//! [`run_timeline_resumed`] to keep streaming.
//!
//! Recovery only trusts what it can verify: a chunk is only accepted
//! when its recorded CRC32C matches, a sidecar only when its framing
//! checksum and shape check out, and (with [`TimelineConfig::verify`])
//! every surviving step is additionally decoded and bound-checked
//! against the original data before it is allowed to stand.

use crate::adaptive::OnlineSource;
use crate::engine::{run_timeline_resumed, AdaptMode, TimelineConfig};
use crate::metrics::TimelineReport;
use crate::sidecar;
use h5lite::scrub::{quarantine, scrub, ContainerState};
use predwrite::{verify_file, RankFieldData, RealError};
use std::path::PathBuf;

/// What [`resume_timeline`] found and did.
#[derive(Debug)]
pub struct ResumeReport {
    /// Steps whose containers scrubbed clean (CRC-verified) and, when
    /// verification is on, decoded within bound. These are kept as-is.
    pub surviving: Vec<usize>,
    /// Damaged containers moved aside as `<name>.quarantined`.
    pub quarantined: Vec<PathBuf>,
    /// First step the resumed stream (re)writes.
    pub resume_from: usize,
    /// Step whose sidecar seeded the resumed predictor (`None` =
    /// static mode, no usable sidecar, or nothing survived).
    pub sidecar_step: Option<usize>,
    /// Newest readable flight-recorder record found on disk before the
    /// resume — what the dying run was doing (`None` when no step left
    /// a readable `*.obs.jsonl`). Flight records of quarantined steps
    /// still count: the container may be torn while its recorder line
    /// is intact, and that is exactly the post-mortem signal.
    pub last_flight: Option<obs::StepFlight>,
    /// Metrics of the resumed tail (`steps[0]` is `resume_from`).
    pub report: TimelineReport,
}

/// Newest readable flight record among steps `0..steps` of a run
/// directory — scanned newest-first so the answer is what the most
/// recent (possibly dying) step recorded. Unreadable or missing files
/// are skipped; torn lines inside a file are tolerated by the reader.
pub fn newest_flight(cfg: &TimelineConfig) -> Option<obs::StepFlight> {
    (0..cfg.steps).rev().find_map(|step| {
        let path = obs::flight_path(&cfg.step_path(step));
        obs::read_flight(&path)
            .ok()
            .and_then(|scan| scan.records.into_iter().last())
    })
}

/// Scan `cfg.dir`, quarantine damaged step containers, and resume the
/// stream from the first missing or damaged step. Expects the stream
/// to have been running with [`TimelineConfig::keep_files`] (rotating
/// streams leave nothing to recover).
///
/// `step_data` must regenerate the same per-step data the original
/// run used — surviving steps are (optionally) re-verified against
/// it, and the resumed tail is written from it.
pub fn resume_timeline<F, D>(
    cfg: &TimelineConfig,
    mut step_data: F,
) -> Result<ResumeReport, RealError>
where
    F: FnMut(usize) -> D,
    D: std::borrow::Borrow<Vec<Vec<RankFieldData>>>,
{
    let mut surviving = Vec::new();
    let mut quarantined = Vec::new();
    let mut resume_from = cfg.steps;
    for step in 0..cfg.steps {
        let path = cfg.step_path(step);
        if !path.exists() {
            resume_from = resume_from.min(step);
            continue;
        }
        let report = scrub(&path)
            .map_err(|e| RealError(format!("resume: scrub {}: {e}", path.display())))?;
        let clean = report.container == ContainerState::Ok && report.is_clean();
        if !clean {
            let dest = quarantine(&path)
                .map_err(|e| RealError(format!("resume: quarantine {}: {e}", path.display())))?;
            quarantined.push(dest);
            resume_from = resume_from.min(step);
            continue;
        }
        if resume_from == cfg.steps {
            surviving.push(step);
        }
        // Clean steps after a gap are simply overwritten by the
        // resumed stream; only the contiguous clean prefix survives.
    }
    resume_from = resume_from.min(cfg.steps);

    // Decode-within-bound check on every surviving step: a checksum
    // can only prove the bytes are what the writer recorded, not that
    // the writer finished the step coherently. Any step that fails is
    // quarantined and the stream restarts from it.
    if cfg.verify {
        let mut verified_up_to = surviving.len();
        for (i, &step) in surviving.iter().enumerate() {
            let data = step_data(step);
            let ok = verify_file(
                &cfg.step_path(step),
                data.borrow(),
                Some(&cfg.configs),
                cfg.sz_threads,
            )
            .map(|r| r.ok())
            .unwrap_or(false);
            if !ok {
                let dest = quarantine(cfg.step_path(step))
                    .map_err(|e| RealError(format!("resume: quarantine step {step}: {e}")))?;
                quarantined.push(dest);
                verified_up_to = i;
                break;
            }
        }
        if verified_up_to < surviving.len() {
            resume_from = surviving[verified_up_to];
            surviving.truncate(verified_up_to);
        }
    }

    // Reload adaptation history from the newest valid sidecar among
    // the surviving steps. A missing or damaged sidecar just falls
    // back to the next-older one, and finally to a cold start — the
    // predictor re-converges within a couple of steps either way.
    let mut sidecar_step = None;
    let mut online = None;
    if matches!(cfg.mode, AdaptMode::Adaptive(_)) {
        for &step in surviving.iter().rev() {
            match sidecar::load_sidecar(&cfg.sidecar_path(step)) {
                Ok((nranks, nfields, predictor)) => {
                    match OnlineSource::with_predictor(nranks, nfields, cfg.models, predictor) {
                        Ok(src) => {
                            sidecar_step = Some(step);
                            online = Some(src);
                            break;
                        }
                        Err(_) => continue,
                    }
                }
                Err(_) => continue,
            }
        }
    }

    // Capture the black box before the resumed tail overwrites it.
    let last_flight = newest_flight(cfg);

    let report = run_timeline_resumed(cfg, resume_from, online, step_data)?;
    Ok(ResumeReport {
        surviving,
        quarantined,
        resume_from,
        sidecar_step,
        last_flight,
        report,
    })
}
