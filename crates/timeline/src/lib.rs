//! # timeline — timestep-streaming checkpoint engine with online
//! ratio-model adaptation
//!
//! The paper's target workloads (Nyx, VPIC, RTM) don't write one file:
//! they checkpoint a time-evolving simulation over many timesteps, and
//! the predictive-write design pays off most when prediction sharpens
//! with history — timestep *t*'s observed per-field compression ratios
//! are an excellent predictor for timestep *t + 1*. This crate closes
//! that loop on top of the real engine:
//!
//! * [`engine`] — [`run_timeline`] drives
//!   [`predwrite::run_real_with`] across a step sequence, writing one
//!   container file per checkpoint; [`run_stream`] feeds it from a
//!   [`workloads::SnapshotStream`] (deterministically evolving
//!   Nyx/VPIC/RTM snapshots).
//! * [`adaptive`] — [`OnlineSource`] plugs
//!   [`ratiomodel::OnlinePredictor`] into the engine's predict phase:
//!   per-partition EWMA bias correction over observed ratios, plus
//!   error-band-driven extra-space headroom (tight when history is
//!   stable, wide after drift, floored at the last observed size so a
//!   misprediction is recovered from on the very next step).
//! * [`metrics`] — per-step and cumulative accounting: reserved vs.
//!   wasted bytes, overflow-redirection events, prediction error,
//!   wall time. The `bench_timeline` binary compares
//!   [`AdaptMode::Static`] against [`AdaptMode::Adaptive`] on all
//!   three workloads with these numbers.
//! * [`data`] — snapshot → `data[rank][field]` partitioning shared by
//!   the engine, benches and examples.
//!
//! Every step is a pure function of `(seed, step, history)` and the
//! engine inherits the write pipeline's determinism, so streams replay
//! byte-identically at any `sz_threads` worker count.

pub mod adaptive;
pub mod data;
pub mod engine;
pub mod metrics;
pub mod recovery;
pub mod sidecar;

pub use adaptive::OnlineSource;
pub use data::{partition_1d, partition_3d, partition_stream_step};
pub use engine::{
    run_stream, run_timeline, run_timeline_resumed, AdaptMode, StepFaults, TimelineConfig,
};
pub use metrics::{StepMetrics, TimelineReport};
pub use recovery::{newest_flight, resume_timeline, ResumeReport};
pub use sidecar::{load_sidecar, save_sidecar, sidecar_path};
