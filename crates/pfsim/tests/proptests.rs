//! Property tests for the discrete-event I/O engine and the bandwidth
//! model.

use pfsim::{simulate, simulate_concurrent_writes, BandwidthModel, PipelineTask, RankPipeline};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = BandwidthModel> {
    (
        (1e6f64..1e9),  // per_proc_peak
        (1e4f64..1e7),  // half_size
        (1e6f64..1e10), // aggregate_cap
        (0.0f64..1e-2), // latency
    )
        .prop_map(|(p, h, c, l)| BandwidthModel {
            per_proc_peak: p,
            half_size: h,
            aggregate_cap: c,
            latency: l,
            collective_overhead: 1e-3,
            collective_factor: 0.5,
        })
}

fn arb_pipelines() -> impl Strategy<Value = Vec<RankPipeline>> {
    proptest::collection::vec(
        (
            (0.0f64..2.0),
            proptest::collection::vec(((0.0f64..1.0), (0.0f64..50e6)), 0..5),
        )
            .prop_map(|(release, tasks)| RankPipeline {
                release,
                tasks: tasks
                    .into_iter()
                    .map(|(compute, write_bytes)| PipelineTask {
                        compute,
                        write_bytes,
                    })
                    .collect(),
            }),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(96, 0x9F_517A) /* pinned: deterministic CI */)]

    #[test]
    fn simulation_terminates_with_causal_times(ranks in arb_pipelines(), model in arb_model()) {
        let out = simulate(&ranks, &model);
        prop_assert!(out.makespan.is_finite());
        for (r, rp) in ranks.iter().enumerate() {
            let mut prev_compute = rp.release;
            let mut prev_write = rp.release;
            for (t, task) in rp.tasks.iter().enumerate() {
                let tt = out.tasks[r][t];
                // Compute is serial per rank.
                prop_assert!(tt.compute_done >= prev_compute + task.compute - 1e-9);
                // Writes are serial per rank and follow their compute.
                prop_assert!(tt.write_done >= tt.compute_done - 1e-9);
                prop_assert!(tt.write_done >= prev_write - 1e-9);
                prev_compute = tt.compute_done;
                prev_write = tt.write_done;
            }
            prop_assert!(out.rank_finish[r] <= out.makespan + 1e-9);
        }
    }

    #[test]
    fn write_time_at_least_bandwidth_bound(sizes in proptest::collection::vec(1e3f64..100e6, 1..8), model in arb_model()) {
        let (times, makespan) = simulate_concurrent_writes(&sizes, &model);
        let total: f64 = sizes.iter().sum();
        // The aggregate cap is a hard lower bound on the round time.
        prop_assert!(makespan + 1e-9 >= total / model.aggregate_cap);
        // Each write takes at least its own uncontended time.
        for (s, t) in sizes.iter().zip(&times) {
            prop_assert!(*t + 1e-9 >= model.latency + s / model.per_proc_throughput(*s));
        }
    }

    #[test]
    fn more_writers_never_faster(size in 1e5f64..50e6, n in 1usize..6, model in arb_model()) {
        let (_, small) = simulate_concurrent_writes(&vec![size; n], &model);
        let (_, big) = simulate_concurrent_writes(&vec![size; n * 2], &model);
        prop_assert!(big + 1e-9 >= small);
    }

    #[test]
    fn per_proc_throughput_monotone(model in arb_model(), a in 1e3f64..1e8, b in 1e3f64..1e8) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(model.per_proc_throughput(lo) <= model.per_proc_throughput(hi) + 1e-9);
    }
}
