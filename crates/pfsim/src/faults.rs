//! Deterministic fault injection for container I/O.
//!
//! [`FaultFs`] sits between [`SharedFile`](crate::SharedFile) and the
//! OS and injects the failure classes a burst buffer or PFS exhibits
//! at scale: torn tail writes (a crash mid-`pwrite`), silent bit flips
//! (media corruption below the checksum), short reads and transient
//! `EIO`s (contended OSTs, flaky interconnect). Faults are scheduled
//! by **operation index** — the k-th write attempt, the k-th read
//! attempt — from a seeded plan, so a given seed replays the same
//! failure sequence every run. Transient faults consume their op
//! index: the retry is the *next* op, which (unless also scheduled)
//! succeeds — exactly the contract a bounded-retry loop needs for a
//! deterministic test.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Crash mid-write: only the first `keep` bytes of the payload
    /// reach the platter, the op fails permanently, and every later op
    /// on this [`FaultFs`] fails too — the process is "dead".
    TornWrite {
        /// Bytes of the payload that land before the crash.
        keep: u64,
    },
    /// Silent corruption: the payload byte at `byte` (mod payload len)
    /// is XOR-ed with `mask` on its way to disk. The op *succeeds* —
    /// only a checksum can catch this later.
    BitFlip {
        /// Payload byte position to corrupt.
        byte: u64,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Transient `EIO`: the attempt fails with
    /// [`io::ErrorKind::Interrupted`]; a bounded retry is expected to
    /// succeed (the retry consumes the next op index).
    Transient,
    /// A read that returns fewer bytes than asked — surfaced like a
    /// transient fault so exact-read semantics hold after retry.
    ShortRead {
        /// Bytes the kernel "returned" before giving up.
        keep: u64,
    },
}

/// Why an injected fault failed an operation — the typed payload
/// inside the [`io::Error`]s that [`FaultFs`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// Transient fault at op `op`; retrying is appropriate.
    Transient {
        /// Operation index the fault fired at.
        op: u64,
    },
    /// The simulated process crashed at op `op` (torn write); no
    /// retry can succeed.
    Crashed {
        /// Operation index of the crash (or of the op after it).
        op: u64,
    },
    /// Bounded retry was exhausted without the fault clearing.
    RetriesExhausted {
        /// Attempts made before escalating.
        attempts: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Transient { op } => write!(f, "transient injected fault at op {op}"),
            FaultError::Crashed { op } => write!(f, "simulated crash (torn write) at op {op}"),
            FaultError::RetriesExhausted { attempts } => {
                write!(f, "transient fault persisted after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultError {
    /// Extract a `FaultError` from an [`io::Error`] produced by fault
    /// injection, if that is what it wraps.
    pub fn from_io(e: &io::Error) -> Option<&FaultError> {
        e.get_ref().and_then(|inner| inner.downcast_ref())
    }
}

/// Scheduled faults keyed by operation index, write and read planes
/// kept separate.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Write-op index → fault.
    pub write: BTreeMap<u64, Fault>,
    /// Read-op index → fault.
    pub read: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a fault on the `op`-th write attempt.
    pub fn on_write(mut self, op: u64, fault: Fault) -> Self {
        self.write.insert(op, fault);
        self
    }

    /// Schedule a fault on the `op`-th read attempt.
    pub fn on_read(mut self, op: u64, fault: Fault) -> Self {
        self.read.insert(op, fault);
        self
    }

    /// Deterministic pseudo-random plan from a seed: `n_transient`
    /// transient write errors and `n_bitflips` silent bit flips at
    /// distinct op indices below `horizon`, plus an optional torn
    /// write at `torn_at`. The same seed always yields the same plan.
    pub fn seeded(
        seed: u64,
        horizon: u64,
        n_transient: usize,
        n_bitflips: usize,
        torn_at: Option<u64>,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        if let Some(op) = torn_at {
            plan.write.insert(
                op,
                Fault::TornWrite {
                    keep: rng.next_u64() % 4096,
                },
            );
        }
        let horizon = horizon.max(1);
        let mut placed = 0;
        while placed < n_transient {
            let op = rng.next_u64() % horizon;
            if let std::collections::btree_map::Entry::Vacant(e) = plan.write.entry(op) {
                e.insert(Fault::Transient);
                placed += 1;
            }
        }
        let mut placed = 0;
        while placed < n_bitflips {
            let op = rng.next_u64() % horizon;
            if let std::collections::btree_map::Entry::Vacant(e) = plan.write.entry(op) {
                let mask = (rng.next_u64() % 255 + 1) as u8;
                e.insert(Fault::BitFlip {
                    byte: rng.next_u64(),
                    mask,
                });
                placed += 1;
            }
        }
        plan
    }
}

/// SplitMix64 — the tiny seedable generator used for fault schedules
/// (and good enough for them: we only need reproducible dispersion).
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next pseudo-random value. (Named `next_u64` rather than `next`
    /// to avoid colliding with `Iterator::next`.)
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Live counters of what the harness injected and what the retry
/// layer did about it.
#[derive(Debug, Default)]
pub struct FaultStats {
    transient: AtomicU64,
    bit_flips: AtomicU64,
    torn_writes: AtomicU64,
    short_reads: AtomicU64,
    retries: AtomicU64,
    escalations: AtomicU64,
}

/// Process-wide mirrors of the per-`FaultFs` counters. A `FaultFs`
/// dies with its run; the obs registry survives, so the flight
/// recorder and `scrub --json` can report per-step fault deltas even
/// after the harness is gone.
struct ObsFaultCounters {
    transient: &'static obs::Counter,
    bit_flips: &'static obs::Counter,
    torn_writes: &'static obs::Counter,
    short_reads: &'static obs::Counter,
    retries: &'static obs::Counter,
    escalations: &'static obs::Counter,
}

fn obs_counters() -> &'static ObsFaultCounters {
    static C: std::sync::OnceLock<ObsFaultCounters> = std::sync::OnceLock::new();
    C.get_or_init(|| ObsFaultCounters {
        transient: obs::counter("pfsim.faults.transient"),
        bit_flips: obs::counter("pfsim.faults.bit_flips"),
        torn_writes: obs::counter("pfsim.faults.torn_writes"),
        short_reads: obs::counter("pfsim.faults.short_reads"),
        retries: obs::counter("pfsim.faults.retries"),
        escalations: obs::counter("pfsim.faults.escalations"),
    })
}

/// Point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Transient errors injected (write + read planes).
    pub transient: u64,
    /// Silent bit flips injected.
    pub bit_flips: u64,
    /// Torn writes injected (0 or 1 per `FaultFs`).
    pub torn_writes: u64,
    /// Short reads injected.
    pub short_reads: u64,
    /// Retries performed by the I/O layer after transient faults.
    pub retries: u64,
    /// Transient faults escalated to permanent after bounded retry.
    pub escalations: u64,
}

/// What the I/O layer should do with one write attempt.
#[derive(Debug)]
pub enum WriteOutcome {
    /// Write the payload as given.
    Proceed,
    /// Write this substituted payload instead (same length; silently
    /// corrupted en route).
    Corrupted(Vec<u8>),
    /// Write this prefix of the payload, then fail the op permanently
    /// — the simulated crash.
    TornThenCrash {
        /// The bytes that land before the crash.
        prefix: Vec<u8>,
        /// Operation index of the crash.
        op: u64,
    },
    /// Fail the attempt without touching the file.
    Fail(io::Error),
}

/// What the I/O layer should do with one read attempt.
#[derive(Debug)]
pub enum ReadOutcome {
    /// Perform the read normally.
    Proceed,
    /// Fail the attempt without reading.
    Fail(io::Error),
}

/// The fault-injection harness itself; attach with
/// [`SharedFile::set_faults`](crate::SharedFile::set_faults).
#[derive(Debug)]
pub struct FaultFs {
    write_plan: BTreeMap<u64, Fault>,
    read_plan: BTreeMap<u64, Fault>,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
    crashed: AtomicBool,
    stats: FaultStats,
}

impl FaultFs {
    /// Harness executing `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultFs {
            write_plan: plan.write,
            read_plan: plan.read,
            write_ops: AtomicU64::new(0),
            read_ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            stats: FaultStats::default(),
        })
    }

    fn transient_err(op: u64) -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, FaultError::Transient { op })
    }

    fn crashed_err(op: u64) -> io::Error {
        io::Error::other(FaultError::Crashed { op })
    }

    /// True once a torn write has "crashed" the simulated process.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Consult the schedule for the next write attempt on `data`.
    pub fn on_write(&self, data: &[u8]) -> WriteOutcome {
        let op = self.write_ops.fetch_add(1, Ordering::SeqCst);
        if self.crashed() {
            return WriteOutcome::Fail(Self::crashed_err(op));
        }
        match self.write_plan.get(&op) {
            None => WriteOutcome::Proceed,
            Some(Fault::Transient) | Some(Fault::ShortRead { .. }) => {
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                obs_counters().transient.incr();
                WriteOutcome::Fail(Self::transient_err(op))
            }
            Some(Fault::BitFlip { byte, mask }) => {
                self.stats.bit_flips.fetch_add(1, Ordering::Relaxed);
                obs_counters().bit_flips.incr();
                let mut bad = data.to_vec();
                if !bad.is_empty() {
                    let at = (*byte % bad.len() as u64) as usize;
                    bad[at] ^= if *mask == 0 { 1 } else { *mask };
                }
                WriteOutcome::Corrupted(bad)
            }
            Some(Fault::TornWrite { keep }) => {
                self.stats.torn_writes.fetch_add(1, Ordering::SeqCst);
                obs_counters().torn_writes.incr();
                self.crashed.store(true, Ordering::SeqCst);
                let keep = (*keep as usize).min(data.len());
                WriteOutcome::TornThenCrash {
                    prefix: data[..keep].to_vec(),
                    op,
                }
            }
        }
    }

    /// Consult the schedule for the next read attempt.
    pub fn on_read(&self) -> ReadOutcome {
        let op = self.read_ops.fetch_add(1, Ordering::SeqCst);
        if self.crashed() {
            return ReadOutcome::Fail(Self::crashed_err(op));
        }
        match self.read_plan.get(&op) {
            None => ReadOutcome::Proceed,
            Some(Fault::ShortRead { .. }) => {
                self.stats.short_reads.fetch_add(1, Ordering::Relaxed);
                obs_counters().short_reads.incr();
                ReadOutcome::Fail(Self::transient_err(op))
            }
            Some(_) => {
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                obs_counters().transient.incr();
                ReadOutcome::Fail(Self::transient_err(op))
            }
        }
    }

    /// Count one retry performed by the I/O layer.
    pub fn count_retry(&self) {
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
        obs_counters().retries.incr();
    }

    /// Count one transient→permanent escalation.
    pub fn count_escalation(&self) {
        self.stats.escalations.fetch_add(1, Ordering::Relaxed);
        obs_counters().escalations.incr();
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            transient: self.stats.transient.load(Ordering::Relaxed),
            bit_flips: self.stats.bit_flips.load(Ordering::Relaxed),
            torn_writes: self.stats.torn_writes.load(Ordering::Relaxed),
            short_reads: self.stats.short_reads.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            escalations: self.stats.escalations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 100, 3, 2, Some(7));
        let b = FaultPlan::seeded(42, 100, 3, 2, Some(7));
        assert_eq!(a.write, b.write);
        let c = FaultPlan::seeded(43, 100, 3, 2, Some(7));
        assert_ne!(a.write, c.write);
        assert_eq!(a.write.len(), 6); // torn + 3 transient + 2 flips
        assert!(matches!(a.write.get(&7), Some(Fault::TornWrite { .. })));
    }

    #[test]
    fn transient_fault_consumes_its_op_index() {
        let fs = FaultFs::new(FaultPlan::new().on_write(1, Fault::Transient));
        assert!(matches!(fs.on_write(b"a"), WriteOutcome::Proceed));
        match fs.on_write(b"b") {
            WriteOutcome::Fail(e) => {
                assert_eq!(e.kind(), io::ErrorKind::Interrupted);
                assert!(matches!(
                    FaultError::from_io(&e),
                    Some(FaultError::Transient { op: 1 })
                ));
            }
            other => panic!("expected transient failure, got {other:?}"),
        }
        // The retry is op 2 — unscheduled, so it proceeds.
        assert!(matches!(fs.on_write(b"b"), WriteOutcome::Proceed));
        assert_eq!(fs.stats().transient, 1);
    }

    #[test]
    fn torn_write_crashes_everything_after() {
        let fs = FaultFs::new(FaultPlan::new().on_write(0, Fault::TornWrite { keep: 3 }));
        match fs.on_write(b"abcdef") {
            WriteOutcome::TornThenCrash { prefix, op } => {
                assert_eq!(prefix, b"abc");
                assert_eq!(op, 0);
            }
            other => panic!("expected torn write, got {other:?}"),
        }
        assert!(fs.crashed());
        assert!(matches!(fs.on_write(b"x"), WriteOutcome::Fail(_)));
        assert!(matches!(fs.on_read(), ReadOutcome::Fail(_)));
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_byte() {
        let fs = FaultFs::new(FaultPlan::new().on_write(
            0,
            Fault::BitFlip {
                byte: 10,
                mask: 0x40,
            },
        ));
        let data = vec![0u8; 8]; // byte index wraps: 10 % 8 = 2
        match fs.on_write(&data) {
            WriteOutcome::Corrupted(bad) => {
                assert_eq!(bad.len(), data.len());
                assert_eq!(bad[2], 0x40);
                let diffs = bad.iter().zip(&data).filter(|(a, b)| a != b).count();
                assert_eq!(diffs, 1);
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        assert_eq!(fs.stats().bit_flips, 1);
    }
}
