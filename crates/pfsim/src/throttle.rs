//! Token-bucket bandwidth throttle for the real execution engine.
//!
//! Real runs write to tmpfs, which is far faster than any PFS and has
//! no contention; the throttle injects the bandwidth model's behavior
//! (aggregate cap + per-request latency) so real-engine timings exhibit
//! the same qualitative shape as the simulated Lustre (saturating
//! per-process throughput, congestion across ranks).

use crate::bandwidth::BandwidthModel;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

struct Bucket {
    /// Available tokens (bytes).
    tokens: f64,
    /// Last refill instant.
    last: Instant,
}

/// A shared token bucket limiting aggregate bytes/second.
pub struct Throttle {
    rate: f64,
    burst: f64,
    latency: Duration,
    bucket: Mutex<Bucket>,
}

impl Throttle {
    /// Throttle at `bytes_per_sec` aggregate with `latency` injected
    /// per request.
    pub fn new(bytes_per_sec: f64, latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0);
        Throttle {
            rate: bytes_per_sec,
            burst: bytes_per_sec * 0.05, // 50 ms worth of burst
            latency,
            bucket: Mutex::new(Bucket {
                tokens: 0.0,
                last: Instant::now(),
            }),
        }
    }

    /// Derive a throttle from a bandwidth model, scaled down by
    /// `scale` (tests use small scales so they stay fast).
    pub fn from_model(model: &BandwidthModel, scale: f64) -> Self {
        Throttle::new(
            (model.aggregate_cap * scale).max(1.0),
            Duration::from_secs_f64(model.latency),
        )
    }

    /// Aggregate rate in bytes/sec.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Block until `bytes` may pass, also sleeping the per-request
    /// latency. Returns the time spent blocked.
    pub fn acquire(&self, bytes: u64) -> Duration {
        let start = Instant::now();
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        let mut need = bytes as f64;
        loop {
            let wait = {
                let mut b = self.bucket.lock();
                let now = Instant::now();
                let dt = now.duration_since(b.last).as_secs_f64();
                b.last = now;
                b.tokens = (b.tokens + dt * self.rate).min(self.burst.max(need));
                if b.tokens >= need {
                    b.tokens -= need;
                    None
                } else {
                    need -= b.tokens;
                    b.tokens = 0.0;
                    // Sleep long enough for the deficit to refill.
                    Some(Duration::from_secs_f64((need / self.rate).min(0.05)))
                }
            };
            match wait {
                None => return start.elapsed(),
                Some(d) => std::thread::sleep(d),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_aggregate_rate() {
        // 10 MB/s, push 2 MB → should take ~0.2 s.
        let t = Throttle::new(10e6, Duration::ZERO);
        let start = Instant::now();
        for _ in 0..4 {
            t.acquire(500_000);
        }
        let el = start.elapsed().as_secs_f64();
        assert!(el > 0.1, "elapsed {el}");
        assert!(el < 1.0, "elapsed {el}");
    }

    #[test]
    fn latency_injected() {
        let t = Throttle::new(1e12, Duration::from_millis(5));
        let start = Instant::now();
        t.acquire(10);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn concurrent_threads_share_budget() {
        let t = std::sync::Arc::new(Throttle::new(20e6, Duration::ZERO));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    t.acquire(1_000_000);
                });
            }
        });
        // 4 MB over a 20 MB/s shared budget ≥ ~0.15 s (with burst).
        let el = start.elapsed().as_secs_f64();
        assert!(el > 0.1, "elapsed {el}");
    }
}
