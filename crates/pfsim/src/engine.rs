//! Discrete-event simulation of per-rank compress→write pipelines over
//! a shared, contended file system.
//!
//! Each rank executes its compression tasks **serially** (one core per
//! rank) and issues each compressed partition to an asynchronous write
//! stream that is also serial per rank (one background I/O thread, as
//! in HDF5's async VOL): write *i* starts once compression *i* and
//! write *i−1* have both finished. Concurrent writes from different
//! ranks share the file system under processor-sharing with the fair
//! rate of [`BandwidthModel::contended_rate`].
//!
//! This is the execution model behind the paper's Figure 4 timelines
//! and its Algorithm 1 cost recurrence `tw ← Pw(ℓ) + max(tc, tw)`; the
//! event engine generalizes that recurrence to a *shared* bandwidth
//! pool so congestion across ranks is captured.

use crate::bandwidth::BandwidthModel;

/// One compress→write unit (one field's partition on one rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTask {
    /// Compression (compute) duration in seconds.
    pub compute: f64,
    /// Bytes to write once computed (0 = no write).
    pub write_bytes: f64,
}

/// A rank's ordered task list.
#[derive(Debug, Clone, Default)]
pub struct RankPipeline {
    /// Time at which the rank starts computing (barrier release).
    pub release: f64,
    /// Ordered tasks.
    pub tasks: Vec<PipelineTask>,
}

/// Completion record for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTimes {
    /// When compression of this task finished.
    pub compute_done: f64,
    /// When its write finished (equals `compute_done` if no write).
    pub write_done: f64,
}

/// Result of simulating a set of rank pipelines.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-rank, per-task completion times.
    pub tasks: Vec<Vec<TaskTimes>>,
    /// Per-rank finish time (last write done).
    pub rank_finish: Vec<f64>,
    /// Global makespan.
    pub makespan: f64,
}

impl SimOutcome {
    /// Time when the last compression anywhere finished.
    pub fn last_compute_done(&self) -> f64 {
        self.tasks
            .iter()
            .flatten()
            .map(|t| t.compute_done)
            .fold(0.0, f64::max)
    }
}

#[derive(Debug)]
struct ActiveWrite {
    rank: usize,
    task: usize,
    remaining: f64,
    total: f64,
    /// Remaining fixed latency to burn before bytes move.
    latency_left: f64,
}

/// Simulate the pipelines to completion.
pub fn simulate(ranks: &[RankPipeline], model: &BandwidthModel) -> SimOutcome {
    let n = ranks.len();
    let mut tasks: Vec<Vec<TaskTimes>> = ranks
        .iter()
        .map(|r| {
            vec![
                TaskTimes {
                    compute_done: 0.0,
                    write_done: 0.0
                };
                r.tasks.len()
            ]
        })
        .collect();

    // Per-rank compute cursor: next task index to compute and the time
    // the current compute finishes.
    let mut next_compute: Vec<usize> = vec![0; n];
    let mut compute_done_at: Vec<f64> = vec![f64::INFINITY; n];
    // Per-rank FIFO of computed-but-not-written task indices.
    let mut write_queue: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); n];
    // Per-rank currently active write (serial I/O stream per rank).
    let mut writing: Vec<Option<usize>> = vec![None; n]; // index into `active`
    let mut active: Vec<ActiveWrite> = Vec::new();

    let mut now = 0.0f64;

    // Seed compute for each rank.
    for (r, rp) in ranks.iter().enumerate() {
        if rp.tasks.is_empty() {
            continue;
        }
        compute_done_at[r] = rp.release + rp.tasks[0].compute;
    }

    let rate_of = |w: &ActiveWrite, n_active: usize, model: &BandwidthModel| -> f64 {
        model.contended_rate(w.total, n_active).max(1.0)
    };

    loop {
        // Start queued writes on idle per-rank write streams.
        for r in 0..n {
            if writing[r].is_none() {
                if let Some(task) = write_queue[r].pop_front() {
                    let bytes = ranks[r].tasks[task].write_bytes;
                    if bytes <= 0.0 {
                        tasks[r][task].write_done = tasks[r][task].compute_done.max(now);
                        // Zero-byte write completes instantly; try next.
                        // (Loop again via queue since stream stays idle.)
                        while let Some(t2) = write_queue[r].pop_front() {
                            let b2 = ranks[r].tasks[t2].write_bytes;
                            if b2 <= 0.0 {
                                tasks[r][t2].write_done = tasks[r][t2].compute_done.max(now);
                            } else {
                                active.push(ActiveWrite {
                                    rank: r,
                                    task: t2,
                                    remaining: b2,
                                    total: b2,
                                    latency_left: model.latency,
                                });
                                writing[r] = Some(active.len() - 1);
                                break;
                            }
                        }
                    } else {
                        active.push(ActiveWrite {
                            rank: r,
                            task,
                            remaining: bytes,
                            total: bytes,
                            latency_left: model.latency,
                        });
                        writing[r] = Some(active.len() - 1);
                    }
                }
            }
        }

        // Next compute completion.
        let (next_comp_rank, next_comp_t) = compute_done_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(r, &t)| (r, t))
            .unwrap_or((0, f64::INFINITY));

        // Next write completion under current fair-share rates.
        let n_active = active.len();
        let mut next_write_t = f64::INFINITY;
        let mut next_write_i = usize::MAX;
        for (i, w) in active.iter().enumerate() {
            let rate = rate_of(w, n_active, model);
            let t = now + w.latency_left + w.remaining / rate;
            if t < next_write_t {
                next_write_t = t;
                next_write_i = i;
            }
        }

        if next_comp_t.is_infinite() && next_write_t.is_infinite() {
            break;
        }

        if next_comp_t <= next_write_t {
            // Advance active writes to next_comp_t.
            let dt = next_comp_t - now;
            for w in active.iter_mut() {
                let burn = w.latency_left.min(dt);
                w.latency_left -= burn;
                let move_t = dt - burn;
                let rate = model.contended_rate(w.total, n_active).max(1.0);
                w.remaining -= rate * move_t;
            }
            now = next_comp_t;
            // Complete the compute.
            let r = next_comp_rank;
            let t_idx = next_compute[r];
            tasks[r][t_idx].compute_done = now;
            write_queue[r].push_back(t_idx);
            next_compute[r] += 1;
            if next_compute[r] < ranks[r].tasks.len() {
                compute_done_at[r] = now + ranks[r].tasks[next_compute[r]].compute;
            } else {
                compute_done_at[r] = f64::INFINITY;
            }
        } else {
            // Advance to the write completion.
            let dt = next_write_t - now;
            for w in active.iter_mut() {
                let burn = w.latency_left.min(dt);
                w.latency_left -= burn;
                let move_t = dt - burn;
                let rate = model.contended_rate(w.total, n_active).max(1.0);
                w.remaining -= rate * move_t;
            }
            now = next_write_t;
            let w = active.swap_remove(next_write_i);
            tasks[w.rank][w.task].write_done = now;
            writing[w.rank] = None;
            // Fix the index of the swapped element.
            if next_write_i < active.len() {
                let moved_rank = active[next_write_i].rank;
                writing[moved_rank] = Some(next_write_i);
            }
        }
    }

    let rank_finish: Vec<f64> = tasks
        .iter()
        .enumerate()
        .map(|(r, ts)| {
            ts.iter()
                .map(|t| t.write_done)
                .fold(ranks[r].release, f64::max)
        })
        .collect();
    let makespan = rank_finish.iter().cloned().fold(0.0, f64::max);
    SimOutcome {
        tasks,
        rank_finish,
        makespan,
    }
}

/// Simulate a single round of fully concurrent writes (all `sizes`
/// arrive at t = 0), e.g. one collective-write round. Returns per-write
/// completion times and the round makespan.
pub fn simulate_concurrent_writes(sizes: &[f64], model: &BandwidthModel) -> (Vec<f64>, f64) {
    let ranks: Vec<RankPipeline> = sizes
        .iter()
        .map(|&s| RankPipeline {
            release: 0.0,
            tasks: vec![PipelineTask {
                compute: 0.0,
                write_bytes: s,
            }],
        })
        .collect();
    let out = simulate(&ranks, model);
    let times: Vec<f64> = out.tasks.iter().map(|t| t[0].write_done).collect();
    (times, out.makespan)
}

/// Time for a collective write of per-rank `sizes`: one synchronized
/// round per call — all ranks participate and wait for the slowest,
/// plus the model's collective overhead. Collective I/O moves bytes at
/// `collective_factor` of the independent-path bandwidth.
pub fn collective_write_time(sizes: &[f64], model: &BandwidthModel) -> f64 {
    let derated = BandwidthModel {
        per_proc_peak: model.per_proc_peak * model.collective_factor,
        aggregate_cap: model.aggregate_cap * model.collective_factor,
        ..*model
    };
    let (_, makespan) = simulate_concurrent_writes(sizes, &derated);
    model.collective_overhead + makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> BandwidthModel {
        BandwidthModel::tiny_for_tests()
    }

    #[test]
    fn single_rank_single_task() {
        let ranks = vec![RankPipeline {
            release: 0.0,
            tasks: vec![PipelineTask {
                compute: 1.0,
                write_bytes: 50e6,
            }],
        }];
        let out = simulate(&ranks, &m());
        let t = out.tasks[0][0];
        assert!((t.compute_done - 1.0).abs() < 1e-9);
        let expect = 1.0 + m().solo_write_time(50e6);
        assert!(
            (t.write_done - expect).abs() < 1e-3,
            "{} vs {}",
            t.write_done,
            expect
        );
    }

    #[test]
    fn pipeline_overlaps_compute_and_write() {
        // Two tasks: while task 0 writes, task 1 computes.
        let ranks = vec![RankPipeline {
            release: 0.0,
            tasks: vec![
                PipelineTask {
                    compute: 1.0,
                    write_bytes: 100e6,
                },
                PipelineTask {
                    compute: 1.0,
                    write_bytes: 100e6,
                },
            ],
        }];
        let out = simulate(&ranks, &m());
        let serial = 2.0 * (1.0 + m().solo_write_time(100e6));
        assert!(
            out.makespan < serial - 0.5,
            "makespan {} serial {}",
            out.makespan,
            serial
        );
        // Write 1 cannot start before write 0 finished AND compute 1 done.
        let t0 = out.tasks[0][0];
        let t1 = out.tasks[0][1];
        assert!(t1.write_done > t0.write_done);
        assert!(t1.compute_done >= t0.compute_done + 1.0 - 1e-9);
    }

    #[test]
    fn contention_slows_everyone() {
        let solo = simulate(
            &[RankPipeline {
                release: 0.0,
                tasks: vec![PipelineTask {
                    compute: 0.0,
                    write_bytes: 200e6,
                }],
            }],
            &m(),
        )
        .makespan;
        let eight: Vec<RankPipeline> = (0..8)
            .map(|_| RankPipeline {
                release: 0.0,
                tasks: vec![PipelineTask {
                    compute: 0.0,
                    write_bytes: 200e6,
                }],
            })
            .collect();
        let contended = simulate(&eight, &m()).makespan;
        // cap = 400 MB/s, 8 × 200 MB at fair share 50 MB/s each ≈ 4 s
        assert!(contended > solo * 1.5, "contended {contended} solo {solo}");
    }

    #[test]
    fn release_time_delays_start() {
        let ranks = vec![RankPipeline {
            release: 5.0,
            tasks: vec![PipelineTask {
                compute: 1.0,
                write_bytes: 0.0,
            }],
        }];
        let out = simulate(&ranks, &m());
        assert!((out.tasks[0][0].compute_done - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_writes_complete() {
        let ranks = vec![RankPipeline {
            release: 0.0,
            tasks: vec![
                PipelineTask {
                    compute: 0.5,
                    write_bytes: 0.0,
                },
                PipelineTask {
                    compute: 0.5,
                    write_bytes: 1e6,
                },
            ],
        }];
        let out = simulate(&ranks, &m());
        assert!(out.makespan > 1.0);
        assert!(out.tasks[0][0].write_done >= 0.5);
    }

    #[test]
    fn empty_pipelines() {
        let out = simulate(&[RankPipeline::default()], &m());
        assert_eq!(out.makespan, 0.0);
    }

    #[test]
    fn concurrent_round_fair() {
        let (times, makespan) = simulate_concurrent_writes(&[100e6, 100e6, 100e6, 100e6], &m());
        // 400 MB over a 400 MB/s cap ≈ 1 s.
        assert!((makespan - 1.0).abs() < 0.2, "makespan {makespan}");
        for t in times {
            assert!((t - makespan).abs() < 0.2);
        }
    }

    #[test]
    fn collective_adds_overhead() {
        let sizes = vec![10e6; 4];
        let c = collective_write_time(&sizes, &m());
        let (_, ms) = simulate_concurrent_writes(&sizes, &m());
        assert!(c > ms);
    }

    #[test]
    fn makespan_is_max_rank_finish() {
        let ranks: Vec<RankPipeline> = (0..4)
            .map(|r| RankPipeline {
                release: 0.0,
                tasks: vec![PipelineTask {
                    compute: r as f64,
                    write_bytes: 5e6,
                }],
            })
            .collect();
        let out = simulate(&ranks, &m());
        let max = out.rank_finish.iter().cloned().fold(0.0, f64::max);
        assert_eq!(out.makespan, max);
    }
}
