//! # pfsim — parallel file system substrate
//!
//! The paper evaluates on Summit (GPFS) and Bebop (Lustre); neither is
//! available here, so this crate provides the storage layer in three
//! pieces:
//!
//! * [`bandwidth::BandwidthModel`] — an analytical model with the three
//!   properties the paper's results depend on: saturating per-process
//!   throughput (Fig. 7), an aggregate bandwidth cap shared by
//!   concurrent writers, and collective-round overhead.
//! * [`sharedfile::SharedFile`] — a real shared file with positioned
//!   concurrent writes and atomic tail reservations, used by the
//!   real execution engine (threads-as-ranks writing to tmpfs).
//! * [`engine`] — a discrete-event simulator of per-rank
//!   compress→write pipelines over the contended model, used for
//!   512–4096-rank sweeps that would not fit as real threads.
//! * [`throttle::Throttle`] — a token bucket that imposes the model's
//!   aggregate cap on real writes so wall-clock behavior matches the
//!   simulated shape.
//! * [`faults`] — a deterministic fault-injection harness
//!   ([`faults::FaultFs`]) that attaches to a [`SharedFile`] and
//!   replays seeded torn writes, bit flips, short reads, and
//!   transient `EIO`s, for crash-recovery testing.

pub mod bandwidth;
pub mod engine;
pub mod faults;
pub mod sharedfile;
pub mod throttle;

pub use bandwidth::BandwidthModel;
pub use engine::{
    collective_write_time, simulate, simulate_concurrent_writes, PipelineTask, RankPipeline,
    SimOutcome, TaskTimes,
};
pub use faults::{Fault, FaultError, FaultFs, FaultPlan, FaultStatsSnapshot, SplitMix64};
pub use sharedfile::{SharedFile, TailRewind};
pub use throttle::Throttle;
