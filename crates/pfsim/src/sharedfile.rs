//! A shared file with positioned (pwrite-style) access for the real
//! execution engine.
//!
//! Multiple rank threads hold clones of one [`SharedFile`] and write to
//! disjoint pre-computed offsets — exactly the access pattern of a
//! parallel HDF5 shared file on Lustre. An atomic tail pointer supports
//! the paper's overflow handling (appending excess data past the
//! reserved region after an all-gather of overflow sizes).

use crate::faults::{FaultError, FaultFs, ReadOutcome, WriteOutcome};
use parking_lot::Mutex;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Bounded retry budget for transient injected/OS faults
/// (`ErrorKind::Interrupted`): attempts beyond the first.
const MAX_RETRIES: u32 = 4;

/// Typed error for an [`SharedFile::advance_tail_to`] call that would
/// move the explicit-advance high-water mark backwards — a stale
/// caller replaying an old plan. The tail itself never rewinds; this
/// error reports the rejection instead of silently saturating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailRewind {
    /// Offset the stale caller asked for.
    pub requested: u64,
    /// Previously established high-water mark.
    pub high_water: u64,
}

impl fmt::Display for TailRewind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "advance_tail_to({}) rewinds below the previous explicit advance ({})",
            self.requested, self.high_water
        )
    }
}

impl std::error::Error for TailRewind {}

impl From<TailRewind> for io::Error {
    fn from(e: TailRewind) -> Self {
        io::Error::new(io::ErrorKind::InvalidInput, e)
    }
}

struct Inner {
    file: File,
    path: PathBuf,
    /// Logical end of file for reservations.
    tail: AtomicU64,
    /// High-water mark of explicit [`SharedFile::advance_tail_to`]
    /// offsets: layout regions only ever grow, so a smaller offset
    /// means a stale caller (typed [`TailRewind`] error).
    advance_mark: AtomicU64,
    /// Fault-injection harness, if attached (tests/benches).
    faults: Mutex<Option<Arc<FaultFs>>>,
    /// Serializes seek-based fallback I/O on non-Unix targets.
    #[cfg_attr(unix, allow(dead_code))]
    meta: Mutex<()>,
}

/// A concurrently writable file handle, cheap to clone across ranks.
#[derive(Clone)]
pub struct SharedFile {
    inner: Arc<Inner>,
}

impl SharedFile {
    /// Create (truncate) a shared file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(SharedFile {
            inner: Arc::new(Inner {
                file,
                path: path.as_ref().to_path_buf(),
                tail: AtomicU64::new(0),
                advance_mark: AtomicU64::new(0),
                faults: Mutex::new(None),
                meta: Mutex::new(()),
            }),
        })
    }

    /// Open an existing file read/write; tail starts at its length.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        Ok(SharedFile {
            inner: Arc::new(Inner {
                file,
                path: path.as_ref().to_path_buf(),
                tail: AtomicU64::new(len),
                advance_mark: AtomicU64::new(0),
                faults: Mutex::new(None),
                meta: Mutex::new(()),
            }),
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Attach (or detach, with `None`) a fault-injection harness. All
    /// subsequent `write_at`/`read_at` calls consult its schedule.
    pub fn set_faults(&self, faults: Option<Arc<FaultFs>>) {
        *self.inner.faults.lock() = faults;
    }

    /// The attached fault harness, if any.
    pub fn faults(&self) -> Option<Arc<FaultFs>> {
        self.inner.faults.lock().clone()
    }

    /// Raw positioned write, below fault injection.
    fn write_at_raw(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            self.inner.file.write_all_at(data, offset)?;
        }
        #[cfg(not(unix))]
        {
            let _g = self.inner.meta.lock();
            use std::io::{Seek, SeekFrom, Write};
            let mut f = &self.inner.file;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(data)?;
        }
        Ok(())
    }

    /// Raw positioned exact read, below fault injection.
    fn read_at_raw(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            self.inner.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            let _g = self.inner.meta.lock();
            use std::io::{Read, Seek, SeekFrom};
            let mut f = &self.inner.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }

    /// Brief backoff before retry `attempt` (1-based) of a transient
    /// fault.
    fn backoff(attempt: u32) {
        std::thread::sleep(std::time::Duration::from_micros(50 * attempt as u64));
    }

    /// Escalate a transient fault that survived the retry budget.
    fn escalate(faults: &FaultFs) -> io::Error {
        faults.count_escalation();
        io::Error::other(FaultError::RetriesExhausted {
            attempts: MAX_RETRIES + 1,
        })
    }

    /// Write `data` at absolute `offset` (thread-safe positioned
    /// write). With a fault harness attached, transient injected
    /// faults are retried with bounded backoff; permanent ones (torn
    /// write / simulated crash) escalate as typed [`io::Error`]s.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let faults = self.inner.faults.lock().clone();
        match faults {
            None => self.write_at_raw(offset, data)?,
            Some(fs) => {
                let mut attempt = 0u32;
                loop {
                    match fs.on_write(data) {
                        WriteOutcome::Proceed => {
                            self.write_at_raw(offset, data)?;
                            break;
                        }
                        WriteOutcome::Corrupted(bad) => {
                            // Silent: the op "succeeds"; only the
                            // reader's checksum can notice.
                            self.write_at_raw(offset, &bad)?;
                            break;
                        }
                        WriteOutcome::TornThenCrash { prefix, op } => {
                            let _ = self.write_at_raw(offset, &prefix);
                            return Err(io::Error::other(FaultError::Crashed { op }));
                        }
                        WriteOutcome::Fail(e) if e.kind() == io::ErrorKind::Interrupted => {
                            if attempt >= MAX_RETRIES {
                                return Err(Self::escalate(&fs));
                            }
                            attempt += 1;
                            fs.count_retry();
                            Self::backoff(attempt);
                        }
                        WriteOutcome::Fail(e) => return Err(e),
                    }
                }
            }
        }
        // Keep the logical tail past any explicit write.
        let end = offset + data.len() as u64;
        self.inner.tail.fetch_max(end, Ordering::SeqCst);
        Ok(())
    }

    /// Read exactly `buf.len()` bytes at `offset`, with the same
    /// bounded-retry policy as [`SharedFile::write_at`] when a fault
    /// harness is attached.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let faults = self.inner.faults.lock().clone();
        match faults {
            None => self.read_at_raw(offset, buf),
            Some(fs) => {
                let mut attempt = 0u32;
                loop {
                    match fs.on_read() {
                        ReadOutcome::Proceed => return self.read_at_raw(offset, buf),
                        ReadOutcome::Fail(e) if e.kind() == io::ErrorKind::Interrupted => {
                            if attempt >= MAX_RETRIES {
                                return Err(Self::escalate(&fs));
                            }
                            attempt += 1;
                            fs.count_retry();
                            Self::backoff(attempt);
                        }
                        ReadOutcome::Fail(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Atomically reserve `len` bytes at the current tail, returning
    /// the reserved offset (used for overflow appends).
    pub fn reserve(&self, len: u64) -> u64 {
        self.inner.tail.fetch_add(len, Ordering::SeqCst)
    }

    /// Move the logical tail to at least `offset` (e.g. after planning
    /// the reserved layout region), returning the resulting tail.
    ///
    /// Explicit advances must be monotone: planned layout regions only
    /// ever grow, so an `offset` below a previously advanced one means
    /// a stale caller replaying an old plan. That is rejected with a
    /// typed [`TailRewind`] error in every build mode; the tail (and
    /// the advance high-water mark) never move backwards, so
    /// reservations handed out after the newer advance stay disjoint
    /// even when the caller ignores the error.
    pub fn advance_tail_to(&self, offset: u64) -> Result<u64, TailRewind> {
        let prev_mark = self.inner.advance_mark.fetch_max(offset, Ordering::SeqCst);
        if offset < prev_mark {
            return Err(TailRewind {
                requested: offset,
                high_water: prev_mark,
            });
        }
        self.inner.tail.fetch_max(offset, Ordering::SeqCst);
        Ok(self.inner.tail.load(Ordering::SeqCst))
    }

    /// Current logical tail (reservations included).
    pub fn tail(&self) -> u64 {
        self.inner.tail.load(Ordering::SeqCst)
    }

    /// Current physical file length.
    pub fn len(&self) -> io::Result<u64> {
        Ok(self.inner.file.metadata()?.len())
    }

    /// True when the file has no bytes yet.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Flush file data to the OS.
    pub fn sync(&self) -> io::Result<()> {
        self.inner.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pfsim-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmp("rt");
        let f = SharedFile::create(&path).unwrap();
        f.write_at(100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        f.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let path = tmp("conc");
        let f = SharedFile::create(&path).unwrap();
        std::thread::scope(|s| {
            for r in 0..8u64 {
                let f = f.clone();
                s.spawn(move || {
                    let data = vec![r as u8; 1000];
                    f.write_at(r * 1000, &data).unwrap();
                });
            }
        });
        for r in 0..8u64 {
            let mut buf = vec![0u8; 1000];
            f.read_at(r * 1000, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == r as u8));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reserve_is_atomic_and_disjoint() {
        let path = tmp("resv");
        let f = SharedFile::create(&path).unwrap();
        f.advance_tail_to(1 << 20).unwrap();
        let offsets: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..16)
                .map(|_| {
                    let f = f.clone();
                    s.spawn(move || f.reserve(128))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "reservations must be unique");
        assert!(sorted[0] >= 1 << 20);
        assert_eq!(f.tail(), (1 << 20) + 16 * 128);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tail_tracks_writes() {
        let path = tmp("tail");
        let f = SharedFile::create(&path).unwrap();
        f.write_at(500, &[1, 2, 3]).unwrap();
        assert_eq!(f.tail(), 503);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn advance_tail_is_monotone_and_saturating() {
        let path = tmp("adv");
        let f = SharedFile::create(&path).unwrap();
        assert_eq!(f.advance_tail_to(100).unwrap(), 100);
        // Re-advancing to the same offset is fine (every rank derives
        // the same plan and may advance identically).
        assert_eq!(f.advance_tail_to(100).unwrap(), 100);
        // A write past the advance moves the tail further; the next
        // monotone advance (above the high-water mark, below the tail)
        // saturates at the tail instead of rewinding it.
        f.write_at(150, &[0u8; 10]).unwrap();
        assert_eq!(f.advance_tail_to(120).unwrap(), 160);
        assert_eq!(f.tail(), 160);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn advance_tail_rewind_is_typed_error() {
        let path = tmp("adv-rewind");
        let f = SharedFile::create(&path).unwrap();
        f.advance_tail_to(4096).unwrap();
        // A stale caller replaying an old plan gets a typed rejection
        // in every build mode; the tail stays where it was.
        let err = f.advance_tail_to(512).unwrap_err();
        assert_eq!(
            err,
            TailRewind {
                requested: 512,
                high_water: 4096
            }
        );
        assert_eq!(f.tail(), 4096);
        // The error converts to io::Error for propagation.
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_harness_retries_transients_and_reports_crashes() {
        use crate::faults::{Fault, FaultFs, FaultPlan};

        let path = tmp("faulty");
        let f = SharedFile::create(&path).unwrap();
        let fs = FaultFs::new(
            FaultPlan::new()
                .on_write(0, Fault::Transient)
                .on_write(3, Fault::TornWrite { keep: 2 }),
        );
        f.set_faults(Some(Arc::clone(&fs)));
        // Op 0 transient → retried as op 1 → lands.
        f.write_at(0, b"hello").unwrap();
        let mut buf = [0u8; 5];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        // Op 2 clean.
        f.write_at(5, b"world").unwrap();
        // Op 3 torn: 2 bytes land, the op errors, the harness is
        // "crashed" and everything after fails permanently.
        let err = f.write_at(10, b"abcdef").unwrap_err();
        assert!(matches!(
            FaultError::from_io(&err),
            Some(FaultError::Crashed { op: 3 })
        ));
        assert!(f.write_at(20, b"x").is_err());
        let stats = fs.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.torn_writes, 1);
        f.set_faults(None);
        let mut torn = [0u8; 2];
        f.read_at(10, &mut torn).unwrap();
        assert_eq!(&torn, b"ab");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persistent_transient_escalates_after_bounded_retry() {
        use crate::faults::{Fault, FaultFs, FaultPlan};

        let path = tmp("escalate");
        let f = SharedFile::create(&path).unwrap();
        let mut plan = FaultPlan::new();
        for op in 0..32 {
            plan = plan.on_write(op, Fault::Transient);
        }
        let fs = FaultFs::new(plan);
        f.set_faults(Some(Arc::clone(&fs)));
        let err = f.write_at(0, b"never lands").unwrap_err();
        assert!(matches!(
            FaultError::from_io(&err),
            Some(FaultError::RetriesExhausted { .. })
        ));
        assert_eq!(fs.stats().escalations, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_existing_preserves_tail() {
        let path = tmp("open");
        {
            let f = SharedFile::create(&path).unwrap();
            f.write_at(0, &[9u8; 64]).unwrap();
            f.sync().unwrap();
        }
        let f = SharedFile::open(&path).unwrap();
        assert_eq!(f.tail(), 64);
        std::fs::remove_file(&path).unwrap();
    }
}
