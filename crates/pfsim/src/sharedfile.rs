//! A shared file with positioned (pwrite-style) access for the real
//! execution engine.
//!
//! Multiple rank threads hold clones of one [`SharedFile`] and write to
//! disjoint pre-computed offsets — exactly the access pattern of a
//! parallel HDF5 shared file on Lustre. An atomic tail pointer supports
//! the paper's overflow handling (appending excess data past the
//! reserved region after an all-gather of overflow sizes).

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

struct Inner {
    file: File,
    path: PathBuf,
    /// Logical end of file for reservations.
    tail: AtomicU64,
    /// High-water mark of explicit [`SharedFile::advance_tail_to`]
    /// offsets: layout regions only ever grow, so a smaller offset
    /// means a stale caller (debug-asserted; saturating in release).
    advance_mark: AtomicU64,
    /// Serializes seek-based fallback I/O on non-Unix targets.
    #[cfg_attr(unix, allow(dead_code))]
    meta: Mutex<()>,
}

/// A concurrently writable file handle, cheap to clone across ranks.
#[derive(Clone)]
pub struct SharedFile {
    inner: Arc<Inner>,
}

impl SharedFile {
    /// Create (truncate) a shared file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(SharedFile {
            inner: Arc::new(Inner {
                file,
                path: path.as_ref().to_path_buf(),
                tail: AtomicU64::new(0),
                advance_mark: AtomicU64::new(0),
                meta: Mutex::new(()),
            }),
        })
    }

    /// Open an existing file read/write; tail starts at its length.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        Ok(SharedFile {
            inner: Arc::new(Inner {
                file,
                path: path.as_ref().to_path_buf(),
                tail: AtomicU64::new(len),
                advance_mark: AtomicU64::new(0),
                meta: Mutex::new(()),
            }),
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Write `data` at absolute `offset` (thread-safe positioned write).
    pub fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            self.inner.file.write_all_at(data, offset)?;
        }
        #[cfg(not(unix))]
        {
            let _g = self.inner.meta.lock();
            use std::io::{Seek, SeekFrom, Write};
            let mut f = &self.inner.file;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(data)?;
        }
        // Keep the logical tail past any explicit write.
        let end = offset + data.len() as u64;
        self.inner.tail.fetch_max(end, Ordering::SeqCst);
        Ok(())
    }

    /// Read exactly `buf.len()` bytes at `offset`.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            self.inner.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            let _g = self.inner.meta.lock();
            use std::io::{Read, Seek, SeekFrom};
            let mut f = &self.inner.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }

    /// Atomically reserve `len` bytes at the current tail, returning
    /// the reserved offset (used for overflow appends).
    pub fn reserve(&self, len: u64) -> u64 {
        self.inner.tail.fetch_add(len, Ordering::SeqCst)
    }

    /// Move the logical tail to at least `offset` (e.g. after planning
    /// the reserved layout region), returning the resulting tail.
    ///
    /// Explicit advances must be monotone: planned layout regions only
    /// ever grow, so an `offset` below a previously advanced one means
    /// a stale caller replaying an old plan. That is rejected with a
    /// debug assertion; in release builds the call saturates — the
    /// tail (and the advance high-water mark) never move backwards, so
    /// reservations handed out after the newer advance stay disjoint.
    pub fn advance_tail_to(&self, offset: u64) -> u64 {
        let prev_mark = self.inner.advance_mark.fetch_max(offset, Ordering::SeqCst);
        debug_assert!(
            offset >= prev_mark,
            "advance_tail_to({offset}) rewinds below the previous explicit advance ({prev_mark})"
        );
        self.inner.tail.fetch_max(offset, Ordering::SeqCst);
        self.inner.tail.load(Ordering::SeqCst)
    }

    /// Current logical tail (reservations included).
    pub fn tail(&self) -> u64 {
        self.inner.tail.load(Ordering::SeqCst)
    }

    /// Current physical file length.
    pub fn len(&self) -> io::Result<u64> {
        Ok(self.inner.file.metadata()?.len())
    }

    /// True when the file has no bytes yet.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Flush file data to the OS.
    pub fn sync(&self) -> io::Result<()> {
        self.inner.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pfsim-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmp("rt");
        let f = SharedFile::create(&path).unwrap();
        f.write_at(100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        f.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let path = tmp("conc");
        let f = SharedFile::create(&path).unwrap();
        std::thread::scope(|s| {
            for r in 0..8u64 {
                let f = f.clone();
                s.spawn(move || {
                    let data = vec![r as u8; 1000];
                    f.write_at(r * 1000, &data).unwrap();
                });
            }
        });
        for r in 0..8u64 {
            let mut buf = vec![0u8; 1000];
            f.read_at(r * 1000, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == r as u8));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reserve_is_atomic_and_disjoint() {
        let path = tmp("resv");
        let f = SharedFile::create(&path).unwrap();
        f.advance_tail_to(1 << 20);
        let offsets: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..16)
                .map(|_| {
                    let f = f.clone();
                    s.spawn(move || f.reserve(128))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "reservations must be unique");
        assert!(sorted[0] >= 1 << 20);
        assert_eq!(f.tail(), (1 << 20) + 16 * 128);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tail_tracks_writes() {
        let path = tmp("tail");
        let f = SharedFile::create(&path).unwrap();
        f.write_at(500, &[1, 2, 3]).unwrap();
        assert_eq!(f.tail(), 503);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn advance_tail_is_monotone_and_saturating() {
        let path = tmp("adv");
        let f = SharedFile::create(&path).unwrap();
        assert_eq!(f.advance_tail_to(100), 100);
        // Re-advancing to the same offset is fine (every rank derives
        // the same plan and may advance identically).
        assert_eq!(f.advance_tail_to(100), 100);
        // A write past the advance moves the tail further; the next
        // (monotone) advance below the tail saturates instead of
        // rewinding it.
        f.write_at(150, &[0u8; 10]).unwrap();
        assert_eq!(f.advance_tail_to(120), 160);
        assert_eq!(f.tail(), 160);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "rewinds below the previous explicit advance")]
    fn advance_tail_rejects_rewind_in_debug() {
        let path = tmp("adv-rewind");
        let f = SharedFile::create(&path).unwrap();
        f.advance_tail_to(4096);
        let _guard = scopeguard(&path);
        f.advance_tail_to(512); // stale caller replaying an old plan
    }

    /// Remove the temp file even though the enclosing test panics.
    #[cfg(debug_assertions)]
    fn scopeguard(path: &Path) -> impl Drop + '_ {
        struct G<'a>(&'a Path);
        impl Drop for G<'_> {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(self.0);
            }
        }
        G(path)
    }

    #[test]
    fn open_existing_preserves_tail() {
        let path = tmp("open");
        {
            let f = SharedFile::create(&path).unwrap();
            f.write_at(0, &[9u8; 64]).unwrap();
            f.sync().unwrap();
        }
        let f = SharedFile::open(&path).unwrap();
        assert_eq!(f.tail(), 64);
        std::fs::remove_file(&path).unwrap();
    }
}
