//! Analytical parallel-file-system bandwidth model.
//!
//! Three properties of Lustre/GPFS-class storage drive every result in
//! the paper, and all three are explicit parameters here:
//!
//! 1. **Per-process throughput saturates with request size** (their
//!    Fig. 7): small requests are latency-dominated, large ones reach a
//!    stable per-process ceiling `per_proc_peak`.
//! 2. **Writers share an aggregate ceiling** `aggregate_cap`, so many
//!    concurrent independent writers contend.
//! 3. **Collective writes pay synchronization overhead** per round
//!    (`collective_overhead`), and all ranks wait for the slowest.
//!
//! Presets `summit()` and `bebop()` are calibrated to the *relative*
//! magnitudes in the paper (Summit has substantially higher aggregate
//! I/O bandwidth than Bebop), not to absolute GB/s.

/// Saturating-throughput model of one parallel file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthModel {
    /// Peak sustained write throughput of a single process, bytes/s.
    pub per_proc_peak: f64,
    /// Request size (bytes) at which a process reaches half of peak.
    pub half_size: f64,
    /// Aggregate cap across all concurrent writers, bytes/s.
    pub aggregate_cap: f64,
    /// Fixed per-request latency, seconds.
    pub latency: f64,
    /// Per-round synchronization overhead of collective writes, seconds.
    pub collective_overhead: f64,
    /// Throughput derate of collective writes relative to independent
    /// writes (HDF5 collective I/O is substantially slower per byte
    /// than independent writes on these systems; see the paper's
    /// choice of independent writes and ref. \[19\]).
    pub collective_factor: f64,
}

impl BandwidthModel {
    /// Summit-like preset. Per-process throughput saturates in the
    /// tens of MB/s (the paper's Fig. 7 measures ~10–35 MB/s per
    /// process at 128 writers) and the aggregate cap yields ~40 MB/s
    /// fair share at 512 ranks.
    pub fn summit() -> Self {
        BandwidthModel {
            per_proc_peak: 40e6,
            half_size: 5e6,
            aggregate_cap: 20e9,
            latency: 300e-6,
            collective_overhead: 2e-3,
            collective_factor: 0.35,
        }
    }

    /// Bebop-like preset: lower aggregate bandwidth ceiling.
    pub fn bebop() -> Self {
        BandwidthModel {
            per_proc_peak: 25e6,
            half_size: 5e6,
            aggregate_cap: 5e9,
            latency: 500e-6,
            collective_overhead: 3e-3,
            collective_factor: 0.3,
        }
    }

    /// A small, easily congested system for tests.
    pub fn tiny_for_tests() -> Self {
        BandwidthModel {
            per_proc_peak: 100e6,
            half_size: 1e6,
            aggregate_cap: 400e6,
            latency: 1e-4,
            collective_overhead: 1e-3,
            collective_factor: 0.5,
        }
    }

    /// Per-process throughput (bytes/s) for a request of `bytes`
    /// ignoring contention: `peak · s / (s + half_size)`.
    pub fn per_proc_throughput(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return self.per_proc_peak / (1.0 + self.half_size);
        }
        self.per_proc_peak * bytes / (bytes + self.half_size)
    }

    /// Uncontended time (s) to write `bytes` from one process.
    pub fn solo_write_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return self.latency;
        }
        self.latency + bytes / self.per_proc_throughput(bytes)
    }

    /// Instantaneous fair-share rate for one of `active` concurrent
    /// writers with request size `bytes`.
    pub fn contended_rate(&self, bytes: f64, active: usize) -> f64 {
        let fair = self.aggregate_cap / active.max(1) as f64;
        self.per_proc_throughput(bytes).min(fair)
    }

    /// The "stable write throughput" `Cthr` of the paper's Eq. (2):
    /// the large-request per-process rate under `nprocs`-way contention.
    pub fn stable_cthr(&self, nprocs: usize) -> f64 {
        self.per_proc_peak
            .min(self.aggregate_cap / nprocs.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_monotone_in_size() {
        let m = BandwidthModel::summit();
        let mut prev = 0.0;
        for mb in [0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0] {
            let t = m.per_proc_throughput(mb * 1e6);
            assert!(t > prev, "throughput must increase with size");
            prev = t;
        }
        assert!(prev < m.per_proc_peak);
    }

    #[test]
    fn saturation_reaches_peak() {
        let m = BandwidthModel::bebop();
        let t = m.per_proc_throughput(1e12);
        assert!(t > 0.999 * m.per_proc_peak);
    }

    #[test]
    fn half_size_is_half_peak() {
        let m = BandwidthModel::summit();
        let t = m.per_proc_throughput(m.half_size);
        assert!((t - m.per_proc_peak / 2.0).abs() < 1e-6 * m.per_proc_peak);
    }

    #[test]
    fn contention_divides_cap() {
        let m = BandwidthModel::tiny_for_tests();
        // 8 writers of huge requests: fair share is cap/8 < per-proc peak.
        let r = m.contended_rate(1e9, 8);
        assert!((r - m.aggregate_cap / 8.0).abs() < 1.0);
        // Single writer of a huge request is limited by its own peak.
        let r1 = m.contended_rate(1e9, 1);
        assert!(r1 <= m.per_proc_peak);
    }

    #[test]
    fn solo_time_includes_latency() {
        let m = BandwidthModel::summit();
        assert!(m.solo_write_time(0.0) >= m.latency);
        let t = m.solo_write_time(100e6);
        assert!(t > 100e6 / m.per_proc_peak);
    }

    #[test]
    fn summit_faster_than_bebop() {
        let s = BandwidthModel::summit();
        let b = BandwidthModel::bebop();
        assert!(s.aggregate_cap > b.aggregate_cap);
        assert!(s.stable_cthr(512) > b.stable_cthr(512));
    }

    #[test]
    fn stable_cthr_decreases_with_scale() {
        let m = BandwidthModel::summit();
        assert!(m.stable_cthr(256) >= m.stable_cthr(4096));
    }
}
