//! Integration of H5File with an externally managed SharedFile, plus
//! async event-set writes feeding recorded chunks — the exact
//! composition the predictive write engine uses.

use h5lite::{crc32c, DatasetSpec, Dtype, EventSet, H5File, H5Reader};
use pfsim::SharedFile;
use testutil::TempPath;

/// RAII temp path: the container file is removed when the guard drops,
/// even if an assertion fails mid-test.
fn tmp(name: &str) -> TempPath {
    TempPath::new(&format!("h5lite-int-{name}"), "h5l")
}

#[test]
fn from_shared_wraps_fresh_file() {
    let guard = tmp("fresh");
    let path = guard.path().to_path_buf();
    let shared = SharedFile::create(&path).unwrap();
    let file = H5File::from_shared(shared).unwrap();
    assert!(file.tail() >= h5lite::SUPERBLOCK);
    let id = file
        .create_dataset(DatasetSpec::new("x", Dtype::U8, &[3]))
        .unwrap();
    file.write_full(id, &[7, 8, 9]).unwrap();
    file.close().unwrap();
    let r = H5Reader::open(&path).unwrap();
    assert_eq!(r.read_raw("x").unwrap(), vec![7, 8, 9]);
}

#[test]
fn async_chunk_writes_then_close() {
    // Chunks written via the event set at pre-reserved offsets, with
    // chunk records added as each write is enqueued (the overlap
    // engine's pattern), must produce a valid readable file.
    let guard = tmp("async");
    let path = guard.path().to_path_buf();
    let file = H5File::create(&path).unwrap();
    let n_chunks = 4u64;
    let chunk_elems = 32u64;
    let id = file
        .create_dataset(
            DatasetSpec::new("d", Dtype::F32, &[n_chunks * chunk_elems]).chunked(&[chunk_elems]),
        )
        .unwrap();
    let es = EventSet::new(2);
    let chunk_bytes = chunk_elems * 4;
    let base = file.reserve(n_chunks * chunk_bytes);
    for c in 0..n_chunks {
        let vals: Vec<f32> = (0..chunk_elems).map(|i| (c * 100 + i) as f32).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let crc = crc32c(&bytes);
        es.write_at(file.shared_file(), base + c * chunk_bytes, bytes, None);
        file.record_chunk(
            id,
            h5lite::ChunkInfo {
                index: c,
                offset: base + c * chunk_bytes,
                stored: chunk_bytes,
                raw: chunk_bytes,
                crc,
            },
        )
        .unwrap();
    }
    es.wait().unwrap();
    file.close().unwrap();

    let r = H5Reader::open(&path).unwrap();
    let vals = r.read_f32("d").unwrap();
    for c in 0..n_chunks {
        for i in 0..chunk_elems {
            assert_eq!(vals[(c * chunk_elems + i) as usize], (c * 100 + i) as f32);
        }
    }
}

#[test]
fn reader_rejects_incomplete_chunk_set() {
    let guard = tmp("incomplete");
    let path = guard.path().to_path_buf();
    let file = H5File::create(&path).unwrap();
    let id = file
        .create_dataset(DatasetSpec::new("d", Dtype::U8, &[8]).chunked(&[4]))
        .unwrap();
    // Record only one of the two chunks.
    let off = file.reserve(4);
    file.shared_file().write_at(off, &[1, 2, 3, 4]).unwrap();
    file.record_chunk(
        id,
        h5lite::ChunkInfo {
            index: 0,
            offset: off,
            stored: 4,
            raw: 4,
            crc: crc32c(&[1, 2, 3, 4]),
        },
    )
    .unwrap();
    file.close().unwrap();
    let r = H5Reader::open(&path).unwrap();
    assert!(r.read_raw("d").is_err());
}

#[test]
fn two_extent_chunk_concatenates_in_order() {
    // The overflow layout: one chunk stored as an in-slot prefix plus
    // an appended tail; the reader must concatenate in record order.
    let guard = tmp("twoextent");
    let path = guard.path().to_path_buf();
    let file = H5File::create(&path).unwrap();
    let id = file
        .create_dataset(DatasetSpec::new("d", Dtype::U8, &[6]).chunked(&[6]))
        .unwrap();
    let a = file.reserve(4);
    file.shared_file().write_at(a, &[10, 11, 12, 13]).unwrap();
    file.record_chunk(
        id,
        h5lite::ChunkInfo {
            index: 0,
            offset: a,
            stored: 4,
            raw: 6,
            crc: crc32c(&[10, 11, 12, 13]),
        },
    )
    .unwrap();
    let b = file.reserve(2);
    file.shared_file().write_at(b, &[14, 15]).unwrap();
    file.record_chunk(
        id,
        h5lite::ChunkInfo {
            index: 0,
            offset: b,
            stored: 2,
            raw: 0,
            crc: crc32c(&[14, 15]),
        },
    )
    .unwrap();
    file.close().unwrap();
    let r = H5Reader::open(&path).unwrap();
    assert_eq!(r.read_raw("d").unwrap(), vec![10, 11, 12, 13, 14, 15]);
}
