//! Property tests for the h5lite container format.

use h5lite::chunk::{gather_tile, scatter_tile};
use h5lite::meta::{
    deserialize_table, serialize_table, AttrValue, ChunkInfo, DatasetMeta, Dtype, FilterSpec,
};
use proptest::prelude::*;

fn arb_dtype() -> impl Strategy<Value = Dtype> {
    prop_oneof![
        Just(Dtype::F32),
        Just(Dtype::F64),
        Just(Dtype::U8),
        Just(Dtype::I64)
    ]
}

fn arb_attr() -> impl Strategy<Value = (String, AttrValue)> {
    (
        "[a-z]{1,12}",
        prop_oneof![
            any::<f64>()
                .prop_filter("finite", |v| v.is_finite())
                .prop_map(AttrValue::F64),
            any::<i64>().prop_map(AttrValue::I64),
            "[ -~]{0,24}".prop_map(AttrValue::Str),
        ],
    )
}

fn arb_meta() -> impl Strategy<Value = DatasetMeta> {
    (
        "[a-z/]{1,20}",
        arb_dtype(),
        proptest::collection::vec(1u64..64, 1..4),
        proptest::collection::vec(
            (
                any::<u64>(),
                any::<u64>(),
                0u64..1_000_000,
                0u64..1_000_000,
                any::<u32>(),
            ),
            0..6,
        ),
        proptest::collection::vec(arb_attr(), 0..4),
        proptest::option::of(proptest::collection::vec(1u64..8, 1..4)),
        proptest::collection::vec(
            (0u32..100_000, proptest::collection::vec(any::<u8>(), 0..16)),
            0..3,
        ),
    )
        .prop_map(|(name, dtype, dims, raw_chunks, attrs, cd, filters)| {
            let chunk_dims = cd.filter(|c| c.len() == dims.len());
            DatasetMeta {
                name,
                dtype,
                dims,
                chunk_dims,
                filters: filters
                    .into_iter()
                    .map(|(id, params)| FilterSpec { id, params })
                    .collect(),
                chunks: raw_chunks
                    .into_iter()
                    .enumerate()
                    .map(|(i, (_, offset, stored, raw, crc))| ChunkInfo {
                        index: i as u64,
                        offset,
                        stored,
                        raw,
                        crc,
                    })
                    .collect(),
                attrs,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(128, 0x85_1173) /* pinned: deterministic CI */)]

    #[test]
    fn metadata_table_roundtrips(metas in proptest::collection::vec(arb_meta(), 0..5)) {
        let bytes = serialize_table(&metas);
        let parsed = deserialize_table(&bytes).unwrap();
        prop_assert_eq!(parsed, metas);
    }

    #[test]
    fn metadata_truncation_never_panics(metas in proptest::collection::vec(arb_meta(), 1..3), frac in 0.0f64..1.0) {
        let bytes = serialize_table(&metas);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = deserialize_table(&bytes[..cut.min(bytes.len().saturating_sub(1))]);
    }

    #[test]
    fn tiles_cover_dataset_exactly(
        dims in proptest::collection::vec(1u64..12, 1..4),
        chunk in proptest::collection::vec(1u64..6, 1..4),
        elem in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        prop_assume!(dims.len() == chunk.len());
        let n: u64 = dims.iter().product();
        let data: Vec<u8> = (0..n as usize * elem).map(|i| (i % 251) as u8).collect();
        let n_chunks: u64 = dims.iter().zip(&chunk).map(|(&d, &c)| d.div_ceil(c)).product();
        let mut rebuilt = vec![0xFFu8; data.len()];
        let mut total_tile_bytes = 0usize;
        for c in 0..n_chunks {
            let tile = gather_tile(&data, &dims, elem, &chunk, c).unwrap();
            total_tile_bytes += tile.len();
            scatter_tile(&mut rebuilt, &dims, elem, &chunk, c, &tile).unwrap();
        }
        // Tiles partition the buffer: total bytes match and scatter
        // reconstructs the original exactly (every byte visited).
        prop_assert_eq!(total_tile_bytes, data.len());
        prop_assert_eq!(rebuilt, data);
    }
}
