//! # h5lite — a simplified HDF5-like hierarchical container
//!
//! The paper deeply integrates predictive compression with HDF5 1.13
//! (chunked datasets, the H5Z filter pipeline, and the asynchronous
//! VOL). No complete Rust HDF5 stack exists, so this crate implements
//! the subset the system needs, with the same structural roles:
//!
//! * a **self-describing file format** (superblock → chunk data →
//!   metadata table), path-named datasets, attributes ([`meta`],
//!   [`mod@file`]);
//! * **contiguous and chunked layouts** with tile gather/scatter on
//!   read/write ([`chunk`]);
//! * an **H5Z-like filter pipeline** with the szlite lossy filter
//!   registered under H5Z-SZ's id 32017, plus shuffle and LZSS
//!   ([`filter`]);
//! * **event-set asynchronous writes** on background threads — the
//!   async-VOL capability the paper's overlap design builds on
//!   ([`asyncq`]);
//! * a **parallel chunk-compression pipeline** ([`pipeline`]): chunk
//!   tiles fan out to a scratch-reusing worker pool and stream into
//!   the async write queue in chunk order, so compression overlaps
//!   writes while keeping files byte-identical to the serial path;
//! * **parallel shared-file writes** at pre-computed offsets via
//!   [`H5File::write_chunk_at`] from many rank threads.
//!
//! Files round-trip: anything written can be re-opened with
//! [`H5Reader`] and decoded back through the inverse filter chain.

pub mod asyncq;
pub mod chunk;
pub mod crc;
pub mod error;
pub mod file;
pub mod filter;
pub mod meta;
pub mod pipeline;
pub mod pool;
pub mod scrub;

pub use asyncq::EventSet;
pub use crc::{crc32c, Crc32c};
pub use error::{AsyncWriteFailure, H5Error, Result};
pub use file::{
    DatasetId, DatasetSpec, H5File, H5Reader, FLAG_CHUNK_CRC, MAGIC, MIN_VERSION, SUPERBLOCK,
    VERSION,
};
pub use filter::{
    Filter, FilterRegistry, FilterScratch, SzFilterParams, LZSS_FILTER_ID, SHUFFLE_FILTER_ID,
    SZLITE_FILTER_ID,
};
pub use meta::{AttrValue, ChunkInfo, DatasetMeta, Dtype, FilterSpec};
pub use pipeline::{compress_chunks, ordered_fanout, workers_from_env, workers_from_env_or};
pub use pool::BufferPool;
