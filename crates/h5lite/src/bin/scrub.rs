//! Command-line container scrub.
//!
//! ```text
//! scrub <container> [--repair <replica>] [--quarantine] [--json]
//! ```
//!
//! Walks the container, prints a damage map, and exits 0 when clean,
//! 1 when damaged, 2 on usage/I/O errors. `--repair` heals damaged
//! chunks from a replica container (bytes are verified against the
//! target's recorded CRCs before being written). `--quarantine`
//! renames a container with container-level damage (torn or corrupt
//! superblock/table) to `<name>.quarantined`.
//!
//! `--json` emits one machine-readable JSON object on stdout instead
//! of the human damage map: container classification, per-chunk
//! verdicts, repair/quarantine outcomes, and — when a flight-recorder
//! file (`<stem>.obs.jsonl`) sits beside the container — the newest
//! readable flight record, so the post-mortem of a torn step includes
//! what the dying run was doing (fault retries, queue depth, stage
//! timings). Exit codes are identical in both modes.

use h5lite::scrub::{quarantine, repair_from_replica, scrub, ChunkState, ContainerState};
use obs::json::escape;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: scrub <container> [--repair <replica>] [--quarantine] [--json]");
    ExitCode::from(2)
}

/// The newest readable flight record beside `container`, as a raw
/// JSON object string, plus the count of unreadable lines.
fn flight_summary(container: &str) -> (Option<String>, usize) {
    let fpath = obs::flight_path(Path::new(container));
    match obs::read_flight(&fpath) {
        Ok(scan) => (
            scan.records.last().map(|r| r.to_json_line()),
            scan.errors.len(),
        ),
        Err(_) => (None, 0),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut replica = None;
    let mut do_quarantine = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repair" => {
                i += 1;
                match args.get(i) {
                    Some(r) => replica = Some(r.clone()),
                    None => return usage(),
                }
            }
            "--quarantine" => do_quarantine = true,
            "--json" => json = true,
            a if path.is_none() && !a.starts_with('-') => path = Some(a.to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = path else { return usage() };

    let report = match scrub(&path) {
        Ok(r) => r,
        Err(e) => {
            if json {
                println!(
                    "{{\"path\": \"{}\", \"error\": \"{}\", \"exit\": 2}}",
                    escape(&path),
                    escape(&e.to_string())
                );
            } else {
                eprintln!("scrub {path}: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let classification = match &report.container {
        ContainerState::Ok => "ok".to_string(),
        ContainerState::Torn => "torn".to_string(),
        ContainerState::CorruptSuperblock(d) => format!("corrupt_superblock: {d}"),
        ContainerState::CorruptTable(d) => format!("corrupt_table: {d}"),
    };
    let (flight, flight_bad_lines) = flight_summary(&path);

    if !json {
        match &report.container {
            ContainerState::Ok => {
                let label = if report.verified {
                    "verified"
                } else {
                    "v1, bounds-checked only"
                };
                println!(
                    "{path}: container ok ({label}), {} chunk record(s)",
                    report.chunks.len()
                );
            }
            state => println!("{path}: container damaged: {state:?}"),
        }
        for c in report.damaged() {
            match c.state {
                ChunkState::Corrupt { expected, actual } => println!(
                    "  corrupt   {}[{}] record {} at offset {} ({} bytes): recorded {expected:#010x}, read {actual:#010x}",
                    c.dataset, c.index, c.record, c.offset, c.stored
                ),
                ChunkState::Truncated => println!(
                    "  truncated {}[{}] record {} at offset {} ({} bytes past end of file)",
                    c.dataset, c.index, c.record, c.offset, c.stored
                ),
                ChunkState::Ok => {}
            }
        }
        if let Some(rec) = flight.as_deref().and_then(|l| {
            obs::json::parse(l)
                .ok()
                .and_then(|v| obs::StepFlight::from_json(&v).ok())
        }) {
            println!(
                "  flight: step {} — {} retries, {} transient fault(s), {} escalation(s), \
                 queue depth max {}, {:.4}s total",
                rec.step,
                rec.retries,
                rec.transient_faults,
                rec.escalations,
                rec.queue_depth_max,
                rec.total_secs
            );
        }
    }

    // From here on the human path prints as it goes; the JSON path
    // collects outcome fields and emits one object at each exit.
    let mut quarantined_to: Option<String> = None;
    let mut repair_json = "null".to_string();

    let emit = |exit: u8, quarantined_to: &Option<String>, repair_json: &str| {
        if json {
            let damaged: Vec<String> = report
                .damaged()
                .map(|c| {
                    let (state, detail) = match c.state {
                        ChunkState::Corrupt { expected, actual } => (
                            "corrupt",
                            format!(", \"expected_crc\": {expected}, \"actual_crc\": {actual}"),
                        ),
                        ChunkState::Truncated => ("truncated", String::new()),
                        ChunkState::Ok => ("ok", String::new()),
                    };
                    format!(
                        "{{\"dataset\": \"{}\", \"index\": {}, \"record\": {}, \
                         \"offset\": {}, \"stored\": {}, \"state\": \"{state}\"{detail}}}",
                        escape(&c.dataset),
                        c.index,
                        c.record,
                        c.offset,
                        c.stored
                    )
                })
                .collect();
            println!(
                "{{\"path\": \"{}\", \"container\": \"{}\", \"verified\": {}, \
                 \"chunk_records\": {}, \"damaged\": [{}], \"quarantined_to\": {}, \
                 \"repair\": {}, \"flight\": {}, \"flight_bad_lines\": {}, \"exit\": {exit}}}",
                escape(&path),
                escape(&classification),
                report.verified,
                report.chunks.len(),
                damaged.join(", "),
                match quarantined_to {
                    Some(q) => format!("\"{}\"", escape(q)),
                    None => "null".into(),
                },
                repair_json,
                flight.as_deref().unwrap_or("null"),
                flight_bad_lines,
            );
        }
        ExitCode::from(exit)
    };

    if report.container != ContainerState::Ok {
        if do_quarantine {
            match quarantine(&path) {
                Ok(dest) => {
                    if !json {
                        println!("quarantined to {}", dest.display());
                    }
                    quarantined_to = Some(dest.display().to_string());
                }
                Err(e) => {
                    if json {
                        println!(
                            "{{\"path\": \"{}\", \"error\": \"quarantine: {}\", \"exit\": 2}}",
                            escape(&path),
                            escape(&e.to_string())
                        );
                    } else {
                        eprintln!("quarantine {path}: {e}");
                    }
                    return ExitCode::from(2);
                }
            }
        }
        return emit(1, &quarantined_to, &repair_json);
    }

    if report.is_clean() {
        return emit(0, &quarantined_to, &repair_json);
    }

    if let Some(replica) = replica {
        match repair_from_replica(&path, &replica) {
            Ok(rep) => {
                if !json {
                    println!(
                        "repair from {replica}: {} repaired, {} unrepairable",
                        rep.repaired, rep.unrepairable
                    );
                }
                repair_json = format!(
                    "{{\"replica\": \"{}\", \"repaired\": {}, \"unrepairable\": {}}}",
                    escape(&replica),
                    rep.repaired,
                    rep.unrepairable
                );
                if rep.unrepairable == 0 {
                    return emit(0, &quarantined_to, &repair_json);
                }
            }
            Err(e) => {
                if json {
                    println!(
                        "{{\"path\": \"{}\", \"error\": \"repair: {}\", \"exit\": 2}}",
                        escape(&path),
                        escape(&e.to_string())
                    );
                } else {
                    eprintln!("repair {path}: {e}");
                }
                return ExitCode::from(2);
            }
        }
    }
    emit(1, &quarantined_to, &repair_json)
}
