//! Command-line container scrub.
//!
//! ```text
//! scrub <container> [--repair <replica>] [--quarantine]
//! ```
//!
//! Walks the container, prints a damage map, and exits 0 when clean,
//! 1 when damaged, 2 on usage/I/O errors. `--repair` heals damaged
//! chunks from a replica container (bytes are verified against the
//! target's recorded CRCs before being written). `--quarantine`
//! renames a container with container-level damage (torn or corrupt
//! superblock/table) to `<name>.quarantined`.

use h5lite::scrub::{quarantine, repair_from_replica, scrub, ChunkState, ContainerState};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: scrub <container> [--repair <replica>] [--quarantine]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut replica = None;
    let mut do_quarantine = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repair" => {
                i += 1;
                match args.get(i) {
                    Some(r) => replica = Some(r.clone()),
                    None => return usage(),
                }
            }
            "--quarantine" => do_quarantine = true,
            a if path.is_none() && !a.starts_with('-') => path = Some(a.to_string()),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = path else { return usage() };

    let report = match scrub(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scrub {path}: {e}");
            return ExitCode::from(2);
        }
    };

    match &report.container {
        ContainerState::Ok => {
            let label = if report.verified {
                "verified"
            } else {
                "v1, bounds-checked only"
            };
            println!(
                "{path}: container ok ({label}), {} chunk record(s)",
                report.chunks.len()
            );
        }
        state => println!("{path}: container damaged: {state:?}"),
    }
    for c in report.damaged() {
        match c.state {
            ChunkState::Corrupt { expected, actual } => println!(
                "  corrupt   {}[{}] record {} at offset {} ({} bytes): recorded {expected:#010x}, read {actual:#010x}",
                c.dataset, c.index, c.record, c.offset, c.stored
            ),
            ChunkState::Truncated => println!(
                "  truncated {}[{}] record {} at offset {} ({} bytes past end of file)",
                c.dataset, c.index, c.record, c.offset, c.stored
            ),
            ChunkState::Ok => {}
        }
    }

    if report.container != ContainerState::Ok {
        if do_quarantine {
            match quarantine(&path) {
                Ok(dest) => println!("quarantined to {}", dest.display()),
                Err(e) => {
                    eprintln!("quarantine {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        return ExitCode::from(1);
    }

    if report.is_clean() {
        return ExitCode::SUCCESS;
    }

    if let Some(replica) = replica {
        match repair_from_replica(&path, &replica) {
            Ok(rep) => {
                println!(
                    "repair from {replica}: {} repaired, {} unrepairable",
                    rep.repaired, rep.unrepairable
                );
                if rep.unrepairable == 0 {
                    return ExitCode::SUCCESS;
                }
            }
            Err(e) => {
                eprintln!("repair {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::from(1)
}
