//! CRC32C (Castagnoli) — the per-chunk integrity checksum of the v2
//! container format.
//!
//! CRC32C is the checksum HDF5's Fletcher filter competes with and the
//! one modern storage stacks (iSCSI, ext4, Btrfs) standardized on: it
//! detects all single-bit flips, all double-bit flips within the
//! payload sizes used here, and any burst shorter than 32 bits —
//! exactly the bit-rot and torn-tail classes the scrub pass
//! classifies. The implementation is a table-driven slice-by-8 in
//! plain safe Rust (no hardware intrinsics, no dependencies); the
//! tables are built at compile time.

/// Reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 lookup tables, generated at compile time.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            b += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

/// Incremental CRC32C state — feed bytes with [`Crc32c::update`],
/// finish with [`Crc32c::finalize`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32c(!0)
    }

    /// Fold `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        let mut chunks = data.chunks_exact(8);
        for w in &mut chunks {
            let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ crc;
            let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.0 = crc;
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        !self.0
    }
}

/// CRC32C of a byte slice in one call.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 37) as u8).collect();
        for split in [0, 1, 7, 8, 9, 500, 999, 1000] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 256];
        let clean = crc32c(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32c(&bad), clean, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32c(&data);
        for cut in [1, 32, 63] {
            assert_ne!(crc32c(&data[..cut]), clean, "cut {cut}");
        }
    }
}
