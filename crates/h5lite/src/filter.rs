//! H5Z-like dynamically registered filter pipeline.
//!
//! HDF5 compresses chunks through a chain of registered filters; the
//! paper's baseline is the H5Z-SZ filter (id 32017). We register an
//! szlite-backed equivalent under the same id, plus the classic
//! shuffle and an LZSS "deflate-like" filter, and apply chains in
//! declaration order on write / reverse order on read.

use crate::error::{H5Error, Result};
use crate::meta::FilterSpec;
use std::collections::HashMap;
use std::sync::Arc;
use szlite::stream::{get_f64, get_varint, put_f64, put_varint};
use szlite::{Config, Dims, ErrorBound};

/// Filter id used by H5Z-SZ (kept for fidelity).
pub const SZLITE_FILTER_ID: u32 = 32017;
/// Byte-shuffle filter id (HDF5's builtin shuffle is 2).
pub const SHUFFLE_FILTER_ID: u32 = 2;
/// LZSS lossless filter id (stand-in for deflate, HDF5 id 1).
pub const LZSS_FILTER_ID: u32 = 1;

/// Reusable per-worker workspace for the filter pipeline, both
/// directions.
///
/// One `FilterScratch` per thread lets every chunk run the whole
/// filter chain without re-allocating codec state: the szlite
/// compressor workspace (quantization codes, Huffman frequency tables,
/// bit buffer), the mirror decompressor workspace (Huffman table with
/// its primary decode LUT and sparse-rebuild scratch, code/literal
/// staging, reconstruction grid), the byte↔float staging buffer, and
/// the inter-stage ping-pong buffer all persist across chunks — so
/// per-chunk decode pays only for the symbols a chunk actually uses,
/// never for the full quantizer alphabet.
#[derive(Debug, Default)]
pub struct FilterScratch {
    /// szlite compressor workspace.
    pub sz: szlite::Scratch,
    /// szlite decompressor workspace (the decode mirror of `sz`).
    pub dsz: szlite::DecompressScratch,
    /// f32 staging for the SZ filter's byte↔float conversions.
    floats: Vec<f32>,
    /// Recycled intermediate buffer for multi-stage chains.
    stage: Vec<u8>,
}

impl FilterScratch {
    /// Empty workspace; buffers grow to steady-state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A chunk filter: bytes → bytes, invertible.
///
/// The trait is symmetric: both directions borrow their input, append
/// to a caller-cleared output buffer, and reuse [`FilterScratch`]
/// state instead of allocating per call, so worker pools on either
/// side of the pipeline run allocation-free at steady state.
pub trait Filter: Send + Sync {
    /// Registered id.
    fn id(&self) -> u32;
    /// Forward (compress/transform) pass: encode `data`, appending the
    /// result to `out` (cleared by the caller) and reusing `scratch`
    /// buffers instead of allocating per call.
    fn encode(
        &self,
        data: &[u8],
        params: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut FilterScratch,
    ) -> Result<()>;
    /// Inverse pass: decode `data`, appending the result to `out`
    /// (cleared by the caller) and reusing `scratch` buffers.
    fn decode(
        &self,
        data: &[u8],
        params: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut FilterScratch,
    ) -> Result<()>;
}

/// Parameters of the szlite filter, stored in [`FilterSpec::params`].
#[derive(Debug, Clone, PartialEq)]
pub struct SzFilterParams {
    /// Absolute error bound (`true`) or value-range relative (`false`).
    pub absolute: bool,
    /// Bound value.
    pub bound: f64,
    /// Chunk extents the filter interprets the byte stream as.
    pub dims: Vec<usize>,
}

impl SzFilterParams {
    /// Encode to the opaque parameter bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(u8::from(self.absolute));
        put_f64(&mut out, self.bound);
        put_varint(&mut out, self.dims.len() as u64);
        for &d in &self.dims {
            put_varint(&mut out, d as u64);
        }
        out
    }

    /// Decode from parameter bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let absolute = match buf.first() {
            Some(0) => false,
            Some(1) => true,
            _ => return Err(H5Error::Corrupt("sz filter flag")),
        };
        pos += 1;
        let bound = get_f64(buf, &mut pos).map_err(|_| H5Error::Truncated("sz bound"))?;
        let nd = get_varint(buf, &mut pos).map_err(|_| H5Error::Truncated("sz rank"))? as usize;
        if nd == 0 || nd > 3 {
            return Err(H5Error::Corrupt("sz rank"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(
                get_varint(buf, &mut pos).map_err(|_| H5Error::Truncated("sz dims"))? as usize,
            );
        }
        Ok(SzFilterParams {
            absolute,
            bound,
            dims,
        })
    }

    fn config(&self) -> Config {
        Config {
            error_bound: if self.absolute {
                ErrorBound::Abs(self.bound)
            } else {
                ErrorBound::Rel(self.bound)
            },
            ..Config::default()
        }
    }
}

/// The szlite lossy filter (H5Z-SZ analog, f32 chunks).
pub struct SzliteFilter;

impl Filter for SzliteFilter {
    fn id(&self) -> u32 {
        SZLITE_FILTER_ID
    }

    fn encode(
        &self,
        data: &[u8],
        params: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut FilterScratch,
    ) -> Result<()> {
        let p = SzFilterParams::from_bytes(params)?;
        if !data.len().is_multiple_of(4) {
            return Err(H5Error::Filter("sz filter requires f32 data".into()));
        }
        scratch.floats.clear();
        scratch.floats.extend(
            data.chunks_exact(4)
                .map(|b| f32::from_le_bytes(b.try_into().unwrap())),
        );
        let dims = Dims::from_slice(&p.dims)?;
        szlite::compress_into(&scratch.floats, &dims, &p.config(), &mut scratch.sz, out)?;
        Ok(())
    }

    fn decode(
        &self,
        data: &[u8],
        _params: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut FilterScratch,
    ) -> Result<()> {
        szlite::decompress_into::<f32>(data, &mut scratch.dsz, &mut scratch.floats)?;
        // Bulk float→byte conversion: resize-then-fill lets the copy
        // vectorize instead of growing the vec 4 bytes at a time.
        let base = out.len();
        out.resize(base + scratch.floats.len() * 4, 0);
        for (dst, f) in out[base..].chunks_exact_mut(4).zip(&scratch.floats) {
            dst.copy_from_slice(&f.to_le_bytes());
        }
        Ok(())
    }
}

/// Byte-shuffle filter: groups the i-th byte of every element together
/// (improves downstream lossless compression of floats).
pub struct ShuffleFilter;

impl ShuffleFilter {
    fn elem_size(params: &[u8]) -> Result<usize> {
        match params.first() {
            Some(&s) if s > 0 && usize::from(s) <= 16 => Ok(usize::from(s)),
            _ => Err(H5Error::Corrupt("shuffle element size")),
        }
    }
}

impl Filter for ShuffleFilter {
    fn id(&self) -> u32 {
        SHUFFLE_FILTER_ID
    }

    fn encode(
        &self,
        data: &[u8],
        params: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut FilterScratch,
    ) -> Result<()> {
        let es = Self::elem_size(params)?;
        if !data.len().is_multiple_of(es) {
            return Err(H5Error::Filter(
                "shuffle: length not multiple of element".into(),
            ));
        }
        let n = data.len() / es;
        let base = out.len();
        out.resize(base + data.len(), 0);
        let dst = &mut out[base..];
        for i in 0..n {
            for b in 0..es {
                dst[b * n + i] = data[i * es + b];
            }
        }
        Ok(())
    }

    fn decode(
        &self,
        data: &[u8],
        params: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut FilterScratch,
    ) -> Result<()> {
        let es = Self::elem_size(params)?;
        if !data.len().is_multiple_of(es) {
            return Err(H5Error::Filter(
                "shuffle: length not multiple of element".into(),
            ));
        }
        let n = data.len() / es;
        let base = out.len();
        out.resize(base + data.len(), 0);
        let dst = &mut out[base..];
        for i in 0..n {
            for b in 0..es {
                dst[i * es + b] = data[b * n + i];
            }
        }
        Ok(())
    }
}

/// LZSS lossless filter.
pub struct LzssFilter;

impl Filter for LzssFilter {
    fn id(&self) -> u32 {
        LZSS_FILTER_ID
    }

    fn encode(
        &self,
        data: &[u8],
        _params: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut FilterScratch,
    ) -> Result<()> {
        out.extend_from_slice(&szlite::lossless::compress(data));
        Ok(())
    }

    fn decode(
        &self,
        data: &[u8],
        _params: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut FilterScratch,
    ) -> Result<()> {
        szlite::lossless::decompress_into(data, out)?;
        Ok(())
    }
}

/// Registry of filter implementations by id.
#[derive(Clone)]
pub struct FilterRegistry {
    filters: HashMap<u32, Arc<dyn Filter>>,
}

impl Default for FilterRegistry {
    fn default() -> Self {
        let mut r = FilterRegistry {
            filters: HashMap::new(),
        };
        r.register(Arc::new(SzliteFilter));
        r.register(Arc::new(ShuffleFilter));
        r.register(Arc::new(LzssFilter));
        r
    }
}

impl FilterRegistry {
    /// Register (or replace) a filter implementation.
    pub fn register(&mut self, f: Arc<dyn Filter>) {
        self.filters.insert(f.id(), f);
    }

    /// Look up a filter by id.
    pub fn get(&self, id: u32) -> Result<&Arc<dyn Filter>> {
        self.filters.get(&id).ok_or(H5Error::UnknownFilter(id))
    }

    /// Run a pipeline chain, ping-ponging between `out` and the
    /// scratch stage buffer so the final stage always lands in `out`
    /// and nothing is allocated.
    fn run_chain<'a, I>(
        &self,
        stages: I,
        n: usize,
        data: &[u8],
        scratch: &mut FilterScratch,
        out: &mut Vec<u8>,
        forward: bool,
    ) -> Result<()>
    where
        I: Iterator<Item = &'a FilterSpec>,
    {
        // The stage buffer lives outside `scratch` for the duration so
        // the codec can borrow `scratch` mutably alongside it.
        let mut stage = std::mem::take(&mut scratch.stage);
        // Parity: with an odd stage count the first output already
        // goes to `out`, so the alternation ends there.
        let mut into_out = n % 2 == 1;
        let mut first = true;
        let mut res = Ok(());
        for s in stages {
            let (dst, src): (&mut Vec<u8>, &[u8]) = if into_out {
                (&mut *out, if first { data } else { &stage })
            } else {
                (&mut stage, if first { data } else { out })
            };
            dst.clear();
            res = self.get(s.id).and_then(|f| {
                if forward {
                    f.encode(src, &s.params, dst, scratch)
                } else {
                    f.decode(src, &s.params, dst, scratch)
                }
            });
            if res.is_err() {
                break;
            }
            into_out = !into_out;
            first = false;
        }
        scratch.stage = stage;
        res
    }

    /// Apply a pipeline in declaration order (write path), appending
    /// the final stage's output to `out` (cleared first).
    ///
    /// The input is borrowed and `scratch` supplies every intermediate
    /// buffer, so a caller recycling `out` (e.g. through a
    /// [`BufferPool`](crate::BufferPool)) runs the whole chain without
    /// allocating.
    pub fn apply_into(
        &self,
        specs: &[FilterSpec],
        data: &[u8],
        scratch: &mut FilterScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        out.clear();
        if specs.is_empty() {
            out.extend_from_slice(data);
            return Ok(());
        }
        self.run_chain(specs.iter(), specs.len(), data, scratch, out, true)
    }

    /// Apply a pipeline in declaration order, returning an owned
    /// buffer. Allocating convenience over
    /// [`FilterRegistry::apply_into`].
    pub fn apply(
        &self,
        specs: &[FilterSpec],
        data: &[u8],
        scratch: &mut FilterScratch,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.apply_into(specs, data, scratch, &mut out)?;
        Ok(out)
    }

    /// Invert a pipeline in reverse order (read path), appending the
    /// de-filtered bytes to `out` (cleared first) — the mirror image of
    /// [`FilterRegistry::apply_into`].
    pub fn invert_into(
        &self,
        specs: &[FilterSpec],
        data: &[u8],
        scratch: &mut FilterScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        out.clear();
        if specs.is_empty() {
            out.extend_from_slice(data);
            return Ok(());
        }
        self.run_chain(specs.iter().rev(), specs.len(), data, scratch, out, false)
    }

    /// Invert a pipeline in reverse order, returning an owned buffer.
    /// Allocating convenience over [`FilterRegistry::invert_into`].
    pub fn invert(
        &self,
        specs: &[FilterSpec],
        data: &[u8],
        scratch: &mut FilterScratch,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.invert_into(specs, data, scratch, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s_to_bytes(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|f| f.to_le_bytes()).collect()
    }

    fn enc(f: &dyn Filter, data: &[u8], params: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut scratch = FilterScratch::new();
        f.encode(data, params, &mut out, &mut scratch)?;
        Ok(out)
    }

    fn dec(f: &dyn Filter, data: &[u8], params: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut scratch = FilterScratch::new();
        f.decode(data, params, &mut out, &mut scratch)?;
        Ok(out)
    }

    #[test]
    fn sz_params_roundtrip() {
        let p = SzFilterParams {
            absolute: true,
            bound: 1e-3,
            dims: vec![4, 5, 6],
        };
        assert_eq!(SzFilterParams::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn sz_filter_roundtrip_within_bound() {
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
        let bytes = f32s_to_bytes(&data);
        let params = SzFilterParams {
            absolute: true,
            bound: 1e-3,
            dims: vec![16, 16, 16],
        }
        .to_bytes();
        let f = SzliteFilter;
        let enc = enc(&f, &bytes, &params).unwrap();
        assert!(enc.len() < bytes.len());
        let dec = dec(&f, &enc, &params).unwrap();
        assert_eq!(dec.len(), bytes.len());
        for (a, b) in bytes.chunks_exact(4).zip(dec.chunks_exact(4)) {
            let x = f32::from_le_bytes(a.try_into().unwrap());
            let y = f32::from_le_bytes(b.try_into().unwrap());
            assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn shuffle_roundtrip() {
        let data: Vec<u8> = (0..64).collect();
        let f = ShuffleFilter;
        let enc = enc(&f, &data, &[4]).unwrap();
        assert_ne!(enc, data);
        assert_eq!(dec(&f, &enc, &[4]).unwrap(), data);
    }

    #[test]
    fn lzss_filter_roundtrip() {
        let data = vec![7u8; 10_000];
        let f = LzssFilter;
        let enc = enc(&f, &data, &[]).unwrap();
        assert!(enc.len() < 200);
        assert_eq!(dec(&f, &enc, &[]).unwrap(), data);
    }

    #[test]
    fn pipeline_order_and_inverse() {
        let reg = FilterRegistry::default();
        let data: Vec<u8> = (0..255u8).cycle().take(4096).collect();
        let specs = vec![
            FilterSpec {
                id: SHUFFLE_FILTER_ID,
                params: vec![4],
            },
            FilterSpec {
                id: LZSS_FILTER_ID,
                params: vec![],
            },
        ];
        let mut scratch = FilterScratch::new();
        let enc = reg.apply(&specs, &data, &mut scratch).unwrap();
        let dec = reg.invert(&specs, &enc, &mut scratch).unwrap();
        assert_eq!(dec, data);

        // A dirty scratch reused on the same input yields identical
        // bytes in both directions — the determinism guarantee the
        // pipelines rely on.
        let enc2 = reg.apply(&specs, &data, &mut scratch).unwrap();
        let fresh = reg.apply(&specs, &data, &mut FilterScratch::new()).unwrap();
        assert_eq!(enc2, fresh);
        let dec2 = reg.invert(&specs, &enc2, &mut scratch).unwrap();
        let dec_fresh = reg
            .invert(&specs, &fresh, &mut FilterScratch::new())
            .unwrap();
        assert_eq!(dec2, dec_fresh);
        assert_eq!(dec2, data);
    }

    #[test]
    fn unknown_filter_rejected() {
        let reg = FilterRegistry::default();
        let specs = vec![FilterSpec {
            id: 999,
            params: vec![],
        }];
        assert!(matches!(
            reg.apply(&specs, &[1, 2, 3], &mut FilterScratch::new()),
            Err(H5Error::UnknownFilter(999))
        ));
    }

    #[test]
    fn sz_filter_rejects_unaligned() {
        let f = SzliteFilter;
        let params = SzFilterParams {
            absolute: true,
            bound: 0.1,
            dims: vec![3],
        }
        .to_bytes();
        assert!(enc(&f, &[1, 2, 3], &params).is_err());
    }
}
