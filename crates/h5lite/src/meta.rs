//! Metadata model and binary serialization of the h5lite container.
//!
//! The on-disk layout mirrors HDF5's roles with a simplified encoding:
//!
//! ```text
//! [superblock: 32 bytes]  magic "H5LT", version, table offset/len
//! [raw chunk data ......] appended in write order
//! [metadata table .......] serialized dataset records (this module)
//! ```
//!
//! The superblock is rewritten on close to point at the final table,
//! like HDF5's end-of-file metadata flush.

use crate::error::{H5Error, Result};
use szlite::stream::{
    get_f64, get_u32, get_u64, get_varint, put_f64, put_u32, put_u64, put_varint,
};

/// Element type of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Raw bytes.
    U8,
    /// 64-bit signed integer.
    I64,
}

impl Dtype {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F64 => 8,
            Dtype::U8 => 1,
            Dtype::I64 => 8,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Dtype::F32 => 0,
            Dtype::F64 => 1,
            Dtype::U8 => 2,
            Dtype::I64 => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Self> {
        Ok(match t {
            0 => Dtype::F32,
            1 => Dtype::F64,
            2 => Dtype::U8,
            3 => Dtype::I64,
            _ => return Err(H5Error::Corrupt("dtype tag")),
        })
    }
}

/// An attribute value (HDF5 attributes, simplified).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Floating-point scalar.
    F64(f64),
    /// Integer scalar.
    I64(i64),
    /// UTF-8 string.
    Str(String),
}

/// A filter applied to chunk data (H5Z analog).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    /// Registered filter id (e.g. [`crate::filter::SZLITE_FILTER_ID`]).
    pub id: u32,
    /// Opaque filter parameters (filter-defined encoding).
    pub params: Vec<u8>,
}

/// Location of one stored chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Linear chunk index in the chunk grid.
    pub index: u64,
    /// Absolute file offset of the stored (possibly filtered) bytes.
    pub offset: u64,
    /// Stored length in bytes.
    pub stored: u64,
    /// Unfiltered length in bytes.
    pub raw: u64,
    /// CRC32C of the stored bytes (see [`crate::crc`]); `0` in files
    /// written before format v2, where reads go unverified.
    pub crc: u32,
}

/// Metadata record of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Full path name, e.g. `"fields/temperature"`.
    pub name: String,
    /// Element type.
    pub dtype: Dtype,
    /// Logical extents (slowest first).
    pub dims: Vec<u64>,
    /// Chunk extents; `None` = contiguous layout.
    pub chunk_dims: Option<Vec<u64>>,
    /// Filter pipeline applied to each chunk, in application order.
    pub filters: Vec<FilterSpec>,
    /// Stored chunks (one entry for contiguous layout).
    pub chunks: Vec<ChunkInfo>,
    /// Attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

impl DatasetMeta {
    /// Number of logical elements.
    pub fn n_elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Logical byte size of the full dataset.
    pub fn raw_bytes(&self) -> u64 {
        self.n_elements() * self.dtype.size() as u64
    }

    /// Total stored bytes across chunks.
    pub fn stored_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.stored).sum()
    }

    /// Chunk-grid extents (ceil-division of dims by chunk dims).
    pub fn chunk_grid(&self) -> Vec<u64> {
        match &self.chunk_dims {
            None => vec![1],
            Some(cd) => self
                .dims
                .iter()
                .zip(cd)
                .map(|(&d, &c)| d.div_ceil(c))
                .collect(),
        }
    }

    /// Total number of chunks in the grid.
    pub fn n_chunks(&self) -> u64 {
        self.chunk_grid().iter().product()
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .ok_or(H5Error::Corrupt("string length"))?;
    let bytes = buf.get(*pos..end).ok_or(H5Error::Truncated("string"))?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| H5Error::Corrupt("utf8"))
}

/// Serialize a metadata table (all datasets in a file). Chunk records
/// carry their CRC32C — the v2 on-disk encoding; v1 files (no
/// checksums) are read via [`deserialize_table_v1`].
pub fn serialize_table(datasets: &[DatasetMeta]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, datasets.len() as u64);
    for d in datasets {
        put_str(&mut out, &d.name);
        out.push(d.dtype.tag());
        put_varint(&mut out, d.dims.len() as u64);
        for &x in &d.dims {
            put_varint(&mut out, x);
        }
        match &d.chunk_dims {
            None => out.push(0),
            Some(cd) => {
                out.push(1);
                put_varint(&mut out, cd.len() as u64);
                for &x in cd {
                    put_varint(&mut out, x);
                }
            }
        }
        put_varint(&mut out, d.filters.len() as u64);
        for f in &d.filters {
            put_u32(&mut out, f.id);
            put_varint(&mut out, f.params.len() as u64);
            out.extend_from_slice(&f.params);
        }
        put_varint(&mut out, d.chunks.len() as u64);
        for c in &d.chunks {
            put_varint(&mut out, c.index);
            put_u64(&mut out, c.offset);
            put_varint(&mut out, c.stored);
            put_varint(&mut out, c.raw);
            put_u32(&mut out, c.crc);
        }
        put_varint(&mut out, d.attrs.len() as u64);
        for (name, v) in &d.attrs {
            put_str(&mut out, name);
            match v {
                AttrValue::F64(x) => {
                    out.push(0);
                    put_f64(&mut out, *x);
                }
                AttrValue::I64(x) => {
                    out.push(1);
                    put_u64(&mut out, *x as u64);
                }
                AttrValue::Str(s) => {
                    out.push(2);
                    put_str(&mut out, s);
                }
            }
        }
    }
    out
}

/// Parse a v2 metadata table (chunk records carry a CRC32C).
pub fn deserialize_table(buf: &[u8]) -> Result<Vec<DatasetMeta>> {
    deserialize_table_with(buf, true)
}

/// Parse a v1 metadata table (pre-checksum chunk records; every
/// [`ChunkInfo::crc`] comes back `0` and reads go unverified).
pub fn deserialize_table_v1(buf: &[u8]) -> Result<Vec<DatasetMeta>> {
    deserialize_table_with(buf, false)
}

fn deserialize_table_with(buf: &[u8], with_crc: bool) -> Result<Vec<DatasetMeta>> {
    let mut pos = 0usize;
    let n = get_varint(buf, &mut pos)? as usize;
    if n > 1_000_000 {
        return Err(H5Error::Corrupt("implausible dataset count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(buf, &mut pos)?;
        let dtype = Dtype::from_tag(*buf.get(pos).ok_or(H5Error::Truncated("dtype"))?)?;
        pos += 1;
        let nd = get_varint(buf, &mut pos)? as usize;
        if nd == 0 || nd > 8 {
            return Err(H5Error::Corrupt("rank"));
        }
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(get_varint(buf, &mut pos)?);
        }
        let has_chunks = *buf.get(pos).ok_or(H5Error::Truncated("layout tag"))?;
        pos += 1;
        let chunk_dims = match has_chunks {
            0 => None,
            1 => {
                let ncd = get_varint(buf, &mut pos)? as usize;
                if ncd != nd {
                    return Err(H5Error::Corrupt("chunk rank"));
                }
                let mut cd = Vec::with_capacity(ncd);
                for _ in 0..ncd {
                    cd.push(get_varint(buf, &mut pos)?);
                }
                Some(cd)
            }
            _ => return Err(H5Error::Corrupt("layout tag")),
        };
        let nf = get_varint(buf, &mut pos)? as usize;
        let mut filters = Vec::with_capacity(nf);
        for _ in 0..nf {
            let id = get_u32(buf, &mut pos).map_err(|_| H5Error::Truncated("filter id"))?;
            let plen = get_varint(buf, &mut pos)? as usize;
            let end = pos
                .checked_add(plen)
                .ok_or(H5Error::Corrupt("filter params"))?;
            let params = buf
                .get(pos..end)
                .ok_or(H5Error::Truncated("filter params"))?
                .to_vec();
            pos = end;
            filters.push(FilterSpec { id, params });
        }
        let nc = get_varint(buf, &mut pos)? as usize;
        let mut chunks = Vec::with_capacity(nc);
        for _ in 0..nc {
            let index = get_varint(buf, &mut pos)?;
            let offset = get_u64(buf, &mut pos).map_err(|_| H5Error::Truncated("chunk"))?;
            let stored = get_varint(buf, &mut pos)?;
            let raw = get_varint(buf, &mut pos)?;
            let crc = if with_crc {
                get_u32(buf, &mut pos).map_err(|_| H5Error::Truncated("chunk crc"))?
            } else {
                0
            };
            chunks.push(ChunkInfo {
                index,
                offset,
                stored,
                raw,
                crc,
            });
        }
        let na = get_varint(buf, &mut pos)? as usize;
        let mut attrs = Vec::with_capacity(na);
        for _ in 0..na {
            let aname = get_str(buf, &mut pos)?;
            let tag = *buf.get(pos).ok_or(H5Error::Truncated("attr tag"))?;
            pos += 1;
            let val = match tag {
                0 => {
                    AttrValue::F64(get_f64(buf, &mut pos).map_err(|_| H5Error::Truncated("attr"))?)
                }
                1 => AttrValue::I64(
                    get_u64(buf, &mut pos).map_err(|_| H5Error::Truncated("attr"))? as i64,
                ),
                2 => AttrValue::Str(get_str(buf, &mut pos)?),
                _ => return Err(H5Error::Corrupt("attr tag")),
            };
            attrs.push((aname, val));
        }
        out.push(DatasetMeta {
            name,
            dtype,
            dims,
            chunk_dims,
            filters,
            chunks,
            attrs,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> DatasetMeta {
        DatasetMeta {
            name: "fields/temperature".into(),
            dtype: Dtype::F32,
            dims: vec![64, 64, 64],
            chunk_dims: Some(vec![32, 32, 32]),
            filters: vec![FilterSpec {
                id: 32017,
                params: vec![1, 2, 3],
            }],
            chunks: vec![
                ChunkInfo {
                    index: 0,
                    offset: 64,
                    stored: 100,
                    raw: 131072,
                    crc: 0xDEAD_BEEF,
                },
                ChunkInfo {
                    index: 1,
                    offset: 164,
                    stored: 90,
                    raw: 131072,
                    crc: 0x1234_5678,
                },
            ],
            attrs: vec![
                ("error_bound".into(), AttrValue::F64(1e-3)),
                ("timestep".into(), AttrValue::I64(42)),
                ("unit".into(), AttrValue::Str("K".into())),
            ],
        }
    }

    #[test]
    fn roundtrip_table() {
        let metas = vec![
            sample_meta(),
            DatasetMeta {
                name: "raw".into(),
                dtype: Dtype::U8,
                dims: vec![10],
                chunk_dims: None,
                filters: vec![],
                chunks: vec![ChunkInfo {
                    index: 0,
                    offset: 0,
                    stored: 10,
                    raw: 10,
                    crc: 7,
                }],
                attrs: vec![],
            },
        ];
        let bytes = serialize_table(&metas);
        let parsed = deserialize_table(&bytes).unwrap();
        assert_eq!(parsed, metas);
    }

    #[test]
    fn v1_table_reads_without_chunk_crcs() {
        // Hand-encode a v1 chunk record (no trailing crc u32) and make
        // sure the v1 parser accepts it with crc = 0 — the pre-v2
        // compatibility contract.
        let mut meta = sample_meta();
        meta.chunks.truncate(1);
        let mut v2 = serialize_table(&[meta.clone()]);
        // The crc u32 is the last chunk field before the attr section;
        // rebuild the table without it by re-encoding manually.
        v2.clear();
        let out = &mut v2;
        put_varint(out, 1); // one dataset
        put_varint(out, meta.name.len() as u64);
        out.extend_from_slice(meta.name.as_bytes());
        out.push(0); // F32 tag
        put_varint(out, 3);
        for &d in &meta.dims {
            put_varint(out, d);
        }
        out.push(1);
        put_varint(out, 3);
        for &c in meta.chunk_dims.as_ref().unwrap() {
            put_varint(out, c);
        }
        put_varint(out, meta.filters.len() as u64);
        for f in &meta.filters {
            put_u32(out, f.id);
            put_varint(out, f.params.len() as u64);
            out.extend_from_slice(&f.params);
        }
        put_varint(out, 1);
        let c = meta.chunks[0];
        put_varint(out, c.index);
        put_u64(out, c.offset);
        put_varint(out, c.stored);
        put_varint(out, c.raw);
        put_varint(out, 0); // no attrs
        let parsed = deserialize_table_v1(&v2).unwrap();
        assert_eq!(parsed[0].chunks[0].crc, 0);
        assert_eq!(parsed[0].chunks[0].offset, c.offset);
        assert_eq!(parsed[0].name, meta.name);
    }

    #[test]
    fn chunk_grid_math() {
        let m = sample_meta();
        assert_eq!(m.chunk_grid(), vec![2, 2, 2]);
        assert_eq!(m.n_chunks(), 8);
        assert_eq!(m.n_elements(), 262144);
        assert_eq!(m.raw_bytes(), 1048576);
        assert_eq!(m.stored_bytes(), 190);
    }

    #[test]
    fn attr_lookup() {
        let m = sample_meta();
        assert_eq!(m.attr("timestep"), Some(&AttrValue::I64(42)));
        assert!(m.attr("missing").is_none());
    }

    #[test]
    fn truncated_table_rejected() {
        let bytes = serialize_table(&[sample_meta()]);
        for cut in [1, bytes.len() / 3, bytes.len() - 2] {
            assert!(deserialize_table(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_dtype_rejected() {
        let mut bytes = serialize_table(&[sample_meta()]);
        // dtype tag follows the name; name is "fields/temperature" (18
        // chars) + 1 varint byte + count varint.
        bytes[20] = 99;
        assert!(deserialize_table(&bytes).is_err());
    }
}
