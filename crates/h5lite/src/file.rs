//! The h5lite container: writer and reader.
//!
//! A writer appends chunk data to a [`SharedFile`] and keeps dataset
//! metadata in memory; `close()` serializes the metadata table to the
//! end of the file and rewrites the superblock to point at it. Clones
//! of a writer share state, so rank threads in a parallel write all
//! hold the same file — mirroring parallel HDF5's shared-file model.

use crate::asyncq::EventSet;
use crate::chunk::{gather_tile_into, scatter_tile};
use crate::crc::crc32c;
use crate::error::{H5Error, Result};
use crate::filter::{FilterRegistry, FilterScratch};
use crate::meta::{
    deserialize_table, deserialize_table_v1, serialize_table, AttrValue, ChunkInfo, DatasetMeta,
    Dtype, FilterSpec,
};
use crate::pipeline::{compress_chunks, ordered_fanout};
use crate::pool::BufferPool;
use parking_lot::Mutex;
use pfsim::{SharedFile, Throttle};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use szlite::Element;

/// File magic "H5LT".
pub const MAGIC: u32 = 0x544C3548;
/// Format version written by this crate. Version 1 files (no
/// checksums) still open; their reads go unverified.
pub const VERSION: u8 = 2;
/// Oldest format version this crate still reads.
pub const MIN_VERSION: u8 = 1;
/// Superblock flag bit: chunk records carry CRC32C checksums.
pub const FLAG_CHUNK_CRC: u8 = 1;
/// Reserved superblock size at offset 0.
pub const SUPERBLOCK: u64 = 32;

/// Parsed v2 superblock fields shared by the reader and the scrub
/// pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Superblock {
    pub version: u8,
    pub flags: u8,
    pub table_offset: u64,
    pub table_len: u64,
    /// CRC32C of the metadata table (v2; 0 in v1 files).
    pub table_crc: u32,
}

impl Superblock {
    /// True when chunk records carry verified checksums.
    pub fn checksummed(&self) -> bool {
        self.version >= 2 && self.flags & FLAG_CHUNK_CRC != 0
    }

    /// Parse and self-validate a raw superblock. The v2 trailer CRC
    /// covers bytes 0..28, so a torn superblock rewrite is caught
    /// here rather than as a garbage table offset.
    pub fn parse(sb: &[u8; SUPERBLOCK as usize]) -> Result<Self> {
        let magic = u32::from_le_bytes(sb[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(H5Error::BadMagic);
        }
        let version = sb[4];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(H5Error::UnsupportedVersion(version));
        }
        let flags = sb[5];
        let table_offset = u64::from_le_bytes(sb[8..16].try_into().unwrap());
        let table_len = u64::from_le_bytes(sb[16..24].try_into().unwrap());
        let mut table_crc = 0;
        if version >= 2 {
            table_crc = u32::from_le_bytes(sb[24..28].try_into().unwrap());
            let recorded = u32::from_le_bytes(sb[28..32].try_into().unwrap());
            let actual = crc32c(&sb[0..28]);
            if recorded != actual {
                return Err(H5Error::ChecksumMismatch {
                    context: "superblock",
                    offset: 0,
                    expected: recorded,
                    actual,
                });
            }
        }
        Ok(Superblock {
            version,
            flags,
            table_offset,
            table_len,
            table_crc,
        })
    }

    /// Encode a v2 superblock (with trailer CRC) for `close()`.
    pub fn encode_v2(table_offset: u64, table_len: u64, table_crc: u32) -> Vec<u8> {
        let mut sb = Vec::with_capacity(SUPERBLOCK as usize);
        sb.extend_from_slice(&MAGIC.to_le_bytes());
        sb.push(VERSION);
        sb.push(FLAG_CHUNK_CRC);
        sb.extend_from_slice(&[0u8; 2]);
        sb.extend_from_slice(&table_offset.to_le_bytes());
        sb.extend_from_slice(&table_len.to_le_bytes());
        sb.extend_from_slice(&table_crc.to_le_bytes());
        let crc = crc32c(&sb);
        sb.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(sb.len() as u64, SUPERBLOCK);
        sb
    }
}

/// Handle to a dataset within an open writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetId(usize);

/// Specification for creating a dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Full path name.
    pub name: String,
    /// Element type.
    pub dtype: Dtype,
    /// Logical extents.
    pub dims: Vec<u64>,
    /// Chunk extents (`None` = contiguous).
    pub chunk_dims: Option<Vec<u64>>,
    /// Filter pipeline.
    pub filters: Vec<FilterSpec>,
}

impl DatasetSpec {
    /// Contiguous unfiltered dataset.
    pub fn new(name: impl Into<String>, dtype: Dtype, dims: &[u64]) -> Self {
        DatasetSpec {
            name: name.into(),
            dtype,
            dims: dims.to_vec(),
            chunk_dims: None,
            filters: Vec::new(),
        }
    }

    /// Use a chunked layout.
    pub fn chunked(mut self, chunk_dims: &[u64]) -> Self {
        self.chunk_dims = Some(chunk_dims.to_vec());
        self
    }

    /// Append a filter to the pipeline.
    pub fn with_filter(mut self, spec: FilterSpec) -> Self {
        self.filters.push(spec);
        self
    }
}

struct Inner {
    file: SharedFile,
    datasets: Mutex<Vec<DatasetMeta>>,
    registry: FilterRegistry,
    closed: AtomicBool,
    /// Recycles stored-chunk buffers between the compression pipeline
    /// and the async write queue, across every dataset of the file.
    pool: Arc<BufferPool>,
}

/// Writable h5lite container (clone-shareable across rank threads).
#[derive(Clone)]
pub struct H5File {
    inner: Arc<Inner>,
}

impl H5File {
    /// Create a new container at `path` (truncates).
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = SharedFile::create(path)?;
        file.write_at(0, &[0u8; SUPERBLOCK as usize])?;
        file.advance_tail_to(SUPERBLOCK)
            .map_err(std::io::Error::from)?;
        Ok(H5File {
            inner: Arc::new(Inner {
                file,
                datasets: Mutex::new(Vec::new()),
                registry: FilterRegistry::default(),
                closed: AtomicBool::new(false),
                pool: Arc::new(BufferPool::new()),
            }),
        })
    }

    /// Wrap an existing [`SharedFile`] (already superblock-initialized
    /// via `create`, or fresh: the superblock region is reserved).
    pub fn from_shared(file: SharedFile) -> Result<Self> {
        if file.tail() < SUPERBLOCK {
            file.write_at(0, &[0u8; SUPERBLOCK as usize])?;
            file.advance_tail_to(SUPERBLOCK)
                .map_err(std::io::Error::from)?;
        }
        Ok(H5File {
            inner: Arc::new(Inner {
                file,
                datasets: Mutex::new(Vec::new()),
                registry: FilterRegistry::default(),
                closed: AtomicBool::new(false),
                pool: Arc::new(BufferPool::new()),
            }),
        })
    }

    /// Underlying shared file.
    pub fn shared_file(&self) -> &SharedFile {
        &self.inner.file
    }

    /// Filter registry used on the write path.
    pub fn registry(&self) -> &FilterRegistry {
        &self.inner.registry
    }

    fn check_open(&self) -> Result<()> {
        if self.inner.closed.load(Ordering::SeqCst) {
            Err(H5Error::InvalidState("file already closed"))
        } else {
            Ok(())
        }
    }

    /// Create a dataset; returns its handle.
    pub fn create_dataset(&self, spec: DatasetSpec) -> Result<DatasetId> {
        self.check_open()?;
        if spec.dims.is_empty() || spec.dims.len() > 3 {
            return Err(H5Error::Corrupt("dataset rank must be 1..=3"));
        }
        if let Some(cd) = &spec.chunk_dims {
            if cd.len() != spec.dims.len() || cd.contains(&0) {
                return Err(H5Error::Corrupt("chunk dims"));
            }
        }
        let mut ds = self.inner.datasets.lock();
        if ds.iter().any(|d| d.name == spec.name) {
            return Err(H5Error::DuplicateDataset(spec.name));
        }
        ds.push(DatasetMeta {
            name: spec.name,
            dtype: spec.dtype,
            dims: spec.dims,
            chunk_dims: spec.chunk_dims,
            filters: spec.filters,
            chunks: Vec::new(),
            attrs: Vec::new(),
        });
        Ok(DatasetId(ds.len() - 1))
    }

    /// Attach an attribute to a dataset.
    pub fn set_attr(&self, id: DatasetId, name: impl Into<String>, value: AttrValue) -> Result<()> {
        self.check_open()?;
        let mut ds = self.inner.datasets.lock();
        let d = ds.get_mut(id.0).ok_or(H5Error::Corrupt("dataset id"))?;
        let name = name.into();
        if let Some(slot) = d.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            d.attrs.push((name, value));
        }
        Ok(())
    }

    /// Write a full dataset serially: tile into chunks, run the filter
    /// pipeline, append each chunk, record its location.
    pub fn write_full(&self, id: DatasetId, data: &[u8]) -> Result<()> {
        self.check_open()?;
        let (dims, chunk_dims, filters, elem, expected) = {
            let ds = self.inner.datasets.lock();
            let d = ds.get(id.0).ok_or(H5Error::Corrupt("dataset id"))?;
            (
                d.dims.clone(),
                d.chunk_dims.clone(),
                d.filters.clone(),
                d.dtype.size(),
                d.raw_bytes(),
            )
        };
        if data.len() as u64 != expected {
            return Err(H5Error::ShapeMismatch {
                expected,
                actual: data.len() as u64,
            });
        }
        let mut scratch = FilterScratch::new();
        let mut stored = self.inner.pool.take();
        let res = (|| {
            match chunk_dims {
                None => {
                    self.inner
                        .registry
                        .apply_into(&filters, data, &mut scratch, &mut stored)?;
                    let offset = self.inner.file.reserve(stored.len() as u64);
                    self.inner.file.write_at(offset, &stored)?;
                    self.record_chunk(
                        id,
                        ChunkInfo {
                            index: 0,
                            offset,
                            stored: stored.len() as u64,
                            raw: data.len() as u64,
                            crc: crc32c(&stored),
                        },
                    )?;
                }
                Some(cd) => {
                    let n_chunks: u64 =
                        dims.iter().zip(&cd).map(|(&d, &c)| d.div_ceil(c)).product();
                    let mut tile = Vec::new();
                    // The one stored buffer cycles through every chunk:
                    // the serial path allocates nothing per chunk.
                    for c in 0..n_chunks {
                        gather_tile_into(data, &dims, elem, &cd, c, &mut tile)?;
                        let raw = tile.len() as u64;
                        self.inner.registry.apply_into(
                            &filters,
                            &tile,
                            &mut scratch,
                            &mut stored,
                        )?;
                        let offset = self.inner.file.reserve(stored.len() as u64);
                        self.inner.file.write_at(offset, &stored)?;
                        self.record_chunk(
                            id,
                            ChunkInfo {
                                index: c,
                                offset,
                                stored: stored.len() as u64,
                                raw,
                                crc: crc32c(&stored),
                            },
                        )?;
                    }
                }
            }
            Ok(())
        })();
        self.inner.pool.put(stored);
        res
    }

    /// Write a full dataset through the parallel compression pipeline:
    /// chunk tiles fan out to `workers` compression threads and every
    /// compressed chunk streams straight into the `events` async write
    /// queue — compression of chunk *k+1* overlaps the write of chunk
    /// *k*. Chunks are reserved and recorded in chunk-index order, so
    /// the produced file is byte-identical to [`H5File::write_full`]
    /// at any worker count. Call `events.wait()` before `close()`.
    pub fn write_full_pipelined(
        &self,
        id: DatasetId,
        data: &[u8],
        workers: usize,
        events: &EventSet,
        throttle: Option<Arc<Throttle>>,
    ) -> Result<()> {
        self.check_open()?;
        let (dims, chunk_dims, filters, elem, expected) = {
            let ds = self.inner.datasets.lock();
            let d = ds.get(id.0).ok_or(H5Error::Corrupt("dataset id"))?;
            (
                d.dims.clone(),
                d.chunk_dims.clone(),
                d.filters.clone(),
                d.dtype.size(),
                d.raw_bytes(),
            )
        };
        if data.len() as u64 != expected {
            return Err(H5Error::ShapeMismatch {
                expected,
                actual: data.len() as u64,
            });
        }
        // A contiguous dataset is a single tile spanning the extents.
        let cd = chunk_dims.unwrap_or_else(|| dims.clone());
        compress_chunks(
            &self.inner.registry,
            &filters,
            data,
            &dims,
            elem,
            &cd,
            workers,
            &self.inner.pool,
            |c, stored, raw| {
                let len = stored.len() as u64;
                // Checksum before the buffer is handed to the async
                // queue: the recorded CRC always reflects the bytes
                // the writer intended, so a fault between here and the
                // platter is detectable on read.
                let crc = crc32c(&stored);
                let offset = self.inner.file.reserve(len);
                events.write_at_recycled(
                    &self.inner.file,
                    offset,
                    stored,
                    throttle.clone(),
                    Arc::clone(&self.inner.pool),
                );
                self.record_chunk(
                    id,
                    ChunkInfo {
                        index: c,
                        offset,
                        stored: len,
                        raw,
                        crc,
                    },
                )
            },
        )
    }

    /// Write pre-filtered chunk bytes at an explicit offset and record
    /// the chunk — the parallel-write path, where offsets were computed
    /// collectively beforehand (the paper's pre-computed layout).
    pub fn write_chunk_at(
        &self,
        id: DatasetId,
        chunk_index: u64,
        offset: u64,
        stored: &[u8],
        raw_len: u64,
    ) -> Result<()> {
        self.check_open()?;
        self.inner.file.write_at(offset, stored)?;
        self.record_chunk(
            id,
            ChunkInfo {
                index: chunk_index,
                offset,
                stored: stored.len() as u64,
                raw: raw_len,
                crc: crc32c(stored),
            },
        )
    }

    /// Record a chunk that was written externally (e.g. via async ops).
    pub fn record_chunk(&self, id: DatasetId, info: ChunkInfo) -> Result<()> {
        let mut ds = self.inner.datasets.lock();
        let d = ds.get_mut(id.0).ok_or(H5Error::Corrupt("dataset id"))?;
        d.chunks.push(info);
        Ok(())
    }

    /// Reserve `len` bytes of file space, returning the offset.
    pub fn reserve(&self, len: u64) -> u64 {
        self.inner.file.reserve(len)
    }

    /// Total bytes currently reserved/written (logical tail).
    pub fn tail(&self) -> u64 {
        self.inner.file.tail()
    }

    /// Finalize: write the metadata table and superblock. Idempotent —
    /// the second close is an error (like H5Fclose on a closed id).
    pub fn close(&self) -> Result<()> {
        if self.inner.closed.swap(true, Ordering::SeqCst) {
            return Err(H5Error::InvalidState("file already closed"));
        }
        let table = {
            let mut ds = self.inner.datasets.lock();
            for d in ds.iter_mut() {
                d.chunks.sort_by_key(|c| c.index);
            }
            serialize_table(&ds)
        };
        let table_offset = self.inner.file.reserve(table.len() as u64);
        self.inner.file.write_at(table_offset, &table)?;
        // Sync data (chunks + table) before publishing the superblock:
        // a crash between the two leaves the zeroed create-time
        // superblock in place, which recovery classifies as a torn
        // step rather than trusting a pointer to unsynced bytes.
        self.inner.file.sync()?;
        let sb = Superblock::encode_v2(table_offset, table.len() as u64, crc32c(&table));
        self.inner.file.write_at(0, &sb)?;
        self.inner.file.sync()?;
        Ok(())
    }
}

/// The stored `(offset, len, crc)` extents of one chunk, in record
/// order (`crc` is 0 for unchecksummed v1 files).
type ChunkSegments = Vec<(u64, u64, u32)>;

/// Read-only h5lite container.
pub struct H5Reader {
    file: SharedFile,
    datasets: Vec<DatasetMeta>,
    registry: FilterRegistry,
    /// Recycles decoded-tile buffers between the reader worker pool
    /// and the reassembly sink, across every read of the file.
    pool: BufferPool,
    /// Chunk records carry CRC32C checksums verified on every read
    /// (format v2 with [`FLAG_CHUNK_CRC`]).
    checksummed: bool,
    /// Physical file length at open, for cheap truncation checks.
    flen: u64,
}

impl H5Reader {
    /// Open and parse the container at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = SharedFile::open(path)?;
        let mut sb = [0u8; SUPERBLOCK as usize];
        file.read_at(0, &mut sb)
            .map_err(|_| H5Error::Truncated("superblock"))?;
        let sb = Superblock::parse(&sb)?;
        let flen = file.len()?;
        if sb.table_offset.checked_add(sb.table_len).is_none()
            || sb.table_offset + sb.table_len > flen
        {
            return Err(H5Error::Truncated("metadata table"));
        }
        let mut table = vec![0u8; sb.table_len as usize];
        file.read_at(sb.table_offset, &mut table)?;
        if sb.version >= 2 {
            let actual = crc32c(&table);
            if actual != sb.table_crc {
                return Err(H5Error::ChecksumMismatch {
                    context: "metadata table",
                    offset: sb.table_offset,
                    expected: sb.table_crc,
                    actual,
                });
            }
        }
        let datasets = if sb.version >= 2 {
            deserialize_table(&table)?
        } else {
            deserialize_table_v1(&table)?
        };
        Ok(H5Reader {
            file,
            datasets,
            registry: FilterRegistry::default(),
            pool: BufferPool::new(),
            checksummed: sb.checksummed(),
            flen,
        })
    }

    /// Whether reads verify per-chunk CRC32C checksums (v2 files).
    pub fn checksummed(&self) -> bool {
        self.checksummed
    }

    /// Underlying shared file (e.g. to attach fault injection in
    /// tests).
    pub fn shared_file(&self) -> &SharedFile {
        &self.file
    }

    /// Dataset names in creation order.
    pub fn names(&self) -> Vec<&str> {
        self.datasets.iter().map(|d| d.name.as_str()).collect()
    }

    /// Metadata of a dataset.
    pub fn meta(&self, name: &str) -> Result<&DatasetMeta> {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| H5Error::NoSuchDataset(name.to_string()))
    }

    /// Collect each chunk's stored extents in chunk-index order.
    ///
    /// A chunk may be stored as several extents with the same index
    /// (reserved-slot prefix + overflow tail, the paper's overflow
    /// redirection); segments are listed in record order so reading
    /// them back-to-back reconstitutes the filtered stream.
    fn chunk_segments(d: &DatasetMeta) -> Result<Vec<(u64, ChunkSegments)>> {
        let mut by_index: std::collections::BTreeMap<u64, ChunkSegments> =
            std::collections::BTreeMap::new();
        for c in &d.chunks {
            by_index
                .entry(c.index)
                .or_default()
                .push((c.offset, c.stored, c.crc));
        }
        let expected = match &d.chunk_dims {
            None => 1,
            Some(_) => d.n_chunks(),
        };
        if by_index.len() as u64 != expected {
            return Err(H5Error::Corrupt("incomplete chunk set"));
        }
        Ok(by_index.into_iter().collect())
    }

    /// Read one chunk's concatenated stored bytes into `stored`,
    /// verifying each segment's CRC32C for checksummed (v2) files —
    /// corrupt bytes are never handed to a decoder. Shared by the
    /// serial and pipelined read paths.
    fn read_segments(&self, segments: &[(u64, u64, u32)], stored: &mut Vec<u8>) -> Result<()> {
        stored.clear();
        let total: u64 = segments.iter().map(|&(_, len, _)| len).sum();
        stored.resize(total as usize, 0);
        let mut at = 0usize;
        for &(offset, len, crc) in segments {
            if offset.checked_add(len).is_none() || offset + len > self.flen {
                return Err(H5Error::Truncated("chunk"));
            }
            let end = at + len as usize;
            self.file.read_at(offset, &mut stored[at..end])?;
            if self.checksummed {
                let actual = crc32c(&stored[at..end]);
                if actual != crc {
                    return Err(H5Error::ChecksumMismatch {
                        context: "chunk",
                        offset,
                        expected: crc,
                        actual,
                    });
                }
            }
            at = end;
        }
        Ok(())
    }

    /// Read and de-filter a full dataset into its raw byte buffer.
    pub fn read_raw(&self, name: &str) -> Result<Vec<u8>> {
        let d = self.meta(name)?;
        let elem = d.dtype.size();
        let mut out = vec![0u8; d.raw_bytes() as usize];
        // The serial path reuses one scratch plus one stored-bytes and
        // one decoded-tile buffer across all chunks, mirroring
        // `write_full`: nothing is allocated per chunk.
        let mut scratch = FilterScratch::new();
        let mut stored = Vec::new();
        let mut raw = self.pool.take();
        // Contiguous datasets decode as a single tile spanning the
        // extents (scatter with chunk = dims is the identity).
        let cd = d.chunk_dims.clone().unwrap_or_else(|| d.dims.clone());
        for (index, segments) in Self::chunk_segments(d)? {
            self.read_segments(&segments, &mut stored)?;
            // Unfiltered chunks scatter straight from the read buffer;
            // no copy through the filter chain.
            if d.filters.is_empty() {
                scatter_tile(&mut out, &d.dims, elem, &cd, index, &stored)?;
            } else {
                self.registry
                    .invert_into(&d.filters, &stored, &mut scratch, &mut raw)?;
                scatter_tile(&mut out, &d.dims, elem, &cd, index, &raw)?;
            }
        }
        self.pool.put(raw);
        Ok(out)
    }

    /// Read and de-filter a full dataset through the parallel decode
    /// pipeline: chunk reads + filter inversion fan out to `workers`
    /// threads (each reusing one [`FilterScratch`] across its chunks)
    /// and tiles are reassembled in chunk-index order, so the result
    /// is value-identical to [`H5Reader::read_raw`] at any worker
    /// count — the read-side mirror of
    /// [`H5File::write_full_pipelined`].
    pub fn read_full_pipelined(&self, name: &str, workers: usize) -> Result<Vec<u8>> {
        let d = self.meta(name)?;
        let elem = d.dtype.size();
        let mut out = vec![0u8; d.raw_bytes() as usize];
        let cd = d.chunk_dims.clone().unwrap_or_else(|| d.dims.clone());
        let chunks = Self::chunk_segments(d)?;
        ordered_fanout(
            chunks.len() as u64,
            workers,
            || (FilterScratch::new(), Vec::new()),
            |(scratch, stored): &mut (FilterScratch, Vec<u8>), i| {
                let (_, segments) = &chunks[i as usize];
                self.read_segments(segments, stored)?;
                if d.filters.is_empty() {
                    // The sink needs an owned tile; swapping the read
                    // buffer with a pooled one moves it out without a
                    // copy or a fresh allocation.
                    let mut tile = self.pool.take();
                    std::mem::swap(stored, &mut tile);
                    Ok(tile)
                } else {
                    let mut tile = self.pool.take();
                    self.registry
                        .invert_into(&d.filters, stored, scratch, &mut tile)?;
                    Ok(tile)
                }
            },
            |i, raw| {
                let (index, _) = chunks[i as usize];
                let res = scatter_tile(&mut out, &d.dims, elem, &cd, index, &raw);
                self.pool.put(raw);
                res
            },
        )?;
        Ok(out)
    }

    /// Check that dataset `d` stores elements of type `T`.
    fn check_dtype<T: Element>(d: &DatasetMeta) -> Result<()> {
        let (want, msg) = match T::DTYPE {
            szlite::element::DTYPE_F32 => (Dtype::F32, "dataset is not f32"),
            szlite::element::DTYPE_F64 => (Dtype::F64, "dataset is not f64"),
            _ => return Err(H5Error::Corrupt("unsupported element type")),
        };
        if d.dtype != want {
            return Err(H5Error::Corrupt(msg));
        }
        Ok(())
    }

    /// Decode a raw little-endian byte buffer into typed elements.
    fn elems_from_raw<T: Element>(raw: &[u8]) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(raw.len() / T::BYTES);
        let mut pos = 0usize;
        while pos < raw.len() {
            out.push(T::read_le(raw, &mut pos).map_err(H5Error::from)?);
        }
        Ok(out)
    }

    /// Read a dataset as typed values (`f32` or `f64`).
    pub fn read<T: Element>(&self, name: &str) -> Result<Vec<T>> {
        let d = self.meta(name)?;
        Self::check_dtype::<T>(d)?;
        Self::elems_from_raw(&self.read_raw(name)?)
    }

    /// Read a dataset as typed values through the parallel decode
    /// pipeline; value-identical to [`H5Reader::read`] at any worker
    /// count.
    pub fn read_pipelined<T: Element>(&self, name: &str, workers: usize) -> Result<Vec<T>> {
        let d = self.meta(name)?;
        Self::check_dtype::<T>(d)?;
        Self::elems_from_raw(&self.read_full_pipelined(name, workers)?)
    }

    /// Read a dataset as `f32` values.
    pub fn read_f32(&self, name: &str) -> Result<Vec<f32>> {
        self.read::<f32>(name)
    }

    /// Read a dataset as `f64` values.
    pub fn read_f64(&self, name: &str) -> Result<Vec<f64>> {
        self.read::<f64>(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{SzFilterParams, LZSS_FILTER_ID, SZLITE_FILTER_ID};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("h5lite-test-{}-{}.h5l", std::process::id(), name));
        p
    }

    fn f32_bytes(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|f| f.to_le_bytes()).collect()
    }

    #[test]
    fn contiguous_roundtrip() {
        let path = tmp("contig");
        let f = H5File::create(&path).unwrap();
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let id = f
            .create_dataset(DatasetSpec::new("a", Dtype::F32, &[100]))
            .unwrap();
        f.write_full(id, &f32_bytes(&data)).unwrap();
        f.close().unwrap();

        let r = H5Reader::open(&path).unwrap();
        assert_eq!(r.names(), vec!["a"]);
        assert_eq!(r.read_f32("a").unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunked_roundtrip_3d() {
        let path = tmp("chunk3d");
        let f = H5File::create(&path).unwrap();
        let data: Vec<f32> = (0..4 * 6 * 8).map(|i| (i as f32).sin()).collect();
        let id = f
            .create_dataset(DatasetSpec::new("grid/v", Dtype::F32, &[4, 6, 8]).chunked(&[2, 3, 4]))
            .unwrap();
        f.write_full(id, &f32_bytes(&data)).unwrap();
        f.close().unwrap();

        let r = H5Reader::open(&path).unwrap();
        assert_eq!(r.meta("grid/v").unwrap().chunks.len(), 8);
        assert_eq!(r.read_f32("grid/v").unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sz_filtered_roundtrip_within_bound() {
        let path = tmp("szfilt");
        let f = H5File::create(&path).unwrap();
        let data: Vec<f32> = (0..16 * 16 * 16).map(|i| (i as f32 * 0.01).cos()).collect();
        let params = SzFilterParams {
            absolute: true,
            bound: 1e-3,
            dims: vec![8, 16, 16],
        }
        .to_bytes();
        let id = f
            .create_dataset(
                DatasetSpec::new("t", Dtype::F32, &[16, 16, 16])
                    .chunked(&[8, 16, 16])
                    .with_filter(FilterSpec {
                        id: SZLITE_FILTER_ID,
                        params,
                    }),
            )
            .unwrap();
        f.write_full(id, &f32_bytes(&data)).unwrap();
        f.close().unwrap();

        let r = H5Reader::open(&path).unwrap();
        let meta = r.meta("t").unwrap();
        assert!(
            meta.stored_bytes() < meta.raw_bytes(),
            "filter should shrink data"
        );
        let restored = r.read_f32("t").unwrap();
        for (a, b) in data.iter().zip(&restored) {
            assert!((a - b).abs() <= 1e-3);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn attributes_roundtrip() {
        let path = tmp("attrs");
        let f = H5File::create(&path).unwrap();
        let id = f
            .create_dataset(DatasetSpec::new("x", Dtype::U8, &[4]))
            .unwrap();
        f.write_full(id, &[1, 2, 3, 4]).unwrap();
        f.set_attr(id, "eb", AttrValue::F64(0.5)).unwrap();
        f.set_attr(id, "step", AttrValue::I64(7)).unwrap();
        f.set_attr(id, "step", AttrValue::I64(8)).unwrap(); // overwrite
        f.close().unwrap();

        let r = H5Reader::open(&path).unwrap();
        let m = r.meta("x").unwrap();
        assert_eq!(m.attr("eb"), Some(&AttrValue::F64(0.5)));
        assert_eq!(m.attr("step"), Some(&AttrValue::I64(8)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_dataset_rejected() {
        let path = tmp("dup");
        let f = H5File::create(&path).unwrap();
        f.create_dataset(DatasetSpec::new("a", Dtype::U8, &[1]))
            .unwrap();
        assert!(matches!(
            f.create_dataset(DatasetSpec::new("a", Dtype::U8, &[1])),
            Err(H5Error::DuplicateDataset(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn double_close_rejected() {
        let path = tmp("dclose");
        let f = H5File::create(&path).unwrap();
        f.close().unwrap();
        assert!(f.close().is_err());
        assert!(f
            .create_dataset(DatasetSpec::new("a", Dtype::U8, &[1]))
            .is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parallel_chunk_writes_from_threads() {
        let path = tmp("par");
        let f = H5File::create(&path).unwrap();
        let n_chunks = 8u64;
        let chunk_elems = 64u64;
        let id = f
            .create_dataset(
                DatasetSpec::new("p", Dtype::F32, &[n_chunks * chunk_elems])
                    .chunked(&[chunk_elems]),
            )
            .unwrap();
        // Pre-compute offsets like the paper's planner would.
        let chunk_bytes = chunk_elems * 4;
        let base = f.reserve(n_chunks * chunk_bytes);
        std::thread::scope(|s| {
            for c in 0..n_chunks {
                let f = f.clone();
                s.spawn(move || {
                    let vals: Vec<f32> = (0..chunk_elems).map(|i| (c * 1000 + i) as f32).collect();
                    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
                    f.write_chunk_at(id, c, base + c * chunk_bytes, &bytes, chunk_bytes)
                        .unwrap();
                });
            }
        });
        f.close().unwrap();

        let r = H5Reader::open(&path).unwrap();
        let vals = r.read_f32("p").unwrap();
        for c in 0..n_chunks {
            for i in 0..chunk_elems {
                assert_eq!(vals[(c * chunk_elems + i) as usize], (c * 1000 + i) as f32);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pipelined_write_is_byte_identical_to_serial() {
        let data: Vec<f32> = (0..24 * 20 * 16).map(|i| (i as f32 * 0.01).sin()).collect();
        let bytes = f32_bytes(&data);
        let params = SzFilterParams {
            absolute: true,
            bound: 1e-3,
            dims: vec![8, 10, 16],
        }
        .to_bytes();
        let spec = || {
            DatasetSpec::new("t", Dtype::F32, &[24, 20, 16])
                .chunked(&[8, 10, 16])
                .with_filter(FilterSpec {
                    id: SZLITE_FILTER_ID,
                    params: params.clone(),
                })
        };

        let serial_path = tmp("pipe-serial");
        let f = H5File::create(&serial_path).unwrap();
        let id = f.create_dataset(spec()).unwrap();
        f.write_full(id, &bytes).unwrap();
        f.close().unwrap();
        let serial = std::fs::read(&serial_path).unwrap();
        std::fs::remove_file(&serial_path).unwrap();

        for workers in [1usize, 3, 8] {
            let path = tmp(&format!("pipe-{workers}"));
            let f = H5File::create(&path).unwrap();
            let id = f.create_dataset(spec()).unwrap();
            let es = crate::EventSet::new(2);
            f.write_full_pipelined(id, &bytes, workers, &es, None)
                .unwrap();
            es.wait().unwrap();
            f.close().unwrap();
            let parallel = std::fs::read(&path).unwrap();
            assert_eq!(parallel, serial, "workers={workers}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn pipelined_contiguous_write_matches_serial() {
        // The chunk_dims = None branch treats the dataset as a single
        // tile spanning the extents; its file must match write_full's
        // dedicated contiguous path byte for byte.
        let data = vec![9u8; 6000];
        let spec = || {
            DatasetSpec::new("c", Dtype::U8, &[6000]).with_filter(FilterSpec {
                id: LZSS_FILTER_ID,
                params: vec![],
            })
        };
        let serial_path = tmp("contig-serial");
        let f = H5File::create(&serial_path).unwrap();
        let id = f.create_dataset(spec()).unwrap();
        f.write_full(id, &data).unwrap();
        f.close().unwrap();
        let serial = std::fs::read(&serial_path).unwrap();
        std::fs::remove_file(&serial_path).unwrap();

        let path = tmp("contig-pipe");
        let f = H5File::create(&path).unwrap();
        let id = f.create_dataset(spec()).unwrap();
        let es = crate::EventSet::new(1);
        f.write_full_pipelined(id, &data, 4, &es, None).unwrap();
        es.wait().unwrap();
        f.close().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), serial);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pipelined_read_matches_serial_reader() {
        // Chunked + sz-filtered dataset read back through the worker
        // pool at several widths; every result must be value-identical
        // to the serial reader (and to each other).
        let path = tmp("rpipe");
        let f = H5File::create(&path).unwrap();
        let data: Vec<f32> = (0..24 * 20 * 16).map(|i| (i as f32 * 0.01).sin()).collect();
        let params = SzFilterParams {
            absolute: true,
            bound: 1e-3,
            dims: vec![8, 10, 16],
        }
        .to_bytes();
        let id = f
            .create_dataset(
                DatasetSpec::new("t", Dtype::F32, &[24, 20, 16])
                    .chunked(&[8, 10, 16])
                    .with_filter(FilterSpec {
                        id: SZLITE_FILTER_ID,
                        params,
                    }),
            )
            .unwrap();
        f.write_full(id, &f32_bytes(&data)).unwrap();
        f.close().unwrap();

        let r = H5Reader::open(&path).unwrap();
        let serial = r.read_raw("t").unwrap();
        for workers in [1usize, 2, 8] {
            assert_eq!(
                r.read_full_pipelined("t", workers).unwrap(),
                serial,
                "workers={workers}"
            );
        }
        assert_eq!(
            r.read_pipelined::<f32>("t", 4).unwrap(),
            r.read_f32("t").unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pipelined_read_contiguous_matches_serial() {
        let path = tmp("rpipe-contig");
        let f = H5File::create(&path).unwrap();
        let data = vec![3u8; 5000];
        let id = f
            .create_dataset(
                DatasetSpec::new("c", Dtype::U8, &[5000]).with_filter(FilterSpec {
                    id: LZSS_FILTER_ID,
                    params: vec![],
                }),
            )
            .unwrap();
        f.write_full(id, &data).unwrap();
        f.close().unwrap();
        let r = H5Reader::open(&path).unwrap();
        assert_eq!(r.read_raw("c").unwrap(), data);
        assert_eq!(r.read_full_pipelined("c", 4).unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generic_read_rejects_wrong_type() {
        let path = tmp("rtype");
        let f = H5File::create(&path).unwrap();
        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let id = f
            .create_dataset(DatasetSpec::new("x", Dtype::F32, &[32]))
            .unwrap();
        f.write_full(id, &f32_bytes(&data)).unwrap();
        f.close().unwrap();
        let r = H5Reader::open(&path).unwrap();
        assert!(r.read::<f64>("x").is_err());
        assert!(r.read_f64("x").is_err());
        assert_eq!(r.read::<f32>("x").unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lzss_filter_chain() {
        let path = tmp("lz");
        let f = H5File::create(&path).unwrap();
        let data = vec![42u8; 8192];
        let id = f
            .create_dataset(
                DatasetSpec::new("z", Dtype::U8, &[8192]).with_filter(FilterSpec {
                    id: LZSS_FILTER_ID,
                    params: vec![],
                }),
            )
            .unwrap();
        f.write_full(id, &data).unwrap();
        f.close().unwrap();
        let r = H5Reader::open(&path).unwrap();
        assert!(r.meta("z").unwrap().stored_bytes() < 200);
        assert_eq!(r.read_raw("z").unwrap(), data);
        std::fs::remove_file(&path).unwrap();
    }

    /// Write a one-dataset v1 container by hand (no checksums
    /// anywhere) — the compatibility fixture for pre-v2 files.
    fn write_v1_file(path: &std::path::Path, payload: &[u8]) {
        use szlite::stream::{put_u32, put_u64, put_varint};
        let mut table = Vec::new();
        put_varint(&mut table, 1); // one dataset
        put_varint(&mut table, 1); // name len
        table.push(b'x');
        table.push(2); // U8 dtype tag
        put_varint(&mut table, 1); // rank 1
        put_varint(&mut table, payload.len() as u64);
        table.push(0); // contiguous
        put_varint(&mut table, 0); // no filters
        put_varint(&mut table, 1); // one chunk, v1 record: no crc
        put_varint(&mut table, 0);
        put_u64(&mut table, SUPERBLOCK);
        put_varint(&mut table, payload.len() as u64);
        put_varint(&mut table, payload.len() as u64);
        put_varint(&mut table, 0); // no attrs
        let table_offset = SUPERBLOCK + payload.len() as u64;
        let mut sb = Vec::new();
        put_u32(&mut sb, MAGIC);
        sb.push(1); // version 1
        sb.extend_from_slice(&[0u8; 3]);
        put_u64(&mut sb, table_offset);
        put_u64(&mut sb, table.len() as u64);
        sb.resize(SUPERBLOCK as usize, 0);
        let mut bytes = sb;
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&table);
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn v1_file_still_reads_unverified() {
        let path = tmp("v1");
        write_v1_file(&path, &[5, 6, 7, 8]);
        let r = H5Reader::open(&path).unwrap();
        assert!(!r.checksummed());
        assert_eq!(r.read_raw("x").unwrap(), vec![5, 6, 7, 8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_chunk_detected_on_both_read_paths() {
        let path = tmp("crc-chunk");
        let f = H5File::create(&path).unwrap();
        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.1).sin()).collect();
        let id = f
            .create_dataset(DatasetSpec::new("v", Dtype::F32, &[512]).chunked(&[128]))
            .unwrap();
        f.write_full(id, &f32_bytes(&data)).unwrap();
        f.close().unwrap();

        // Flip one bit inside the second chunk's stored bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = SUPERBLOCK as usize + 600;
        bytes[victim] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let r = H5Reader::open(&path).unwrap();
        assert!(r.checksummed());
        assert!(matches!(
            r.read_raw("v"),
            Err(H5Error::ChecksumMismatch {
                context: "chunk",
                ..
            })
        ));
        assert!(matches!(
            r.read_full_pipelined("v", 4),
            Err(H5Error::ChecksumMismatch {
                context: "chunk",
                ..
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_table_and_superblock_detected() {
        let path = tmp("crc-meta");
        let f = H5File::create(&path).unwrap();
        let id = f
            .create_dataset(DatasetSpec::new("v", Dtype::U8, &[64]))
            .unwrap();
        f.write_full(id, &[9u8; 64]).unwrap();
        f.close().unwrap();
        let clean = std::fs::read(&path).unwrap();

        // Corrupt the metadata table (last byte of the file).
        let mut bad = clean.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            H5Reader::open(&path),
            Err(H5Error::ChecksumMismatch {
                context: "metadata table",
                ..
            })
        ));

        // Corrupt the superblock's table-offset field.
        let mut bad = clean.clone();
        bad[9] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            H5Reader::open(&path),
            Err(H5Error::ChecksumMismatch {
                context: "superblock",
                ..
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_chunk_reported_as_truncated() {
        let path = tmp("crc-trunc");
        let f = H5File::create(&path).unwrap();
        let id = f
            .create_dataset(DatasetSpec::new("v", Dtype::U8, &[4096]))
            .unwrap();
        f.write_full(id, &[3u8; 4096]).unwrap();
        f.close().unwrap();
        // Forge a container whose (valid, checksummed) table points a
        // chunk past EOF — the reader must report truncation before
        // ever attempting the read.
        let r = H5Reader::open(&path).unwrap();
        let c = r.meta("v").unwrap().chunks[0];
        drop(r);
        let f2 = H5File::create(&path).unwrap();
        let id2 = f2
            .create_dataset(DatasetSpec::new("v", Dtype::U8, &[4096]))
            .unwrap();
        f2.record_chunk(
            id2,
            ChunkInfo {
                offset: c.offset + (1 << 20),
                ..c
            },
        )
        .unwrap();
        f2.close().unwrap();
        let r = H5Reader::open(&path).unwrap();
        assert!(matches!(r.read_raw("v"), Err(H5Error::Truncated("chunk"))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_garbage_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an h5lite file, but long enough....").unwrap();
        assert!(matches!(H5Reader::open(&path), Err(H5Error::BadMagic)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shape_mismatch_on_write() {
        let path = tmp("shape");
        let f = H5File::create(&path).unwrap();
        let id = f
            .create_dataset(DatasetSpec::new("s", Dtype::F32, &[10]))
            .unwrap();
        assert!(matches!(
            f.write_full(id, &[0u8; 10]),
            Err(H5Error::ShapeMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
