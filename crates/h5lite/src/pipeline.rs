//! Parallel chunk-compression pipeline overlapped with async writes.
//!
//! With the classic H5Z filter model, compression serializes in front
//! of every chunk write; the paper's design (§II-A) instead overlaps
//! compression with the asynchronous VOL so chunk *k+1* compresses
//! while chunk *k* is still in flight. This module provides that
//! overlap for the write path:
//!
//! * [`ordered_fanout`] — a generic worker pool (crossbeam channels,
//!   scoped threads) that runs jobs out of order but delivers results
//!   to a sink *in index order*;
//! * [`compress_chunks`] — chunk tiles fanned out to compression
//!   workers, each reusing a [`FilterScratch`] across its chunks;
//! * [`H5File::write_full_pipelined`](crate::H5File::write_full_pipelined)
//!   — streams each compressed chunk straight into an
//!   [`EventSet`](crate::EventSet) write queue.
//!
//! Because file offsets are reserved in chunk-index order by the
//! single sink thread, the produced file is **byte-identical** to the
//! serial `write_full` path at any worker count.
//!
//! The read side mirrors this through the same [`ordered_fanout`]
//! pool:
//! [`H5Reader::read_full_pipelined`](crate::H5Reader::read_full_pipelined)
//! fans chunk reads + filter inversion out to scratch-reusing workers
//! and reassembles tiles in chunk-index order, so decoded data is
//! **value-identical** to the serial reader at any worker count.

use crate::chunk::gather_tile_into;
use crate::error::{H5Error, Result};
use crate::filter::{FilterRegistry, FilterScratch};
use crate::meta::FilterSpec;
use crate::pool::BufferPool;
use crossbeam::channel::unbounded;
use std::collections::BTreeMap;

/// Resolve the pipeline worker count: `SZ_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn workers_from_env() -> usize {
    workers_from_env_or(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Like [`workers_from_env`] but with an explicit fallback — the real
/// engine passes 1 (rank threads already provide parallelism), while
/// standalone writers default to the machine's parallelism.
pub fn workers_from_env_or(default: usize) -> usize {
    std::env::var("SZ_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Run `job(worker_state, i)` for every `i in 0..n` on a pool of
/// `workers` threads, delivering each result to `sink` in ascending
/// `i` order (a small reorder buffer holds out-of-order completions).
///
/// `make_worker` builds one state value per worker thread — scratch
/// buffers live there and are reused across that worker's jobs. With
/// `workers <= 1` everything runs inline on the calling thread, with
/// no channels or spawns: the serial path and the pool path execute
/// the same job code.
///
/// The first error (from a job or from the sink) wins and is returned
/// after the pool drains; later results are discarded.
pub fn ordered_fanout<W, T, E, Mk, J, S>(
    n: u64,
    workers: usize,
    make_worker: Mk,
    job: J,
    mut sink: S,
) -> std::result::Result<(), E>
where
    T: Send,
    E: Send,
    Mk: Fn() -> W + Sync,
    J: Fn(&mut W, u64) -> std::result::Result<T, E> + Sync,
    S: FnMut(u64, T) -> std::result::Result<(), E>,
{
    if workers <= 1 || n <= 1 {
        let mut w = make_worker();
        for i in 0..n {
            sink(i, job(&mut w, i)?)?;
        }
        return Ok(());
    }

    let nw = workers.min(n as usize);
    let (job_tx, job_rx) = unbounded::<u64>();
    let (res_tx, res_rx) = unbounded::<(u64, std::result::Result<T, E>)>();
    for i in 0..n {
        let _ = job_tx.send(i);
    }
    // Workers exit once the pre-filled queue is drained.
    drop(job_tx);

    std::thread::scope(|s| {
        for _ in 0..nw {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let make_worker = &make_worker;
            let job = &job;
            s.spawn(move || {
                let mut w = make_worker();
                while let Ok(i) = job_rx.recv() {
                    if res_tx.send((i, job(&mut w, i))).is_err() {
                        break;
                    }
                }
                // Scoped-thread closures complete before TLS teardown:
                // retire this worker's span buffer explicitly so the
                // trace drain cannot race thread exit.
                obs::trace::flush_thread();
            });
        }
        drop(res_tx);

        let mut next = 0u64;
        let mut held: BTreeMap<u64, T> = BTreeMap::new();
        for _ in 0..n {
            let Ok((i, r)) = res_rx.recv() else {
                // All workers gone without a result: only reachable if
                // a job panicked; the scope re-raises that panic.
                break;
            };
            held.insert(i, r?);
            while let Some(t) = held.remove(&next) {
                sink(next, t)?;
                next += 1;
            }
        }
        Ok(())
    })
}

/// Compress every chunk of a chunked dataset through the registry's
/// filter chain on `workers` threads, delivering
/// `(chunk_index, stored_bytes, raw_len)` to `sink` in ascending chunk
/// order. Each worker gathers its own tiles from the shared `data`
/// buffer (no per-chunk input copies on the caller side) and reuses
/// one [`FilterScratch`] plus one tile buffer across all its chunks.
///
/// Stored-chunk buffers are taken from `pool`; the sink keeps
/// ownership and should return them there once consumed (e.g. via
/// [`EventSet::write_at_recycled`](crate::EventSet::write_at_recycled)),
/// after which steady-state streaming allocates nothing per chunk.
#[allow(clippy::too_many_arguments)]
pub fn compress_chunks<S>(
    registry: &FilterRegistry,
    filters: &[FilterSpec],
    data: &[u8],
    dims: &[u64],
    elem: usize,
    chunk_dims: &[u64],
    workers: usize,
    pool: &BufferPool,
    mut sink: S,
) -> Result<()>
where
    S: FnMut(u64, Vec<u8>, u64) -> Result<()>,
{
    if dims.len() != chunk_dims.len() || dims.is_empty() {
        return Err(H5Error::Corrupt("pipeline chunk rank"));
    }
    let n_chunks: u64 = dims
        .iter()
        .zip(chunk_dims)
        .map(|(&d, &c)| d.div_ceil(c))
        .product();
    ordered_fanout(
        n_chunks,
        workers,
        || (FilterScratch::new(), Vec::new()),
        |(scratch, tile): &mut (FilterScratch, Vec<u8>), c| {
            let _span = obs::span_arg("h5.chunk_compress", c);
            gather_tile_into(data, dims, elem, chunk_dims, c, tile)?;
            let mut stored = pool.take();
            registry.apply_into(filters, tile, scratch, &mut stored)?;
            Ok((stored, tile.len() as u64))
        },
        |c, (stored, raw)| sink(c, stored, raw),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fanout_delivers_in_order() {
        for workers in [1, 2, 5, 16] {
            let mut seen = Vec::new();
            ordered_fanout::<_, _, (), _, _, _>(
                100,
                workers,
                || (),
                |_, i| Ok(i * 3),
                |i, v| {
                    assert_eq!(v, i * 3);
                    seen.push(i);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fanout_propagates_job_error() {
        let r = ordered_fanout::<_, u64, &str, _, _, _>(
            50,
            4,
            || (),
            |_, i| if i == 17 { Err("boom") } else { Ok(i) },
            |_, _| Ok(()),
        );
        assert_eq!(r, Err("boom"));
    }

    #[test]
    fn fanout_propagates_sink_error_and_stops() {
        let delivered = AtomicUsize::new(0);
        let r = ordered_fanout::<_, _, &str, _, _, _>(
            50,
            4,
            || (),
            |_, i| Ok(i),
            |i, _| {
                if i == 10 {
                    Err("sink")
                } else {
                    delivered.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
            },
        );
        assert_eq!(r, Err("sink"));
        assert_eq!(delivered.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn fanout_uses_per_worker_state() {
        // Each worker's counter only ever increments, proving state
        // persists across jobs on the same thread.
        ordered_fanout::<_, _, (), _, _, _>(
            64,
            3,
            || 0usize,
            |count, _| {
                *count += 1;
                Ok(*count)
            },
            |_, c| {
                assert!(c >= 1);
                Ok(())
            },
        )
        .unwrap();
    }

    #[test]
    fn workers_env_parsing() {
        // Only asserts the fallback contract, not the env (tests run
        // in parallel; mutating the process env would race).
        assert!(workers_from_env() >= 1);
    }
}
