//! Container scrub: walk an h5lite file, classify every chunk, and
//! optionally repair from a replica.
//!
//! Unlike [`H5Reader`](crate::H5Reader), which fails fast on the first
//! integrity violation, the scrub pass keeps going and produces a full
//! damage map — the input a recovery policy needs to decide between
//! repair (a replica holds verified bytes for the damaged extents),
//! mark-and-skip, and quarantine (the container is torn at the
//! superblock and cannot be trusted at all).

use crate::crc::crc32c;
use crate::error::{H5Error, Result};
use crate::file::{Superblock, SUPERBLOCK};
use crate::meta::{deserialize_table, deserialize_table_v1, DatasetMeta};
use pfsim::SharedFile;
use std::path::{Path, PathBuf};

/// Verdict on one stored chunk record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkState {
    /// Bytes present and (for v2 files) CRC-verified.
    Ok,
    /// Bytes present but failing their recorded CRC32C.
    Corrupt {
        /// Checksum recorded in the metadata.
        expected: u32,
        /// Checksum of the bytes on disk.
        actual: u32,
    },
    /// The record points past the end of the file.
    Truncated,
}

/// One chunk record's scrub result.
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Dataset the chunk belongs to.
    pub dataset: String,
    /// Linear chunk index.
    pub index: u64,
    /// Position of the record within the dataset's record list —
    /// identifies one segment of a chunk stored as several extents.
    pub record: usize,
    /// Absolute file offset of the stored bytes.
    pub offset: u64,
    /// Stored length in bytes.
    pub stored: u64,
    /// Verdict.
    pub state: ChunkState,
}

/// Container-level verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerState {
    /// Superblock, table, and (v2) their checksums are intact.
    Ok,
    /// The superblock is still the zeroed create-time placeholder (or
    /// the file is shorter than a superblock): the writer crashed
    /// before `close()` published the metadata — a torn step. Chunk
    /// locations are unknown; quarantine and rewrite.
    Torn,
    /// The superblock is present but damaged (bad magic on a non-zero
    /// block, failed self-CRC, or unsupported version).
    CorruptSuperblock(String),
    /// The metadata table is missing its extent or fails its CRC.
    CorruptTable(String),
}

/// Full damage map of one container.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// Scrubbed path.
    pub path: PathBuf,
    /// Container-level verdict; chunk reports are only present when
    /// this is [`ContainerState::Ok`].
    pub container: ContainerState,
    /// Per-chunk-record verdicts.
    pub chunks: Vec<ChunkReport>,
    /// False for v1 files: chunks were only bounds-checked, not
    /// checksum-verified (v1 records carry no CRC).
    pub verified: bool,
}

impl ScrubReport {
    /// No damage anywhere.
    pub fn is_clean(&self) -> bool {
        self.container == ContainerState::Ok
            && self.chunks.iter().all(|c| c.state == ChunkState::Ok)
    }

    /// Number of corrupt chunk records.
    pub fn n_corrupt(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| matches!(c.state, ChunkState::Corrupt { .. }))
            .count()
    }

    /// Number of truncated chunk records.
    pub fn n_truncated(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.state == ChunkState::Truncated)
            .count()
    }

    /// Damaged chunk records (corrupt or truncated).
    pub fn damaged(&self) -> impl Iterator<Item = &ChunkReport> {
        self.chunks.iter().filter(|c| c.state != ChunkState::Ok)
    }
}

/// Parse superblock + table without failing on damage; the error
/// string goes into the [`ContainerState`].
fn load_meta(
    file: &SharedFile,
) -> Result<std::result::Result<(Vec<DatasetMeta>, bool), ContainerState>> {
    let flen = file.len().map_err(H5Error::Io)?;
    if flen < SUPERBLOCK {
        return Ok(Err(ContainerState::Torn));
    }
    let mut sb = [0u8; SUPERBLOCK as usize];
    file.read_at(0, &mut sb).map_err(H5Error::Io)?;
    if sb.iter().all(|&b| b == 0) {
        // The zeroed create-time superblock: close() never ran.
        return Ok(Err(ContainerState::Torn));
    }
    let sb = match Superblock::parse(&sb) {
        Ok(sb) => sb,
        Err(e) => return Ok(Err(ContainerState::CorruptSuperblock(e.to_string()))),
    };
    if sb.table_offset.checked_add(sb.table_len).is_none() || sb.table_offset + sb.table_len > flen
    {
        return Ok(Err(ContainerState::CorruptTable(
            "table extent past end of file".into(),
        )));
    }
    let mut table = vec![0u8; sb.table_len as usize];
    file.read_at(sb.table_offset, &mut table)
        .map_err(H5Error::Io)?;
    if sb.version >= 2 {
        let actual = crc32c(&table);
        if actual != sb.table_crc {
            return Ok(Err(ContainerState::CorruptTable(format!(
                "table checksum mismatch: recorded {:#010x}, read {actual:#010x}",
                sb.table_crc
            ))));
        }
    }
    let parsed = if sb.version >= 2 {
        deserialize_table(&table)
    } else {
        deserialize_table_v1(&table)
    };
    match parsed {
        Ok(datasets) => Ok(Ok((datasets, sb.checksummed()))),
        Err(e) => Ok(Err(ContainerState::CorruptTable(e.to_string()))),
    }
}

/// Scrub the container at `path`: classify the superblock, the
/// metadata table, and every chunk record. Only environmental I/O
/// failures (permissions, vanished file) return `Err`; damage is
/// reported in the [`ScrubReport`].
pub fn scrub(path: impl AsRef<Path>) -> Result<ScrubReport> {
    let path = path.as_ref().to_path_buf();
    let file = SharedFile::open(&path).map_err(H5Error::Io)?;
    let (datasets, checksummed) = match load_meta(&file)? {
        Ok(ok) => ok,
        Err(state) => {
            return Ok(ScrubReport {
                path,
                container: state,
                chunks: Vec::new(),
                verified: false,
            })
        }
    };
    let flen = file.len().map_err(H5Error::Io)?;
    let mut chunks = Vec::new();
    let mut buf = Vec::new();
    for d in &datasets {
        for (record, c) in d.chunks.iter().enumerate() {
            let state = if c.offset.checked_add(c.stored).is_none() || c.offset + c.stored > flen {
                ChunkState::Truncated
            } else if checksummed {
                buf.clear();
                buf.resize(c.stored as usize, 0);
                file.read_at(c.offset, &mut buf).map_err(H5Error::Io)?;
                let actual = crc32c(&buf);
                if actual == c.crc {
                    ChunkState::Ok
                } else {
                    ChunkState::Corrupt {
                        expected: c.crc,
                        actual,
                    }
                }
            } else {
                // v1: present, but nothing to verify against.
                ChunkState::Ok
            };
            chunks.push(ChunkReport {
                dataset: d.name.clone(),
                index: c.index,
                record,
                offset: c.offset,
                stored: c.stored,
                state,
            });
        }
    }
    Ok(ScrubReport {
        path,
        container: ContainerState::Ok,
        chunks,
        verified: checksummed,
    })
}

/// Outcome of [`repair_from_replica`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Damaged records whose bytes were restored (and re-verified)
    /// from the replica.
    pub repaired: usize,
    /// Damaged records the replica could not heal (replica missing
    /// the record, size mismatch, or replica bytes failing the CRC).
    pub unrepairable: usize,
}

/// Repair damaged chunks of `path` in place from `replica` — a
/// container holding the same datasets (e.g. the burst-buffer copy of
/// a checkpoint whose PFS copy rotted, or vice versa). Each damaged
/// record is matched by (dataset, chunk index, record position); the
/// replica's bytes must verify against the *target's* recorded CRC
/// before they are written, so a diverged replica can never make
/// things worse. Container-level damage (torn/corrupt superblock or
/// table) is not repairable chunk-wise — quarantine instead.
pub fn repair_from_replica(
    path: impl AsRef<Path>,
    replica: impl AsRef<Path>,
) -> Result<RepairReport> {
    let report = scrub(&path)?;
    if report.container != ContainerState::Ok {
        return Err(H5Error::InvalidState(
            "container-level damage is not chunk-repairable; quarantine the file",
        ));
    }
    let mut out = RepairReport::default();
    if report.damaged().next().is_none() {
        return Ok(out);
    }
    let target = SharedFile::open(path.as_ref()).map_err(H5Error::Io)?;
    let replica_file = SharedFile::open(replica.as_ref()).map_err(H5Error::Io)?;
    let replica_meta = match load_meta(&replica_file)? {
        Ok((datasets, _)) => datasets,
        Err(_) => {
            // A damaged replica heals nothing.
            out.unrepairable = report.damaged().count();
            return Ok(out);
        }
    };
    let target_meta = match load_meta(&target)? {
        Ok((datasets, _)) => datasets,
        Err(_) => unreachable!("scrub above verified the container"),
    };
    let rlen = replica_file.len().map_err(H5Error::Io)?;
    let mut buf = Vec::new();
    for damaged in report.damaged() {
        let repaired = (|| -> Option<()> {
            let t_ds = target_meta.iter().find(|d| d.name == damaged.dataset)?;
            let r_ds = replica_meta.iter().find(|d| d.name == damaged.dataset)?;
            let want = t_ds.chunks.get(damaged.record)?;
            let have = r_ds.chunks.get(damaged.record)?;
            if have.index != want.index || have.stored != want.stored {
                return None;
            }
            if have.offset.checked_add(have.stored)? > rlen {
                return None;
            }
            buf.clear();
            buf.resize(have.stored as usize, 0);
            replica_file.read_at(have.offset, &mut buf).ok()?;
            // Verify against the target's recorded CRC: only bytes
            // that restore the original content are written back.
            if crc32c(&buf) != want.crc {
                return None;
            }
            target.write_at(want.offset, &buf).ok()?;
            Some(())
        })()
        .is_some();
        if repaired {
            out.repaired += 1;
        } else {
            out.unrepairable += 1;
        }
    }
    target.sync().map_err(H5Error::Io)?;
    Ok(out)
}

/// Mark-and-skip: rename a damaged container to
/// `<name>.quarantined`, returning the new path. Recovery then
/// re-produces the step instead of trusting damaged bytes.
pub fn quarantine(path: impl AsRef<Path>) -> Result<PathBuf> {
    let path = path.as_ref();
    let mut name = path
        .file_name()
        .ok_or(H5Error::InvalidState("path has no file name"))?
        .to_os_string();
    name.push(".quarantined");
    let dest = path.with_file_name(name);
    std::fs::rename(path, &dest).map_err(H5Error::Io)?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{DatasetSpec, H5File};
    use crate::meta::Dtype;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("h5lite-scrub-{}-{}.h5l", std::process::id(), name));
        p
    }

    fn write_container(path: &Path, seed: u8) -> Vec<u8> {
        let f = H5File::create(path).unwrap();
        let data: Vec<u8> = (0..2048u32).map(|i| (i as u8).wrapping_add(seed)).collect();
        let id = f
            .create_dataset(DatasetSpec::new("v", Dtype::U8, &[2048]).chunked(&[512]))
            .unwrap();
        f.write_full(id, &data).unwrap();
        f.close().unwrap();
        data
    }

    #[test]
    fn clean_container_scrubs_clean() {
        let path = tmp("clean");
        write_container(&path, 0);
        let r = scrub(&path).unwrap();
        assert!(r.is_clean());
        assert!(r.verified);
        assert_eq!(r.chunks.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_classified_corrupt_and_repaired_from_replica() {
        let path = tmp("flip");
        let replica = tmp("flip-replica");
        let data = write_container(&path, 0);
        write_container(&replica, 0);

        // Flip a bit in the third chunk.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[SUPERBLOCK as usize + 1100] ^= 0x02;
        std::fs::write(&path, &bytes).unwrap();

        let r = scrub(&path).unwrap();
        assert!(!r.is_clean());
        assert_eq!(r.n_corrupt(), 1);
        assert_eq!(r.n_truncated(), 0);
        let bad = r.damaged().next().unwrap();
        assert_eq!(bad.dataset, "v");
        assert_eq!(bad.index, 2);

        let rep = repair_from_replica(&path, &replica).unwrap();
        assert_eq!(
            rep,
            RepairReport {
                repaired: 1,
                unrepairable: 0
            }
        );
        assert!(scrub(&path).unwrap().is_clean());
        let restored = crate::H5Reader::open(&path).unwrap().read_raw("v").unwrap();
        assert_eq!(restored, data);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&replica).unwrap();
    }

    #[test]
    fn diverged_replica_cannot_make_things_worse() {
        let path = tmp("diverge");
        let replica = tmp("diverge-replica");
        write_container(&path, 0);
        write_container(&replica, 77); // different content, same shape

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[SUPERBLOCK as usize + 10] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        let rep = repair_from_replica(&path, &replica).unwrap();
        assert_eq!(
            rep,
            RepairReport {
                repaired: 0,
                unrepairable: 1
            }
        );
        // Still damaged, but not *differently* damaged.
        assert_eq!(scrub(&path).unwrap().n_corrupt(), 1);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&replica).unwrap();
    }

    #[test]
    fn torn_container_detected_and_quarantined() {
        let path = tmp("torn");
        // A writer that never reached close(): zeroed superblock plus
        // some chunk bytes.
        let f = H5File::create(&path).unwrap();
        let id = f
            .create_dataset(DatasetSpec::new("v", Dtype::U8, &[64]))
            .unwrap();
        f.write_full(id, &[1u8; 64]).unwrap();
        drop(f); // no close
        let r = scrub(&path).unwrap();
        assert_eq!(r.container, ContainerState::Torn);
        assert!(!r.is_clean());

        let dest = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(dest.exists());
        assert!(dest.to_string_lossy().ends_with(".quarantined"));
        std::fs::remove_file(&dest).unwrap();
    }

    #[test]
    fn truncated_file_classified_truncated() {
        let path = tmp("shorter");
        write_container(&path, 0);
        // Chop the file *after* rewriting the superblock to keep the
        // table: instead simulate by pointing the table at a truncated
        // copy — simplest is cutting mid-table, which is CorruptTable.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let r = scrub(&path).unwrap();
        assert!(matches!(r.container, ContainerState::CorruptTable(_)));
        std::fs::remove_file(&path).unwrap();
    }
}
