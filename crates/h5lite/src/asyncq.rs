//! Event-set style asynchronous writes (HDF5 async VOL analog).
//!
//! HDF5 1.13's asynchronous VOL connector executes I/O on background
//! threads while the application continues computing — the capability
//! the paper leverages to overlap compression with writes (§II-A).
//! [`EventSet`] mirrors the H5ES API: operations are enqueued, execute
//! on worker threads, and `wait()` blocks until everything completes.

use crate::error::{AsyncWriteFailure, H5Error, Result};
use crate::pool::BufferPool;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use pfsim::{SharedFile, Throttle};
use std::sync::Arc;
use std::sync::OnceLock;
use std::thread::JoinHandle;

/// Queue-depth gauge shared by every event set in the process; the
/// per-step high-water mark lands in the flight recorder.
fn depth_gauge() -> &'static obs::Gauge {
    static G: OnceLock<&'static obs::Gauge> = OnceLock::new();
    G.get_or_init(|| obs::gauge("h5.asyncq.depth"))
}

struct Op {
    file: SharedFile,
    offset: u64,
    data: Vec<u8>,
    throttle: Option<Arc<Throttle>>,
    /// Where to return `data` once written (buffer recycling).
    recycle: Option<Arc<BufferPool>>,
}

struct Pending {
    count: Mutex<usize>,
    cv: Condvar,
    /// Failed writes, typed; drained by [`EventSet::wait`]. A failure
    /// never panics the worker — the queue keeps draining so `wait()`
    /// cannot hang on a poisoned pipeline.
    errors: Mutex<Vec<AsyncWriteFailure>>,
}

/// An asynchronous write queue backed by worker threads.
pub struct EventSet {
    /// `Some` until drop: closing the channel (rather than sending a
    /// poison message) is the shutdown signal, so workers drain every
    /// queued write before exiting regardless of delivery order.
    tx: Option<Sender<Op>>,
    pending: Arc<Pending>,
    workers: Vec<JoinHandle<()>>,
}

impl EventSet {
    /// Create an event set with `n_workers` background I/O threads
    /// (HDF5's async VOL uses one; more emulate multiple HW queues).
    pub fn new(n_workers: usize) -> Self {
        let (tx, rx) = unbounded::<Op>();
        let pending = Arc::new(Pending {
            count: Mutex::new(0),
            cv: Condvar::new(),
            errors: Mutex::new(Vec::new()),
        });
        let workers = (0..n_workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let pending = Arc::clone(&pending);
                std::thread::spawn(move || {
                    while let Ok(op) = rx.recv() {
                        let Op {
                            file,
                            offset,
                            data,
                            throttle,
                            recycle,
                        } = op;
                        let span = obs::span_arg("h5.write", data.len() as u64);
                        if let Some(t) = &throttle {
                            t.acquire(data.len() as u64);
                        }
                        if let Err(e) = file.write_at(offset, &data) {
                            pending.errors.lock().push(AsyncWriteFailure {
                                offset,
                                len: data.len() as u64,
                                error: e,
                            });
                        }
                        drop(span);
                        depth_gauge().add(-1);
                        if let Some(pool) = recycle {
                            pool.put(data);
                        }
                        let mut c = pending.count.lock();
                        *c -= 1;
                        if *c == 0 {
                            pending.cv.notify_all();
                        }
                    }
                    obs::trace::flush_thread();
                })
            })
            .collect();
        EventSet {
            tx: Some(tx),
            pending,
            workers,
        }
    }

    /// Create an event set sized from the `ES_WORKERS` environment
    /// variable: unset or invalid falls back to 1, the async VOL's
    /// single background thread; larger values emulate multiple
    /// hardware queues.
    pub fn from_env() -> Self {
        let n = std::env::var("ES_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        Self::new(n)
    }

    /// Enqueue an asynchronous positioned write. Returns immediately.
    pub fn write_at(
        &self,
        file: &SharedFile,
        offset: u64,
        data: Vec<u8>,
        throttle: Option<Arc<Throttle>>,
    ) {
        self.enqueue(file, offset, data, throttle, None);
    }

    /// Like [`EventSet::write_at`], but once the write completes the
    /// buffer is returned to `pool` instead of dropped — callers taking
    /// their buffers from the same pool stream without per-chunk
    /// allocation.
    pub fn write_at_recycled(
        &self,
        file: &SharedFile,
        offset: u64,
        data: Vec<u8>,
        throttle: Option<Arc<Throttle>>,
        pool: Arc<BufferPool>,
    ) {
        self.enqueue(file, offset, data, throttle, Some(pool));
    }

    fn enqueue(
        &self,
        file: &SharedFile,
        offset: u64,
        data: Vec<u8>,
        throttle: Option<Arc<Throttle>>,
        recycle: Option<Arc<BufferPool>>,
    ) {
        *self.pending.count.lock() += 1;
        depth_gauge().add(1);
        let send = self.tx.as_ref().expect("event set shut down").send(Op {
            file: file.clone(),
            offset,
            data,
            throttle,
            recycle,
        });
        if let Err(e) = send {
            // Workers are gone (all panicked/joined): record a typed
            // failure instead of panicking the producer, and undo the
            // pending count so wait() still terminates.
            let op = e.into_inner();
            self.pending.errors.lock().push(AsyncWriteFailure {
                offset: op.offset,
                len: op.data.len() as u64,
                error: std::io::Error::other("event set workers gone"),
            });
            if let Some(pool) = op.recycle {
                pool.put(op.data);
            }
            depth_gauge().add(-1);
            let mut c = self.pending.count.lock();
            *c -= 1;
            if *c == 0 {
                self.pending.cv.notify_all();
            }
        }
    }

    /// Number of operations not yet completed.
    pub fn in_flight(&self) -> usize {
        *self.pending.count.lock()
    }

    /// Block until all enqueued operations complete (H5ESwait).
    /// Failed writes surface here as [`H5Error::AsyncWrites`], typed
    /// with each op's offset/length — the flush/close point is where
    /// HDF5's async VOL reports errors too.
    pub fn wait(&self) -> Result<()> {
        let mut c = self.pending.count.lock();
        while *c > 0 {
            self.pending.cv.wait(&mut c);
        }
        drop(c);
        let errs = std::mem::take(&mut *self.pending.errors.lock());
        if errs.is_empty() {
            Ok(())
        } else {
            Err(H5Error::AsyncWrites(errs))
        }
    }
}

impl Drop for EventSet {
    fn drop(&mut self) {
        // Closing the channel lets every worker drain remaining writes
        // and observe disconnection — no sentinel message that could
        // overtake queued work.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("h5lite-async-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn async_writes_complete_on_wait() {
        let path = tmp("basic");
        let f = SharedFile::create(&path).unwrap();
        let es = EventSet::new(2);
        for i in 0..16u64 {
            es.write_at(&f, i * 100, vec![i as u8; 100], None);
        }
        es.wait().unwrap();
        assert_eq!(es.in_flight(), 0);
        for i in 0..16u64 {
            let mut buf = vec![0u8; 100];
            f.read_at(i * 100, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wait_on_empty_set_returns() {
        let es = EventSet::new(1);
        es.wait().unwrap();
    }

    #[test]
    fn overlaps_with_compute() {
        // Enqueue a throttled (slow) write and verify control returns
        // to the caller immediately.
        let path = tmp("overlap");
        let f = SharedFile::create(&path).unwrap();
        let es = EventSet::new(1);
        let throttle = Arc::new(Throttle::new(5e6, std::time::Duration::ZERO));
        let start = std::time::Instant::now();
        es.write_at(&f, 0, vec![1u8; 1_000_000], Some(throttle));
        let enqueue_time = start.elapsed();
        assert!(enqueue_time.as_millis() < 50, "enqueue must not block");
        es.wait().unwrap();
        let total = start.elapsed().as_secs_f64();
        assert!(
            total > 0.1,
            "throttled write should take ≥ 0.15 s, took {total}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_write_failures_surface_at_wait_without_hanging() {
        use pfsim::{Fault, FaultFs, FaultPlan};
        // A torn write crashes the simulated process: the op it hits
        // fails permanently and so does everything after it. All of
        // that must drain (no hang), be recorded typed, and surface
        // at wait() — never panic a worker.
        let path = tmp("faulty");
        let f = SharedFile::create(&path).unwrap();
        f.set_faults(Some(FaultFs::new(
            FaultPlan::new().on_write(2, Fault::TornWrite { keep: 1 }),
        )));
        let es = EventSet::new(1);
        for i in 0..6u64 {
            es.write_at(&f, i * 8, vec![i as u8; 8], None);
        }
        let err = es.wait().unwrap_err();
        match err {
            H5Error::AsyncWrites(fails) => {
                // Ops 0 and 1 land, op 2 is torn, ops 3..6 observe the
                // crash: 4 typed failures (delivery order of the
                // channel decides *which* offsets those are).
                assert_eq!(fails.len(), 4, "{fails:?}");
                assert!(fails.iter().all(|w| w.len == 8));
                assert!(
                    fails.iter().all(|w| matches!(
                        pfsim::FaultError::from_io(&w.error),
                        Some(pfsim::FaultError::Crashed { .. })
                    )),
                    "{fails:?}"
                );
            }
            other => panic!("expected AsyncWrites, got {other:?}"),
        }
        assert_eq!(es.in_flight(), 0);
        // The queue stays usable: errors were drained, and with the
        // harness detached a later write round succeeds.
        f.set_faults(None);
        es.write_at(&f, 0, vec![9; 8], None);
        es.wait().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multiple_waits() {
        let path = tmp("multi");
        let f = SharedFile::create(&path).unwrap();
        let es = EventSet::new(2);
        es.write_at(&f, 0, vec![1; 10], None);
        es.wait().unwrap();
        es.write_at(&f, 10, vec![2; 10], None);
        es.wait().unwrap();
        assert_eq!(f.tail(), 20);
        std::fs::remove_file(&path).unwrap();
    }
}
