//! Chunk-tile geometry: gathering and scattering N-D tiles (rank ≤ 3)
//! between a dataset's row-major buffer and per-chunk contiguous
//! buffers, including clipped edge chunks.

use crate::error::{H5Error, Result};

/// Pad extents to 3-D (slow axes = 1), mirroring HDF5's row-major order.
fn pad3(dims: &[u64]) -> [u64; 3] {
    let mut e = [1u64; 3];
    let off = 3 - dims.len();
    for (i, &d) in dims.iter().enumerate() {
        e[off + i] = d;
    }
    e
}

/// Geometry of one chunk within a chunked dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGeom {
    /// Start coordinates (z, y, x).
    pub start: [u64; 3],
    /// Tile extents, clipped at dataset edges.
    pub extent: [u64; 3],
}

impl TileGeom {
    /// Elements in the tile.
    pub fn len(&self) -> u64 {
        self.extent.iter().product()
    }

    /// True when the tile is empty (never for valid indices).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Compute the geometry of chunk `chunk_idx` (row-major chunk grid).
pub fn tile_geom(dims: &[u64], chunk_dims: &[u64], chunk_idx: u64) -> Result<TileGeom> {
    if dims.len() != chunk_dims.len() || dims.is_empty() || dims.len() > 3 {
        return Err(H5Error::Corrupt("tile rank"));
    }
    if chunk_dims.contains(&0) {
        return Err(H5Error::Corrupt("zero chunk extent"));
    }
    let d = pad3(dims);
    let c = pad3(chunk_dims);
    let grid = [
        d[0].div_ceil(c[0]),
        d[1].div_ceil(c[1]),
        d[2].div_ceil(c[2]),
    ];
    let total = grid[0] * grid[1] * grid[2];
    if chunk_idx >= total {
        return Err(H5Error::Corrupt("chunk index out of grid"));
    }
    let gz = chunk_idx / (grid[1] * grid[2]);
    let gy = (chunk_idx / grid[2]) % grid[1];
    let gx = chunk_idx % grid[2];
    let start = [gz * c[0], gy * c[1], gx * c[2]];
    let extent = [
        c[0].min(d[0] - start[0]),
        c[1].min(d[1] - start[1]),
        c[2].min(d[2] - start[2]),
    ];
    Ok(TileGeom { start, extent })
}

/// Extract chunk `chunk_idx` from the full row-major `data` buffer.
pub fn gather_tile(
    data: &[u8],
    dims: &[u64],
    elem: usize,
    chunk_dims: &[u64],
    chunk_idx: u64,
) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    gather_tile_into(data, dims, elem, chunk_dims, chunk_idx, &mut out)?;
    Ok(out)
}

/// Extract chunk `chunk_idx` into `out` (cleared first), reusing the
/// buffer's allocation — the per-tile path of the compression pipeline
/// calls this once per chunk per worker.
pub fn gather_tile_into(
    data: &[u8],
    dims: &[u64],
    elem: usize,
    chunk_dims: &[u64],
    chunk_idx: u64,
    out: &mut Vec<u8>,
) -> Result<()> {
    let d = pad3(dims);
    let g = tile_geom(dims, chunk_dims, chunk_idx)?;
    let expected = d.iter().product::<u64>() as usize * elem;
    if data.len() != expected {
        return Err(H5Error::ShapeMismatch {
            expected: expected as u64,
            actual: data.len() as u64,
        });
    }
    let row_bytes = g.extent[2] as usize * elem;
    out.clear();
    out.reserve(g.len() as usize * elem);
    for z in 0..g.extent[0] {
        for y in 0..g.extent[1] {
            let gz = g.start[0] + z;
            let gy = g.start[1] + y;
            let off = ((gz * d[1] + gy) * d[2] + g.start[2]) as usize * elem;
            out.extend_from_slice(&data[off..off + row_bytes]);
        }
    }
    Ok(())
}

/// Insert a tile back into the full row-major `out` buffer.
pub fn scatter_tile(
    out: &mut [u8],
    dims: &[u64],
    elem: usize,
    chunk_dims: &[u64],
    chunk_idx: u64,
    tile: &[u8],
) -> Result<()> {
    let d = pad3(dims);
    let g = tile_geom(dims, chunk_dims, chunk_idx)?;
    let expected = d.iter().product::<u64>() as usize * elem;
    if out.len() != expected {
        return Err(H5Error::ShapeMismatch {
            expected: expected as u64,
            actual: out.len() as u64,
        });
    }
    let tile_expected = g.len() as usize * elem;
    if tile.len() != tile_expected {
        return Err(H5Error::ShapeMismatch {
            expected: tile_expected as u64,
            actual: tile.len() as u64,
        });
    }
    let row_bytes = g.extent[2] as usize * elem;
    let mut src = 0usize;
    for z in 0..g.extent[0] {
        for y in 0..g.extent[1] {
            let gz = g.start[0] + z;
            let gy = g.start[1] + y;
            let off = ((gz * d[1] + gy) * d[2] + g.start[2]) as usize * elem;
            out[off..off + row_bytes].copy_from_slice(&tile[src..src + row_bytes]);
            src += row_bytes;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geom_even_grid() {
        let g = tile_geom(&[4, 4, 4], &[2, 2, 2], 0).unwrap();
        assert_eq!(g.start, [0, 0, 0]);
        assert_eq!(g.extent, [2, 2, 2]);
        let g7 = tile_geom(&[4, 4, 4], &[2, 2, 2], 7).unwrap();
        assert_eq!(g7.start, [2, 2, 2]);
    }

    #[test]
    fn geom_edge_clipping() {
        // 5 wide with chunk 2: last chunk is width 1.
        let g = tile_geom(&[5], &[2], 2).unwrap();
        assert_eq!(g.start[2], 4);
        assert_eq!(g.extent[2], 1);
    }

    #[test]
    fn geom_rejects_out_of_grid() {
        assert!(tile_geom(&[4, 4], &[2, 2], 4).is_err());
        assert!(tile_geom(&[4], &[0], 0).is_err());
    }

    #[test]
    fn gather_scatter_roundtrip_3d() {
        let dims = [4u64, 6, 8];
        let n: usize = (4 * 6 * 8) as usize;
        let data: Vec<u8> = (0..n * 2).map(|i| (i % 251) as u8).collect(); // elem=2
        let chunk = [2u64, 3, 4];
        let n_chunks = 2 * 2 * 2;
        let mut rebuilt = vec![0u8; data.len()];
        for c in 0..n_chunks {
            let tile = gather_tile(&data, &dims, 2, &chunk, c).unwrap();
            scatter_tile(&mut rebuilt, &dims, 2, &chunk, c, &tile).unwrap();
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn gather_scatter_roundtrip_1d_ragged() {
        let dims = [10u64];
        let data: Vec<u8> = (0..40).collect(); // f32-like elem=4
        let chunk = [4u64];
        let mut rebuilt = vec![0u8; 40];
        for c in 0..3 {
            let tile = gather_tile(&data, &dims, 4, &chunk, c).unwrap();
            scatter_tile(&mut rebuilt, &dims, 4, &chunk, c, &tile).unwrap();
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn shape_mismatch_detected() {
        assert!(gather_tile(&[0u8; 10], &[4], 4, &[2], 0).is_err());
        let mut out = vec![0u8; 16];
        assert!(scatter_tile(&mut out, &[4], 4, &[2], 0, &[0u8; 3]).is_err());
    }
}
