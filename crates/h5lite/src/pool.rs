//! Recycling pool for the byte buffers that flow through the
//! compress → async-write pipeline.
//!
//! Stored-chunk buffers are the one allocation that must escape the
//! per-worker [`FilterScratch`](crate::FilterScratch): ownership passes
//! from a compression worker through the reorder sink into the
//! [`EventSet`](crate::EventSet) write queue. Instead of dropping each
//! buffer after its write completes, the queue returns it here and the
//! next chunk starts from a pre-grown buffer — steady-state streaming
//! allocates nothing per chunk.

use parking_lot::Mutex;

/// Upper bound on retained buffers; beyond this, returned buffers are
/// dropped so a burst (many in-flight writes) can't pin memory forever.
const MAX_POOLED: usize = 64;

/// A shared last-in-first-out pool of reusable `Vec<u8>` buffers.
///
/// LIFO order hands the most recently used (cache-warm, fully grown)
/// buffer to the next taker. All methods take `&self`; share the pool
/// across threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer, reusing a pooled one when available.
    pub fn take(&self) -> Vec<u8> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    /// Return a buffer for reuse; its contents are discarded (the
    /// capacity is what's recycled).
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < MAX_POOLED {
            bufs.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    pub fn len(&self) -> usize {
        self.bufs.lock().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.bufs.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_capacity() {
        let pool = BufferPool::new();
        let mut b = pool.take();
        b.extend_from_slice(&[1, 2, 3]);
        let cap = b.capacity();
        pool.put(b);
        assert_eq!(pool.len(), 1);
        let b2 = pool.take();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap);
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufferPool::new();
        for _ in 0..200 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.len(), MAX_POOLED);
    }
}
