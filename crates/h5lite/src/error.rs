//! Error type for h5lite operations.

use std::fmt;

/// One failed asynchronous write, surfaced at
/// [`EventSet::wait`](crate::EventSet::wait).
#[derive(Debug)]
pub struct AsyncWriteFailure {
    /// Absolute file offset the write targeted.
    pub offset: u64,
    /// Length of the payload that failed to land.
    pub len: u64,
    /// The underlying I/O error.
    pub error: std::io::Error,
}

impl fmt::Display for AsyncWriteFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "write of {} bytes at offset {}: {}",
            self.len, self.offset, self.error
        )
    }
}

/// Errors from reading or writing an h5lite container.
#[derive(Debug)]
pub enum H5Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Bad magic number — not an h5lite file.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u8),
    /// Stream ended early.
    Truncated(&'static str),
    /// Structurally invalid content.
    Corrupt(&'static str),
    /// Stored bytes fail their recorded CRC32C — bit rot or a torn
    /// write; the data is never silently decoded.
    ChecksumMismatch {
        /// What was being verified ("chunk", "metadata table", ...).
        context: &'static str,
        /// Absolute file offset of the checked extent.
        offset: u64,
        /// Checksum recorded in the metadata.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// One or more asynchronous writes failed; collected typed at
    /// [`EventSet::wait`](crate::EventSet::wait) instead of panicking
    /// the worker threads.
    AsyncWrites(Vec<AsyncWriteFailure>),
    /// Dataset name not found.
    NoSuchDataset(String),
    /// Dataset already exists.
    DuplicateDataset(String),
    /// A filter id has no registered implementation.
    UnknownFilter(u32),
    /// Filter failed to encode/decode.
    Filter(String),
    /// Data length does not match dataset extents.
    ShapeMismatch { expected: u64, actual: u64 },
    /// Operation invalid in the file's current state.
    InvalidState(&'static str),
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::Io(e) => write!(f, "i/o error: {e}"),
            H5Error::BadMagic => write!(f, "not an h5lite file"),
            H5Error::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            H5Error::Truncated(s) => write!(f, "truncated while reading {s}"),
            H5Error::Corrupt(s) => write!(f, "corrupt section: {s}"),
            H5Error::ChecksumMismatch {
                context,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {context} at offset {offset}: \
                 recorded {expected:#010x}, read {actual:#010x}"
            ),
            H5Error::AsyncWrites(fails) => {
                write!(f, "{} async write failure(s): ", fails.len())?;
                for (i, w) in fails.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            H5Error::NoSuchDataset(n) => write!(f, "no such dataset: {n}"),
            H5Error::DuplicateDataset(n) => write!(f, "dataset already exists: {n}"),
            H5Error::UnknownFilter(id) => write!(f, "unknown filter id {id}"),
            H5Error::Filter(m) => write!(f, "filter error: {m}"),
            H5Error::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} bytes, got {actual}")
            }
            H5Error::InvalidState(s) => write!(f, "invalid state: {s}"),
        }
    }
}

impl std::error::Error for H5Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            H5Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for H5Error {
    fn from(e: std::io::Error) -> Self {
        H5Error::Io(e)
    }
}

impl From<szlite::SzError> for H5Error {
    fn from(e: szlite::SzError) -> Self {
        H5Error::Filter(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, H5Error>;
