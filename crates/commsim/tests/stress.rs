//! Stress and property tests for the threads-as-ranks communicator.

use commsim::{run_world, World};
use proptest::prelude::*;

#[test]
fn mixed_collectives_interleave_correctly() {
    // A workload resembling the paper's pipeline: barrier, all-gather
    // of per-rank metadata, gather at root, broadcast of a decision,
    // repeated for several "fields".
    let n = 12;
    run_world(n, |rk| {
        for field in 0..6u64 {
            let sizes = rk.all_gather(rk.rank() as u64 * 100 + field);
            assert_eq!(sizes.len(), n);
            for (r, &s) in sizes.iter().enumerate() {
                assert_eq!(s, r as u64 * 100 + field);
            }
            let at_root = rk.gather(0, sizes[rk.rank()]);
            let decision = if rk.rank() == 0 {
                Some(at_root.unwrap().iter().sum::<u64>())
            } else {
                None
            };
            let total = rk.broadcast(0, decision);
            assert_eq!(total, (0..n as u64).map(|r| r * 100 + field).sum::<u64>());
            rk.barrier();
        }
    });
}

#[test]
fn world_reusable_across_runs() {
    let world = World::new(4);
    let a = world.run(|rk| rk.all_reduce(1u32, |x, y| x + y));
    let b = world.run(|rk| rk.all_reduce(2u32, |x, y| x + y));
    assert_eq!(a, vec![4; 4]);
    assert_eq!(b, vec![8; 4]);
}

#[test]
fn heavy_point_to_point_traffic() {
    // All-to-all sends with per-pair tags.
    let n = 8;
    run_world(n, |rk| {
        for to in 0..n {
            if to != rk.rank() {
                rk.send(to, (rk.rank() * n + to) as u64, vec![rk.rank() as u32; 100]);
            }
        }
        for from in 0..n {
            if from != rk.rank() {
                let v: Vec<u32> = rk.recv(from, (from * n + rk.rank()) as u64);
                assert_eq!(v, vec![from as u32; 100]);
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(16, 0xC0_5151) /* pinned: deterministic CI */)]

    #[test]
    fn all_gather_arbitrary_payloads(values in proptest::collection::vec(any::<i64>(), 2..10)) {
        let n = values.len();
        let vals = values.clone();
        let out = run_world(n, move |rk| {
            let gathered = rk.all_gather(vals[rk.rank()]);
            assert_eq!(&gathered[..], &vals[..]);
            gathered[rk.rank()]
        });
        prop_assert_eq!(out, values);
    }

    #[test]
    fn all_reduce_max_equals_iterator_max(values in proptest::collection::vec(any::<u32>(), 2..10)) {
        let n = values.len();
        let vals = values.clone();
        let expect = *values.iter().max().unwrap();
        let out = run_world(n, move |rk| rk.all_reduce(vals[rk.rank()], |a, b| a.max(b)));
        prop_assert!(out.into_iter().all(|v| v == expect));
    }
}
