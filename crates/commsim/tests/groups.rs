//! Property and failure tests for subgroup communicators.

use commsim::{run_world, WorldPoisoned};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(24, 0x6_2011) /* pinned: deterministic CI */)]

    /// Two-level reduction over an arbitrary (possibly ragged,
    /// non-contiguous) split must equal the flat all-gather reduction,
    /// for exact integer folds where grouping order cannot matter.
    #[test]
    fn reduce_groups_equals_flat_sum(
        spec in proptest::collection::vec((any::<u64>(), 0usize..5), 2..17),
    ) {
        let n = spec.len();
        let values: Vec<u64> = spec.iter().map(|&(v, _)| v).collect();
        let colors: Vec<usize> = spec.iter().map(|&(_, c)| c).collect();
        let flat_sum = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        let flat_max = *values.iter().max().unwrap();
        let out = run_world(n, move |rk| {
            let g = rk.split(colors[rk.rank()])?;
            let sum = g.try_reduce_groups(values[rk.rank()], |a, b| a.wrapping_add(b))?;
            let max = g.try_reduce_groups(values[rk.rank()], |a, b| a.max(b))?;
            // The flat path on the same world, for an in-run cross-check.
            let all = rk.try_all_gather(values[rk.rank()])?;
            let flat = all.iter().fold(0u64, |a, &b| a.wrapping_add(b));
            Ok::<(u64, u64, u64), WorldPoisoned>((sum, max, flat))
        });
        for r in out {
            let (sum, max, flat) = r.unwrap();
            prop_assert_eq!(sum, flat_sum);
            prop_assert_eq!(sum, flat);
            prop_assert_eq!(max, flat_max);
        }
    }

    /// Vector-valued reduction (the shape the reservation collective
    /// uses: per-field byte totals) over random splits.
    #[test]
    fn reduce_groups_elementwise_vectors(
        colors in proptest::collection::vec(0usize..4, 3..11),
        nfields in 1usize..5,
    ) {
        let n = colors.len();
        let out = run_world(n, move |rk| {
            let g = rk.split(colors[rk.rank()])?;
            let mine: Vec<u64> = (0..nfields)
                .map(|f| (rk.rank() * 31 + f * 7 + 1) as u64)
                .collect();
            g.try_reduce_groups(mine, |a, b| {
                a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
            })
        });
        for (f, _) in (0..nfields).enumerate() {
            let want: u64 = (0..n).map(|r| (r * 31 + f * 7 + 1) as u64).sum();
            for r in &out {
                prop_assert_eq!(r.as_ref().unwrap()[f], want);
            }
        }
    }
}

/// One rank of one group fails mid-collective: every other rank —
/// including members of *different* groups parked in their own
/// group-local collectives — must unblock with the typed error. No
/// deadlock, no panic.
#[test]
fn poison_in_one_subgroup_unblocks_whole_world() {
    let n = 9;
    let out = run_world(n, |rk| {
        let g = rk.split(rk.rank() / 3).map_err(|e| e.to_string())?;
        if rk.rank() == 4 {
            // Middle rank of the middle group dies before
            // contributing; its group peers are parked in the gather
            // below, other groups proceed to the exchange.
            std::thread::sleep(std::time::Duration::from_millis(30));
            rk.poison();
            return Err("rank 4 failed".to_string());
        }
        let local = g
            .try_all_gather(rk.rank() as u64)
            .map_err(|e| e.to_string())?;
        let total = local.iter().sum::<u64>();
        // World-spanning step: needs every rank, so it must observe
        // the poison even from groups rank 4 never belonged to.
        g.try_exchange(g.is_leader().then_some(total))
            .map(|v| v.iter().sum::<u64>())
            .map_err(|e| e.to_string())
    });
    assert_eq!(out[4], Err("rank 4 failed".to_string()));
    let poisoned = WorldPoisoned.to_string();
    for (r, o) in out.iter().enumerate() {
        if r != 4 {
            assert_eq!(*o, Err(poisoned.clone()), "rank {r}");
        }
    }
}

/// Poison arriving while ranks are parked inside the group-local
/// barrier itself (not a gather) must also release them.
#[test]
fn poison_releases_group_barrier_waiters() {
    let out = run_world(6, |rk| {
        let g = rk.split(rk.rank() % 2).map_err(|_| "split".to_string())?;
        if rk.rank() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(30));
            rk.poison();
            return Err("rank 0 failed".to_string());
        }
        // Rank 0 is in group 0; group 0's other members park on their
        // group barrier, group 1's members park on theirs after
        // completing it once (their group is whole, so one round
        // passes; the world-level gather after it cannot).
        g.try_barrier()
            .map_err(|_| "group barrier poisoned".to_string())?;
        rk.try_all_gather(0u8)
            .map(|v| v.len())
            .map_err(|_| "world gather poisoned".to_string())
    });
    assert_eq!(out[0], Err("rank 0 failed".to_string()));
    for (r, o) in out.iter().enumerate().skip(1) {
        assert!(o.is_err(), "rank {r} should have seen the poison: {o:?}");
    }
}

/// A split performed *after* the world is poisoned fails cleanly.
#[test]
fn split_after_poison_errors() {
    let out = run_world(4, |rk| {
        if rk.rank() == 2 {
            rk.poison();
            return Err(WorldPoisoned);
        }
        // Give the poison time to land, then attempt to split.
        std::thread::sleep(std::time::Duration::from_millis(20));
        rk.split(0).map(|g| g.size())
    });
    for o in out {
        assert!(o.is_err());
    }
}
