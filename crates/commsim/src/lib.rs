//! # commsim — MPI-like collectives over threads-as-ranks
//!
//! The paper's system runs on MPI; its algorithms use exactly three
//! communication patterns: barriers, an all-gather of small metadata
//! (predicted ratios, overflow sizes), and independent I/O. This crate
//! provides those semantics with OS threads standing in for MPI ranks,
//! so the planner and write pipeline exercise the same code paths they
//! would under real MPI.
//!
//! ```
//! use commsim::run_world;
//!
//! let sums = run_world(4, |rk| {
//!     let all = rk.all_gather(rk.rank() as u64);
//!     all.iter().sum::<u64>()
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

pub mod barrier;
pub mod communicator;

pub use barrier::{Barrier, BarrierPoisoned};
pub use communicator::{run_world, Group, Rank, World, WorldPoisoned};
