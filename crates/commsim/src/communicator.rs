//! Threads-as-ranks communicator with MPI-style collectives.
//!
//! A [`World`] spawns `n` OS threads, each holding a [`Rank`] handle.
//! Collectives (barrier, all-gather, broadcast, gather, all-reduce)
//! are implemented over a shared slot table guarded by two barrier
//! phases: write → barrier → assemble → barrier → read. Point-to-point
//! messages use per-rank queues with tag matching.
//!
//! All-gather results are delivered as a shared `Arc<[T]>`: the world
//! vector is assembled exactly once (by the lowest participating rank)
//! and every rank receives a reference-counted handle to it, so the
//! memory cost of a collective is O(ranks · payload), not
//! O(ranks² · payload) — the difference between feasible and not at
//! 4096 ranks.
//!
//! [`Rank::split`] builds subgroup communicators (MPI
//! `MPI_Comm_split`): group-local collectives plus a small inter-group
//! exchange ([`Group::try_exchange`]) give two-level ("sharded")
//! reductions whose per-rank cost is O(group + n_groups) instead of
//! O(ranks). The poison protocol extends to subgroups: a rank that
//! fails anywhere unblocks every collective — world-level or in any
//! group — with a typed [`WorldPoisoned`] error.
//!
//! This reproduces the communication semantics the paper's design
//! needs (notably the all-gather of predicted compression ratios and
//! of overflow sizes) without an MPI installation.

use crate::barrier::{Barrier, BarrierPoisoned};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

type Payload = Box<dyn Any + Send>;

/// A collective was abandoned because some rank [`Rank::poison`]ed the
/// world: it hit a fatal error and will never participate again, so
/// waiting for it would deadlock the surviving ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldPoisoned;

impl std::fmt::Display for WorldPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "collective aborted: a peer rank failed")
    }
}

impl std::error::Error for WorldPoisoned {}

impl From<BarrierPoisoned> for WorldPoisoned {
    fn from(_: BarrierPoisoned) -> Self {
        WorldPoisoned
    }
}

/// A tagged point-to-point message.
struct Message {
    from: usize,
    tag: u64,
    payload: Payload,
}

/// Slot table + single-assembly result cell shared by one communicator
/// (the world, or one subgroup).
struct SlotTable {
    /// One slot per participant for collective exchanges.
    slots: Vec<Mutex<Option<Payload>>>,
    /// The assembled world vector of the in-flight collective.
    result: Mutex<Option<Payload>>,
}

impl SlotTable {
    fn new(n: usize) -> Self {
        SlotTable {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            result: Mutex::new(None),
        }
    }

    /// Assembler side of a gather: move every participant's payload
    /// out of its slot into one shared `Arc<[T]>` stored in `result`.
    /// Exactly one participant calls this, between the write barrier
    /// and the read barrier.
    fn assemble<T: Send + Sync + 'static>(&self) {
        let gathered: Vec<T> = self
            .slots
            .iter()
            .map(|slot| {
                *slot
                    .lock()
                    .take()
                    .expect("missing contribution")
                    .downcast::<T>()
                    .expect("type mismatch in all_gather")
            })
            .collect();
        let shared: Arc<[T]> = gathered.into();
        *self.result.lock() = Some(Box::new(shared));
    }

    /// Reader side: clone the shared handle assembled by
    /// [`SlotTable::assemble`]. Called by every participant after the
    /// read barrier; a later collective only overwrites `result` after
    /// all participants passed its own write barrier, which they can
    /// only do once they have taken this handle.
    fn shared_result<T: Send + Sync + 'static>(&self) -> Arc<[T]> {
        let guard = self.result.lock();
        Arc::clone(
            guard
                .as_ref()
                .expect("result not assembled")
                .downcast_ref::<Arc<[T]>>()
                .expect("type mismatch in all_gather result"),
        )
    }
}

/// Shared state of a world of ranks.
struct Shared {
    n: usize,
    barrier: Barrier,
    table: SlotTable,
    /// Barriers of every subgroup split off this world, so a poison
    /// reaches ranks blocked in group-local collectives too.
    subgroups: Mutex<Vec<Arc<Barrier>>>,
    /// Per-rank inbound message queues.
    inboxes: Vec<Mutex<VecDeque<Message>>>,
    /// Per-rank condvars to park receivers.
    inbox_cv: Vec<parking_lot::Condvar>,
}

/// A communicator world of `n` ranks.
pub struct World {
    shared: Arc<Shared>,
}

/// Per-thread handle: rank id plus access to the shared world.
pub struct Rank {
    rank: usize,
    shared: Arc<Shared>,
}

impl World {
    /// Create a world with `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "world must have at least one rank");
        let shared = Arc::new(Shared {
            n,
            barrier: Barrier::new(n),
            table: SlotTable::new(n),
            subgroups: Mutex::new(Vec::new()),
            inboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            inbox_cv: (0..n).map(|_| parking_lot::Condvar::new()).collect(),
        });
        World { shared }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Run `f` on every rank in its own thread, returning the per-rank
    /// results in rank order. Panics in any rank propagate.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Rank) -> T + Sync,
    {
        let shared = &self.shared;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..shared.n)
                .map(|r| {
                    let rank = Rank {
                        rank: r,
                        shared: Arc::clone(shared),
                    };
                    let f = &f;
                    s.spawn(move || {
                        let out = f(rank);
                        // Retire this rank's span buffer before the
                        // scope joins: `thread::scope` can observe the
                        // closure's completion before TLS destructors
                        // run, which would drop the rank's trace.
                        obs::trace::flush_thread();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

/// Run `f` over a fresh world of `n` ranks (convenience).
pub fn run_world<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Rank) -> T + Sync,
{
    World::new(n).run(f)
}

/// Shared state of one subgroup produced by [`Rank::split`].
struct GroupShared {
    /// World ranks of the members, ascending (index = group-local rank).
    members: Vec<usize>,
    barrier: Arc<Barrier>,
    table: SlotTable,
}

/// Shared state of one whole split: every subgroup plus the
/// inter-group exchange table (one slot per group).
struct SplitShared {
    /// Groups in ascending color order (index = dense group id).
    groups: Vec<Arc<GroupShared>>,
    /// One slot per group for leader-to-world exchanges.
    inter: SlotTable,
}

/// A subgroup communicator: this rank's view of one [`Rank::split`].
///
/// Group-local collectives ([`Group::try_barrier`],
/// [`Group::try_all_gather`]) involve only the group's members;
/// [`Group::try_exchange`] is the matching small inter-group
/// collective (every world rank participates, but only the `n_groups`
/// leader payloads travel). All of them honor the world's poison
/// protocol: any rank failing anywhere unblocks them with
/// [`WorldPoisoned`].
pub struct Group {
    world: Arc<Shared>,
    split: Arc<SplitShared>,
    shared: Arc<GroupShared>,
    /// Dense group id (ascending color order).
    gid: usize,
    /// This rank's index within the group.
    local: usize,
    /// This rank's world id.
    world_rank: usize,
}

impl Group {
    /// This rank's index within the group, in `[0, size)`.
    pub fn rank_in_group(&self) -> usize {
        self.local
    }

    /// Number of members in this group.
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// Dense id of this group (groups are numbered 0.. in ascending
    /// color order).
    pub fn group_id(&self) -> usize {
        self.gid
    }

    /// Number of groups in the split.
    pub fn n_groups(&self) -> usize {
        self.split.groups.len()
    }

    /// World ranks of the members, ascending.
    pub fn members(&self) -> &[usize] {
        &self.shared.members
    }

    /// This rank's world id.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Whether this rank is the group's leader (group-local rank 0,
    /// i.e. the member with the lowest world rank).
    pub fn is_leader(&self) -> bool {
        self.local == 0
    }

    /// Synchronize the group's members; unblocks with
    /// [`WorldPoisoned`] if any rank poisons the world.
    pub fn try_barrier(&self) -> Result<(), WorldPoisoned> {
        self.shared.barrier.wait_checked()?;
        Ok(())
    }

    /// Group-local all-gather: every member contributes `value`;
    /// returns the members' values in group-local rank order as one
    /// shared vector.
    pub fn try_all_gather<T: Clone + Send + Sync + 'static>(
        &self,
        value: T,
    ) -> Result<Arc<[T]>, WorldPoisoned> {
        *self.shared.table.slots[self.local].lock() = Some(Box::new(value));
        self.shared.barrier.wait_checked()?;
        if self.local == 0 {
            self.shared.table.assemble::<T>();
        }
        self.shared.barrier.wait_checked()?;
        Ok(self.shared.table.shared_result::<T>())
    }

    /// Inter-group exchange: each group's leader contributes `value`
    /// (`Some` required at group-local rank 0, ignored elsewhere);
    /// every rank of the world receives the per-group values in dense
    /// group-id order. This is the "small" collective of a two-level
    /// reduction: only `n_groups` payloads travel, however many ranks
    /// participate.
    ///
    /// All world ranks must call this (it synchronizes on the world
    /// barrier), like any other collective.
    pub fn try_exchange<T: Clone + Send + Sync + 'static>(
        &self,
        value: Option<T>,
    ) -> Result<Arc<[T]>, WorldPoisoned> {
        if self.local == 0 {
            let v = value.expect("group leader must supply a value");
            *self.split.inter.slots[self.gid].lock() = Some(Box::new(v));
        }
        self.world.barrier.wait_checked()?;
        if self.world_rank == 0 {
            self.split.inter.assemble::<T>();
        }
        self.world.barrier.wait_checked()?;
        Ok(self.split.inter.shared_result::<T>())
    }

    /// Two-level all-reduce: fold within the group (group-local rank
    /// order), exchange the group results, fold across groups (dense
    /// group-id order). Every rank receives the world-level reduction.
    ///
    /// For an associative, commutative `fold` (sums, min/max over
    /// integers) the result equals the flat
    /// `Rank::all_reduce`/all-gather reduction, at per-rank collective
    /// cost O(group_size + n_groups) instead of O(ranks).
    pub fn try_reduce_groups<T, F>(&self, value: T, fold: F) -> Result<T, WorldPoisoned>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        let local = self.try_all_gather(value)?;
        let mut it = local.iter().cloned();
        let first = it.next().expect("non-empty group");
        let group_total = it.fold(first, &fold);
        let merged = self.try_exchange(self.is_leader().then(|| group_total.clone()))?;
        let mut it = merged.iter().cloned();
        let first = it.next().expect("non-empty split");
        Ok(it.fold(first, &fold))
    }
}

impl Rank {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Mark this world as failed: every rank currently blocked in a
    /// collective — world-level or in any subgroup split off this
    /// world — and every future collective attempt through the `try_*`
    /// variants unblocks with [`WorldPoisoned`] instead of waiting
    /// forever for this rank. Call before abandoning the rank closure
    /// on an error path. Idempotent.
    pub fn poison(&self) {
        self.shared.barrier.poison();
        for b in self.shared.subgroups.lock().iter() {
            b.poison();
        }
    }

    /// Whether some rank has poisoned the world.
    pub fn is_poisoned(&self) -> bool {
        self.shared.barrier.is_poisoned()
    }

    /// Fallible [`Rank::barrier`]: unblocks with [`WorldPoisoned`] if
    /// a peer poisons the world instead of arriving.
    pub fn try_barrier(&self) -> Result<(), WorldPoisoned> {
        self.shared.barrier.wait_checked()?;
        Ok(())
    }

    /// Split the world into subgroup communicators by `color` (MPI
    /// `MPI_Comm_split`): ranks passing the same color land in the
    /// same group, ordered by world rank. Collective over the world.
    ///
    /// The returned [`Group`]'s collectives share the world's poison
    /// protocol: a rank that fails and poisons the world releases
    /// members blocked in any group of any split.
    pub fn split(&self, color: usize) -> Result<Group, WorldPoisoned> {
        let colors = self.try_all_gather(color)?;
        // Rank 0 builds the shared split state and publishes it
        // through its own slot; everyone derives the same dense group
        // ids from the identical gathered colors.
        if self.rank == 0 {
            let mut distinct: Vec<usize> = colors.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            let groups: Vec<Arc<GroupShared>> = distinct
                .iter()
                .map(|&c| {
                    let members: Vec<usize> =
                        (0..self.shared.n).filter(|&r| colors[r] == c).collect();
                    let barrier = Arc::new(Barrier::new(members.len()));
                    // Register before any rank can use it, so a poison
                    // arriving at any time reaches this barrier.
                    self.shared.subgroups.lock().push(Arc::clone(&barrier));
                    Arc::new(GroupShared {
                        table: SlotTable::new(members.len()),
                        members,
                        barrier,
                    })
                })
                .collect();
            let split = Arc::new(SplitShared {
                inter: SlotTable::new(groups.len()),
                groups,
            });
            *self.shared.table.slots[0].lock() = Some(Box::new(split));
        }
        self.shared.barrier.wait_checked()?;
        let split = {
            let slot = self.shared.table.slots[0].lock();
            Arc::clone(
                slot.as_ref()
                    .expect("split state missing")
                    .downcast_ref::<Arc<SplitShared>>()
                    .expect("type mismatch in split"),
            )
        };
        self.shared.barrier.wait_checked()?;
        let gid = split
            .groups
            .iter()
            .position(|g| g.members.contains(&self.rank))
            .expect("every rank belongs to a group");
        let shared = Arc::clone(&split.groups[gid]);
        let local = shared
            .members
            .iter()
            .position(|&m| m == self.rank)
            .expect("member list contains self");
        Ok(Group {
            world: Arc::clone(&self.shared),
            split,
            shared,
            gid,
            local,
            world_rank: self.rank,
        })
    }

    /// Fallible [`Rank::all_gather`]: unblocks with [`WorldPoisoned`]
    /// if a peer poisons the world instead of contributing.
    pub fn try_all_gather<T: Clone + Send + Sync + 'static>(
        &self,
        value: T,
    ) -> Result<Arc<[T]>, WorldPoisoned> {
        *self.shared.table.slots[self.rank].lock() = Some(Box::new(value));
        self.shared.barrier.wait_checked()?;
        if self.rank == 0 {
            self.shared.table.assemble::<T>();
        }
        self.shared.barrier.wait_checked()?;
        Ok(self.shared.table.shared_result::<T>())
    }

    /// All-gather: every rank contributes `value`; returns the values
    /// of all ranks in rank order as one shared vector — assembled
    /// once, handed to every rank by reference, so collective memory
    /// is O(ranks · payload) however many ranks receive it. (The
    /// paper's phase-2 step: gathering predicted compression ratios of
    /// every partition.)
    pub fn all_gather<T: Clone + Send + Sync + 'static>(&self, value: T) -> Arc<[T]> {
        *self.shared.table.slots[self.rank].lock() = Some(Box::new(value));
        self.shared.barrier.wait();
        if self.rank == 0 {
            self.shared.table.assemble::<T>();
        }
        self.shared.barrier.wait();
        self.shared.table.shared_result::<T>()
    }

    /// Broadcast `value` from `root` to all ranks.
    pub fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        if self.rank == root {
            *self.shared.table.slots[root].lock() =
                Some(Box::new(value.expect("root must supply a value")));
        }
        self.shared.barrier.wait();
        let out = {
            let slot = self.shared.table.slots[root].lock();
            slot.as_ref()
                .expect("root slot empty")
                .downcast_ref::<T>()
                .expect("type mismatch in broadcast")
                .clone()
        };
        self.shared.barrier.wait();
        out
    }

    /// Gather values at `root`; non-root ranks receive `None`.
    pub fn gather<T: Clone + Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        *self.shared.table.slots[self.rank].lock() = Some(Box::new(value));
        self.shared.barrier.wait();
        let out = if self.rank == root {
            Some(
                (0..self.shared.n)
                    .map(|r| {
                        let slot = self.shared.table.slots[r].lock();
                        slot.as_ref()
                            .expect("missing contribution")
                            .downcast_ref::<T>()
                            .expect("type mismatch in gather")
                            .clone()
                    })
                    .collect(),
            )
        } else {
            None
        };
        self.shared.barrier.wait();
        out
    }

    /// All-reduce with a binary fold.
    pub fn all_reduce<T, F>(&self, value: T, fold: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        let all = self.all_gather(value);
        let mut it = all.iter().cloned();
        let first = it.next().expect("non-empty world");
        it.fold(first, fold)
    }

    /// Send `value` to rank `to` with `tag` (non-blocking, unbounded).
    pub fn send<T: Send + 'static>(&self, to: usize, tag: u64, value: T) {
        let msg = Message {
            from: self.rank,
            tag,
            payload: Box::new(value),
        };
        self.shared.inboxes[to].lock().push_back(msg);
        self.shared.inbox_cv[to].notify_all();
    }

    /// Receive a message matching `from`/`tag` (blocking).
    pub fn recv<T: Send + 'static>(&self, from: usize, tag: u64) -> T {
        let mut inbox = self.shared.inboxes[self.rank].lock();
        loop {
            if let Some(pos) = inbox.iter().position(|m| m.from == from && m.tag == tag) {
                let msg = inbox.remove(pos).unwrap();
                return *msg
                    .payload
                    .downcast::<T>()
                    .unwrap_or_else(|_| panic!("type mismatch in recv tag {tag}"));
            }
            self.shared.inbox_cv[self.rank].wait(&mut inbox);
        }
    }

    /// Non-blocking receive; `None` when no matching message is queued.
    pub fn try_recv<T: Send + 'static>(&self, from: usize, tag: u64) -> Option<T> {
        let mut inbox = self.shared.inboxes[self.rank].lock();
        let pos = inbox.iter().position(|m| m.from == from && m.tag == tag)?;
        let msg = inbox.remove(pos).unwrap();
        Some(
            *msg.payload
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("type mismatch in try_recv tag {tag}")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_world_unblocks_collectives() {
        let out = run_world(4, |rk| {
            if rk.rank() == 3 {
                // Simulate a rank dying before its collective: give
                // the peers time to park, then poison and bail.
                std::thread::sleep(std::time::Duration::from_millis(20));
                rk.poison();
                Err("rank 3 failed".to_string())
            } else {
                rk.try_all_gather(rk.rank())
                    .map(|v| v.len())
                    .map_err(|e| e.to_string())
            }
        });
        assert_eq!(out[3], Err("rank 3 failed".to_string()));
        for survivor in &out[..3] {
            assert_eq!(
                *survivor,
                Err("collective aborted: a peer rank failed".to_string())
            );
        }
    }

    #[test]
    fn try_collectives_match_infallible_on_healthy_world() {
        run_world(4, |rk| {
            let v = rk.try_all_gather(rk.rank() * 2).unwrap();
            assert_eq!(&v[..], &[0, 2, 4, 6]);
            rk.try_barrier().unwrap();
            assert!(!rk.is_poisoned());
        });
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let out = run_world(6, |rk| {
            let v = rk.all_gather(rk.rank() * 10);
            assert_eq!(&v[..], &[0, 10, 20, 30, 40, 50]);
            v[rk.rank()]
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn all_gather_shares_one_allocation() {
        // The delivered world vector must be one shared allocation,
        // not a per-rank clone: every rank's handle points at the same
        // slice.
        let ptrs = run_world(4, |rk| {
            let v = rk.all_gather(rk.rank() as u64);
            let p = v.as_ptr() as usize;
            rk.barrier(); // keep every handle alive until all read ptr
            p
        });
        assert!(ptrs.iter().all(|&p| p == ptrs[0]), "ptrs {ptrs:?}");
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        run_world(4, |rk| {
            for round in 0..20usize {
                let v = rk.all_gather(rk.rank() + round * 100);
                for (r, &x) in v.iter().enumerate() {
                    assert_eq!(x, r + round * 100);
                }
            }
        });
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        run_world(5, |rk| {
            let got = rk.broadcast(3, (rk.rank() == 3).then(|| "hello".to_string()));
            assert_eq!(got, "hello");
        });
    }

    #[test]
    fn gather_only_at_root() {
        run_world(4, |rk| {
            let got = rk.gather(0, rk.rank() as u64);
            if rk.rank() == 0 {
                assert_eq!(got.unwrap(), vec![0, 1, 2, 3]);
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn all_reduce_sum() {
        run_world(8, |rk| {
            let s = rk.all_reduce(rk.rank() as u64 + 1, |a, b| a + b);
            assert_eq!(s, 36);
        });
    }

    #[test]
    fn send_recv_tagged() {
        run_world(2, |rk| {
            if rk.rank() == 0 {
                rk.send(1, 7, vec![1u8, 2, 3]);
                rk.send(1, 8, 99u32);
            } else {
                // Receive out of order: tag 8 first.
                let b: u32 = rk.recv(0, 8);
                assert_eq!(b, 99);
                let a: Vec<u8> = rk.recv(0, 7);
                assert_eq!(a, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        run_world(2, |rk| {
            if rk.rank() == 1 {
                assert!(rk.try_recv::<u32>(0, 1).is_none());
            }
            rk.barrier();
            if rk.rank() == 0 {
                rk.send(1, 1, 5u32);
            }
            rk.barrier();
            if rk.rank() == 1 {
                assert_eq!(rk.try_recv::<u32>(0, 1), Some(5));
            }
        });
    }

    #[test]
    fn ring_pass() {
        let n = 6;
        let out = run_world(n, |rk| {
            let next = (rk.rank() + 1) % n;
            let prev = (rk.rank() + n - 1) % n;
            rk.send(next, 0, rk.rank());
            let got: usize = rk.recv(prev, 0);
            got
        });
        for (r, &got) in out.iter().enumerate() {
            assert_eq!(got, (r + n - 1) % n);
        }
    }

    #[test]
    fn many_ranks_stress() {
        // 64 threads exchanging collectives repeatedly.
        run_world(64, |rk| {
            for _ in 0..5 {
                let v = rk.all_gather(1u64);
                assert_eq!(v.iter().sum::<u64>(), 64);
            }
        });
    }

    #[test]
    fn split_contiguous_groups() {
        run_world(8, |rk| {
            let g = rk.split(rk.rank() / 3).unwrap(); // groups {0,1,2} {3,4,5} {6,7}
            assert_eq!(g.n_groups(), 3);
            assert_eq!(g.group_id(), rk.rank() / 3);
            assert_eq!(g.rank_in_group(), rk.rank() % 3);
            assert_eq!(g.size(), if rk.rank() < 6 { 3 } else { 2 });
            assert_eq!(g.is_leader(), rk.rank() % 3 == 0);
            let local = g.try_all_gather(rk.rank() as u64).unwrap();
            let base = (rk.rank() / 3 * 3) as u64;
            let want: Vec<u64> = (0..g.size() as u64).map(|i| base + i).collect();
            assert_eq!(&local[..], &want[..]);
        });
    }

    #[test]
    fn split_non_contiguous_colors() {
        // Odd/even split with arbitrary (non-dense) colors: dense ids
        // follow ascending color order.
        run_world(6, |rk| {
            let color = if rk.rank() % 2 == 0 { 77 } else { 13 };
            let g = rk.split(color).unwrap();
            assert_eq!(g.n_groups(), 2);
            // Color 13 (odd ranks) gets dense id 0.
            let want_gid = if rk.rank() % 2 == 0 { 1 } else { 0 };
            assert_eq!(g.group_id(), want_gid);
            let members = g.members().to_vec();
            let want: Vec<usize> = (0..6).filter(|r| r % 2 == rk.rank() % 2).collect();
            assert_eq!(members, want);
        });
    }

    #[test]
    fn exchange_delivers_group_leader_values() {
        run_world(8, |rk| {
            let g = rk.split(rk.rank() / 4).unwrap();
            let leader_value = g.is_leader().then(|| g.group_id() as u64 * 100);
            let merged = g.try_exchange(leader_value).unwrap();
            assert_eq!(&merged[..], &[0, 100]);
        });
    }

    #[test]
    fn reduce_groups_matches_flat_reduction() {
        run_world(9, |rk| {
            let g = rk.split(rk.rank() / 2).unwrap();
            let two_level = g
                .try_reduce_groups(rk.rank() as u64 + 1, |a, b| a + b)
                .unwrap();
            assert_eq!(two_level, (1..=9).sum::<u64>());
        });
    }

    #[test]
    fn groups_interleave_with_world_collectives() {
        run_world(8, |rk| {
            let g = rk.split(rk.rank() % 2).unwrap();
            for round in 0..5u64 {
                let local = g.try_all_gather(round).unwrap();
                assert!(local.iter().all(|&v| v == round));
                let world = rk.try_all_gather(round).unwrap();
                assert_eq!(world.len(), 8);
                g.try_barrier().unwrap();
            }
        });
    }

    #[test]
    fn poison_reaches_subgroup_collectives() {
        // One rank of one group fails; members of *other* groups
        // blocked in their group-local collectives must unblock with
        // the typed error, not deadlock.
        let out = run_world(6, |rk| {
            let g = rk.split(rk.rank() / 3).map_err(|e| e.to_string())?;
            if rk.rank() == 5 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                rk.poison();
                return Err("rank 5 failed".to_string());
            }
            g.try_all_gather(rk.rank()).map_err(|e| e.to_string())?;
            // Group 0's gather (ranks 0-2) completes — rank 5 is not a
            // member — but the next world-spanning exchange cannot.
            g.try_exchange(g.is_leader().then_some(0u64))
                .map(|v| v.len())
                .map_err(|e| e.to_string())
        });
        assert_eq!(out[5], Err("rank 5 failed".to_string()));
        let poisoned = WorldPoisoned.to_string();
        for (r, o) in out.iter().enumerate().take(5) {
            assert_eq!(*o, Err(poisoned.clone()), "rank {r}");
        }
    }
}
