//! Threads-as-ranks communicator with MPI-style collectives.
//!
//! A [`World`] spawns `n` OS threads, each holding a [`Rank`] handle.
//! Collectives (barrier, all-gather, broadcast, gather, all-reduce)
//! are implemented over a shared slot table guarded by two barrier
//! phases: write → barrier → read → barrier. Point-to-point messages
//! use per-rank queues with tag matching.
//!
//! This reproduces the communication semantics the paper's design
//! needs (notably the all-gather of predicted compression ratios and
//! of overflow sizes) without an MPI installation.

use crate::barrier::{Barrier, BarrierPoisoned};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

type Payload = Box<dyn Any + Send>;

/// A collective was abandoned because some rank [`Rank::poison`]ed the
/// world: it hit a fatal error and will never participate again, so
/// waiting for it would deadlock the surviving ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldPoisoned;

impl std::fmt::Display for WorldPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "collective aborted: a peer rank failed")
    }
}

impl std::error::Error for WorldPoisoned {}

impl From<BarrierPoisoned> for WorldPoisoned {
    fn from(_: BarrierPoisoned) -> Self {
        WorldPoisoned
    }
}

/// A tagged point-to-point message.
struct Message {
    from: usize,
    tag: u64,
    payload: Payload,
}

/// Shared state of a world of ranks.
struct Shared {
    n: usize,
    barrier: Barrier,
    /// One slot per rank for collective exchanges.
    slots: Vec<Mutex<Option<Payload>>>,
    /// Per-rank inbound message queues.
    inboxes: Vec<Mutex<VecDeque<Message>>>,
    /// Per-rank condvars to park receivers.
    inbox_cv: Vec<parking_lot::Condvar>,
}

/// A communicator world of `n` ranks.
pub struct World {
    shared: Arc<Shared>,
}

/// Per-thread handle: rank id plus access to the shared world.
pub struct Rank {
    rank: usize,
    shared: Arc<Shared>,
}

impl World {
    /// Create a world with `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "world must have at least one rank");
        let shared = Arc::new(Shared {
            n,
            barrier: Barrier::new(n),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            inboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            inbox_cv: (0..n).map(|_| parking_lot::Condvar::new()).collect(),
        });
        World { shared }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Run `f` on every rank in its own thread, returning the per-rank
    /// results in rank order. Panics in any rank propagate.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Rank) -> T + Sync,
    {
        let shared = &self.shared;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..shared.n)
                .map(|r| {
                    let rank = Rank {
                        rank: r,
                        shared: Arc::clone(shared),
                    };
                    let f = &f;
                    s.spawn(move || f(rank))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

/// Run `f` over a fresh world of `n` ranks (convenience).
pub fn run_world<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Rank) -> T + Sync,
{
    World::new(n).run(f)
}

impl Rank {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.shared.n
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Mark this world as failed: every rank currently blocked in a
    /// collective (and every future collective attempt through the
    /// `try_*` variants) unblocks with [`WorldPoisoned`] instead of
    /// waiting forever for this rank. Call before abandoning the rank
    /// closure on an error path. Idempotent.
    pub fn poison(&self) {
        self.shared.barrier.poison();
    }

    /// Whether some rank has poisoned the world.
    pub fn is_poisoned(&self) -> bool {
        self.shared.barrier.is_poisoned()
    }

    /// Fallible [`Rank::barrier`]: unblocks with [`WorldPoisoned`] if
    /// a peer poisons the world instead of arriving.
    pub fn try_barrier(&self) -> Result<(), WorldPoisoned> {
        self.shared.barrier.wait_checked()?;
        Ok(())
    }

    /// Fallible [`Rank::all_gather`]: unblocks with [`WorldPoisoned`]
    /// if a peer poisons the world instead of contributing.
    pub fn try_all_gather<T: Clone + Send + 'static>(
        &self,
        value: T,
    ) -> Result<Vec<T>, WorldPoisoned> {
        *self.shared.slots[self.rank].lock() = Some(Box::new(value));
        self.shared.barrier.wait_checked()?;
        let out: Vec<T> = (0..self.shared.n)
            .map(|r| {
                let slot = self.shared.slots[r].lock();
                slot.as_ref()
                    .expect("missing contribution")
                    .downcast_ref::<T>()
                    .expect("type mismatch in try_all_gather")
                    .clone()
            })
            .collect();
        self.shared.barrier.wait_checked()?;
        Ok(out)
    }

    /// All-gather: every rank contributes `value`; returns the values
    /// of all ranks in rank order. (The paper's phase-2 step: gathering
    /// predicted compression ratios of every partition.)
    pub fn all_gather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        *self.shared.slots[self.rank].lock() = Some(Box::new(value));
        self.shared.barrier.wait();
        let out: Vec<T> = (0..self.shared.n)
            .map(|r| {
                let slot = self.shared.slots[r].lock();
                slot.as_ref()
                    .expect("missing contribution")
                    .downcast_ref::<T>()
                    .expect("type mismatch in all_gather")
                    .clone()
            })
            .collect();
        self.shared.barrier.wait();
        out
    }

    /// Broadcast `value` from `root` to all ranks.
    pub fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        if self.rank == root {
            *self.shared.slots[root].lock() =
                Some(Box::new(value.expect("root must supply a value")));
        }
        self.shared.barrier.wait();
        let out = {
            let slot = self.shared.slots[root].lock();
            slot.as_ref()
                .expect("root slot empty")
                .downcast_ref::<T>()
                .expect("type mismatch in broadcast")
                .clone()
        };
        self.shared.barrier.wait();
        out
    }

    /// Gather values at `root`; non-root ranks receive `None`.
    pub fn gather<T: Clone + Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        *self.shared.slots[self.rank].lock() = Some(Box::new(value));
        self.shared.barrier.wait();
        let out = if self.rank == root {
            Some(
                (0..self.shared.n)
                    .map(|r| {
                        let slot = self.shared.slots[r].lock();
                        slot.as_ref()
                            .expect("missing contribution")
                            .downcast_ref::<T>()
                            .expect("type mismatch in gather")
                            .clone()
                    })
                    .collect(),
            )
        } else {
            None
        };
        self.shared.barrier.wait();
        out
    }

    /// All-reduce with a binary fold.
    pub fn all_reduce<T, F>(&self, value: T, fold: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let all = self.all_gather(value);
        let mut it = all.into_iter();
        let first = it.next().expect("non-empty world");
        it.fold(first, fold)
    }

    /// Send `value` to rank `to` with `tag` (non-blocking, unbounded).
    pub fn send<T: Send + 'static>(&self, to: usize, tag: u64, value: T) {
        let msg = Message {
            from: self.rank,
            tag,
            payload: Box::new(value),
        };
        self.shared.inboxes[to].lock().push_back(msg);
        self.shared.inbox_cv[to].notify_all();
    }

    /// Receive a message matching `from`/`tag` (blocking).
    pub fn recv<T: Send + 'static>(&self, from: usize, tag: u64) -> T {
        let mut inbox = self.shared.inboxes[self.rank].lock();
        loop {
            if let Some(pos) = inbox.iter().position(|m| m.from == from && m.tag == tag) {
                let msg = inbox.remove(pos).unwrap();
                return *msg
                    .payload
                    .downcast::<T>()
                    .unwrap_or_else(|_| panic!("type mismatch in recv tag {tag}"));
            }
            self.shared.inbox_cv[self.rank].wait(&mut inbox);
        }
    }

    /// Non-blocking receive; `None` when no matching message is queued.
    pub fn try_recv<T: Send + 'static>(&self, from: usize, tag: u64) -> Option<T> {
        let mut inbox = self.shared.inboxes[self.rank].lock();
        let pos = inbox.iter().position(|m| m.from == from && m.tag == tag)?;
        let msg = inbox.remove(pos).unwrap();
        Some(
            *msg.payload
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("type mismatch in try_recv tag {tag}")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_world_unblocks_collectives() {
        let out = run_world(4, |rk| {
            if rk.rank() == 3 {
                // Simulate a rank dying before its collective: give
                // the peers time to park, then poison and bail.
                std::thread::sleep(std::time::Duration::from_millis(20));
                rk.poison();
                Err("rank 3 failed".to_string())
            } else {
                rk.try_all_gather(rk.rank())
                    .map(|v| v.len())
                    .map_err(|e| e.to_string())
            }
        });
        assert_eq!(out[3], Err("rank 3 failed".to_string()));
        for survivor in &out[..3] {
            assert_eq!(
                *survivor,
                Err("collective aborted: a peer rank failed".to_string())
            );
        }
    }

    #[test]
    fn try_collectives_match_infallible_on_healthy_world() {
        run_world(4, |rk| {
            let v = rk.try_all_gather(rk.rank() * 2).unwrap();
            assert_eq!(v, vec![0, 2, 4, 6]);
            rk.try_barrier().unwrap();
            assert!(!rk.is_poisoned());
        });
    }

    #[test]
    fn all_gather_orders_by_rank() {
        let out = run_world(6, |rk| {
            let v = rk.all_gather(rk.rank() * 10);
            assert_eq!(v, vec![0, 10, 20, 30, 40, 50]);
            v[rk.rank()]
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        run_world(4, |rk| {
            for round in 0..20usize {
                let v = rk.all_gather(rk.rank() + round * 100);
                for (r, &x) in v.iter().enumerate() {
                    assert_eq!(x, r + round * 100);
                }
            }
        });
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        run_world(5, |rk| {
            let got = rk.broadcast(3, (rk.rank() == 3).then(|| "hello".to_string()));
            assert_eq!(got, "hello");
        });
    }

    #[test]
    fn gather_only_at_root() {
        run_world(4, |rk| {
            let got = rk.gather(0, rk.rank() as u64);
            if rk.rank() == 0 {
                assert_eq!(got.unwrap(), vec![0, 1, 2, 3]);
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn all_reduce_sum() {
        run_world(8, |rk| {
            let s = rk.all_reduce(rk.rank() as u64 + 1, |a, b| a + b);
            assert_eq!(s, 36);
        });
    }

    #[test]
    fn send_recv_tagged() {
        run_world(2, |rk| {
            if rk.rank() == 0 {
                rk.send(1, 7, vec![1u8, 2, 3]);
                rk.send(1, 8, 99u32);
            } else {
                // Receive out of order: tag 8 first.
                let b: u32 = rk.recv(0, 8);
                assert_eq!(b, 99);
                let a: Vec<u8> = rk.recv(0, 7);
                assert_eq!(a, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        run_world(2, |rk| {
            if rk.rank() == 1 {
                assert!(rk.try_recv::<u32>(0, 1).is_none());
            }
            rk.barrier();
            if rk.rank() == 0 {
                rk.send(1, 1, 5u32);
            }
            rk.barrier();
            if rk.rank() == 1 {
                assert_eq!(rk.try_recv::<u32>(0, 1), Some(5));
            }
        });
    }

    #[test]
    fn ring_pass() {
        let n = 6;
        let out = run_world(n, |rk| {
            let next = (rk.rank() + 1) % n;
            let prev = (rk.rank() + n - 1) % n;
            rk.send(next, 0, rk.rank());
            let got: usize = rk.recv(prev, 0);
            got
        });
        for (r, &got) in out.iter().enumerate() {
            assert_eq!(got, (r + n - 1) % n);
        }
    }

    #[test]
    fn many_ranks_stress() {
        // 64 threads exchanging collectives repeatedly.
        run_world(64, |rk| {
            for _ in 0..5 {
                let v = rk.all_gather(1u64);
                assert_eq!(v.iter().sum::<u64>(), 64);
            }
        });
    }
}
