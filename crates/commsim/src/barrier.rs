//! Generation-counted reusable barrier.
//!
//! `std::sync::Barrier` works, but a generation-counted condvar barrier
//! (the construction from *Rust Atomics and Locks*, ch. 9) lets us
//! expose wait generations for debugging and keeps all synchronization
//! primitives in one auditable place.

use parking_lot::{Condvar, Mutex};

#[derive(Debug)]
struct State {
    /// Threads still expected in the current generation.
    remaining: usize,
    /// Completed generations.
    generation: u64,
}

/// A reusable barrier for a fixed number of participants.
#[derive(Debug)]
pub struct Barrier {
    n: usize,
    state: Mutex<State>,
    cvar: Condvar,
}

impl Barrier {
    /// Barrier for `n` participants (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Barrier {
            n,
            state: Mutex::new(State {
                remaining: n,
                generation: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Block until all `n` participants have called `wait`.
    /// Returns the generation index that was completed.
    pub fn wait(&self) -> u64 {
        let mut st = self.state.lock();
        let gen = st.generation;
        st.remaining -= 1;
        if st.remaining == 0 {
            st.remaining = self.n;
            st.generation += 1;
            self.cvar.notify_all();
            gen
        } else {
            while st.generation == gen {
                self.cvar.wait(&mut st);
            }
            gen
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        assert_eq!(b.wait(), 0);
        assert_eq!(b.wait(), 1);
    }

    #[test]
    fn synchronizes_phases() {
        let n = 8;
        let b = Arc::new(Barrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    for phase in 0..50usize {
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier every increment of this
                        // phase must be visible.
                        assert!(c.load(Ordering::SeqCst) >= (phase + 1) * n);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50 * n);
    }

    #[test]
    fn generations_advance() {
        let b = Arc::new(Barrier::new(2));
        std::thread::scope(|s| {
            let b2 = Arc::clone(&b);
            s.spawn(move || {
                assert_eq!(b2.wait(), 0);
                assert_eq!(b2.wait(), 1);
            });
            assert_eq!(b.wait(), 0);
            assert_eq!(b.wait(), 1);
        });
    }
}
