//! Generation-counted reusable barrier.
//!
//! `std::sync::Barrier` works, but a generation-counted condvar barrier
//! (the construction from *Rust Atomics and Locks*, ch. 9) lets us
//! expose wait generations for debugging and keeps all synchronization
//! primitives in one auditable place.

use parking_lot::{Condvar, Mutex};
use std::sync::OnceLock;
use std::time::Instant;

/// Wait-time histogram shared by every barrier in the process; the
/// handle is cached so the record path stays two clock reads plus a
/// few relaxed atomics.
fn wait_hist() -> &'static obs::Histogram {
    static H: OnceLock<&'static obs::Histogram> = OnceLock::new();
    H.get_or_init(|| obs::histogram("comm.barrier_wait_ns"))
}

/// A collective was abandoned because a participant poisoned the
/// barrier (it hit a fatal error and can never arrive). Waiters must
/// unwind instead of blocking forever on the missing participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "barrier poisoned: a participant failed")
    }
}

impl std::error::Error for BarrierPoisoned {}

#[derive(Debug)]
struct State {
    /// Threads still expected in the current generation.
    remaining: usize,
    /// Completed generations.
    generation: u64,
    /// Sticky flag: a participant died and will never arrive.
    poisoned: bool,
}

/// A reusable barrier for a fixed number of participants.
#[derive(Debug)]
pub struct Barrier {
    n: usize,
    state: Mutex<State>,
    cvar: Condvar,
}

impl Barrier {
    /// Barrier for `n` participants (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Barrier {
            n,
            state: Mutex::new(State {
                remaining: n,
                generation: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Block until all `n` participants have called `wait`.
    /// Returns the generation index that was completed.
    ///
    /// Panics if the barrier is (or becomes) poisoned; callers that
    /// can observe a poisoned world should use [`Barrier::wait_checked`].
    pub fn wait(&self) -> u64 {
        self.wait_checked()
            .expect("collective on a poisoned world; use wait_checked on fallible paths")
    }

    /// Block until all `n` participants have called `wait_checked`, or
    /// until the barrier is poisoned — whichever happens first.
    ///
    /// A generation that completed before the poison still reports
    /// `Ok`: every participant arrived, so the exchanged data is whole.
    pub fn wait_checked(&self) -> Result<u64, BarrierPoisoned> {
        let t0 = Instant::now();
        let out = self.wait_checked_inner();
        wait_hist().record(t0.elapsed().as_nanos() as u64);
        out
    }

    fn wait_checked_inner(&self) -> Result<u64, BarrierPoisoned> {
        let mut st = self.state.lock();
        if st.poisoned {
            return Err(BarrierPoisoned);
        }
        let gen = st.generation;
        st.remaining -= 1;
        if st.remaining == 0 {
            st.remaining = self.n;
            st.generation += 1;
            self.cvar.notify_all();
            Ok(gen)
        } else {
            while st.generation == gen && !st.poisoned {
                self.cvar.wait(&mut st);
            }
            if st.generation == gen {
                // Poisoned before the last participant arrived.
                Err(BarrierPoisoned)
            } else {
                Ok(gen)
            }
        }
    }

    /// Mark the barrier as permanently failed and release every
    /// current and future waiter with [`BarrierPoisoned`]. Called by a
    /// participant that hit a fatal error and will never arrive again.
    /// Idempotent.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cvar.notify_all();
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        assert_eq!(b.wait(), 0);
        assert_eq!(b.wait(), 1);
    }

    #[test]
    fn synchronizes_phases() {
        let n = 8;
        let b = Arc::new(Barrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let b = Arc::clone(&b);
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    for phase in 0..50usize {
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier every increment of this
                        // phase must be visible.
                        assert!(c.load(Ordering::SeqCst) >= (phase + 1) * n);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50 * n);
    }

    #[test]
    fn poison_releases_blocked_waiters() {
        let b = Arc::new(Barrier::new(3));
        std::thread::scope(|s| {
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait_checked())
                })
                .collect();
            // Give the two waiters time to park, then poison instead
            // of arriving as the third participant.
            std::thread::sleep(std::time::Duration::from_millis(20));
            b.poison();
            for w in waiters {
                assert_eq!(w.join().unwrap(), Err(BarrierPoisoned));
            }
        });
        assert!(b.is_poisoned());
        // Poison is sticky: later arrivals fail immediately.
        assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
    }

    #[test]
    fn completed_generation_reports_ok_despite_later_poison() {
        let b = Barrier::new(1);
        assert_eq!(b.wait_checked(), Ok(0));
        b.poison();
        assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn infallible_wait_panics_on_poison() {
        let b = Barrier::new(2);
        b.poison();
        b.wait();
    }

    #[test]
    fn generations_advance() {
        let b = Arc::new(Barrier::new(2));
        std::thread::scope(|s| {
            let b2 = Arc::clone(&b);
            s.spawn(move || {
                assert_eq!(b2.wait(), 0);
                assert_eq!(b2.wait(), 1);
            });
            assert_eq!(b.wait(), 0);
            assert_eq!(b.wait(), 1);
        });
    }
}
