//! Write-time model — the paper's Eq. (2).
//!
//! `Twrite = B·n / Cthr`: compressed bits over a stable per-process
//! write throughput, fitted offline by writing a few request sizes from
//! a fixed process count and taking the plateau throughput. The paper
//! argues (§III-C) that high accuracy is unnecessary — mispredictions
//! shift all of a process's writes equally, leaving the *ordering*
//! decisions unchanged — so a single scalar suffices.

/// Fitted stable write throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteTimeModel {
    /// Stable per-process write throughput, bytes/s (`Cthr`).
    pub cthr: f64,
}

impl WriteTimeModel {
    /// Build from a known throughput.
    pub fn new(cthr: f64) -> Self {
        assert!(cthr > 0.0);
        WriteTimeModel { cthr }
    }

    /// Eq. (2): predicted write time for `n` points at compressed
    /// bit-rate `b` (bits/value).
    pub fn write_time(&self, b: f64, n: usize) -> f64 {
        (b * n as f64 / 8.0) / self.cthr
    }

    /// Predicted write time for an absolute byte count.
    pub fn write_time_bytes(&self, bytes: f64) -> f64 {
        bytes / self.cthr
    }
}

/// Fit `Cthr` from offline `(request_bytes, seconds)` measurements:
/// the byte-weighted mean throughput of the large-request half, which
/// discards the latency-dominated small-request regime (their Fig. 7
/// ramp-up).
pub fn fit(measurements: &[(f64, f64)]) -> WriteTimeModel {
    assert!(!measurements.is_empty());
    let mut sizes: Vec<f64> = measurements.iter().map(|&(s, _)| s).collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sizes[sizes.len() / 2];
    let (mut bytes, mut secs) = (0.0, 0.0);
    for &(s, t) in measurements {
        if s >= median && t > 0.0 {
            bytes += s;
            secs += t;
        }
    }
    if secs <= 0.0 {
        // Degenerate input: fall back to the overall mean.
        bytes = measurements.iter().map(|&(s, _)| s).sum();
        secs = measurements.iter().map(|&(_, t)| t).sum::<f64>().max(1e-12);
    }
    WriteTimeModel::new(bytes / secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_matches_definition() {
        let m = WriteTimeModel::new(100e6);
        // 2 bits/value × 400 M values = 100 MB → 1 s at 100 MB/s.
        let t = m.write_time(2.0, 400_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_uses_plateau() {
        // Small requests at 10 MB/s (latency-bound), large at 100 MB/s.
        let meas = vec![
            (1e6, 0.1),
            (2e6, 0.2),
            (50e6, 0.5),
            (100e6, 1.0),
            (200e6, 2.0),
        ];
        let m = fit(&meas);
        assert!(m.cthr > 80e6, "cthr {}", m.cthr);
    }

    #[test]
    fn write_time_linear_in_bytes() {
        let m = WriteTimeModel::new(50e6);
        assert!((m.write_time_bytes(100e6) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        fit(&[]);
    }
}
