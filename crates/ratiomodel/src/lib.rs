//! # ratiomodel — predictive models for compression and write
//!
//! The analytical models at the heart of the paper:
//!
//! * [`ratio`] — sampling-based **compression-ratio prediction**
//!   (Jin et al. \[25\]): predicted compressed size per partition
//!   *before* compressing, enabling offset pre-computation.
//! * [`throughput`] — **Eq. (1)**: single-core compression throughput
//!   as a clamped power law of bit-rate, fitted offline.
//! * [`writetime`] — **Eq. (2)**: write time from a stable per-process
//!   throughput.
//! * [`fit`] — the offline calibration procedure (compress one sample
//!   field across error bounds, fit, reuse everywhere — §IV-B).
//! * [`online`] — streaming adaptation for timestep sequences: a
//!   per-partition EWMA bias correction over observed ratios, blended
//!   with the offline model, plus error-band-driven headroom.
//!
//! [`estimate_partition`] bundles all three into the per-partition
//! triple the scheduler consumes: predicted size, compression time,
//! and write time.

pub mod fit;
pub mod online;
pub mod ratio;
pub mod throughput;
pub mod writetime;

pub use fit::{calibrate, observe, paper_bound_sweep, Observation};
pub use online::{BandScope, CellStats, OnlineConfig, OnlinePrediction, OnlinePredictor};
pub use ratio::{predict, predict_default, LosslessGain, RatioPrediction};
pub use throughput::{fit as fit_throughput, ThroughputModel};
pub use writetime::{fit as fit_writetime, WriteTimeModel};

use szlite::{sample_quantization, Config, Dims, Element, Result};

/// Bundle of fitted models used for every partition estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Models {
    /// Compression-throughput model (Eq. 1).
    pub throughput: ThroughputModel,
    /// Write-time model (Eq. 2).
    pub write: WriteTimeModel,
    /// Lossless-stage correction constants for the ratio model.
    pub gain: LosslessGain,
    /// Fraction of blocks sampled by the ratio prediction (≈ 0.05
    /// keeps the overhead below 10 % of compression time, as in \[25\]).
    ///
    /// The sampler floors the effective fraction so at least
    /// [`szlite::sampling::MIN_SAMPLE_POINTS`] points are covered:
    /// partitions at or below that size are sampled in full. Without
    /// the floor, a 5 % sample of a few-thousand-point noisy partition
    /// misses the residual tail and the model under-predicts
    /// compressed size, turning every write into an overflow.
    pub sample_fraction: f64,
}

impl Models {
    /// Models with paper-reference throughput constants and a given
    /// stable write throughput.
    pub fn with_cthr(cthr: f64) -> Self {
        Models {
            throughput: ThroughputModel::paper_reference(),
            write: WriteTimeModel::new(cthr),
            gain: LosslessGain::default(),
            sample_fraction: 0.05,
        }
    }
}

/// Per-partition prediction consumed by the planner/scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionEstimate {
    /// Predicted compressed size, bytes.
    pub bytes: u64,
    /// Predicted compressed bit-rate, bits/value.
    pub bits_per_point: f64,
    /// Predicted compression ratio.
    pub ratio: f64,
    /// Predicted compression time, seconds (Eq. 1).
    pub comp_time: f64,
    /// Predicted write time, seconds (Eq. 2).
    pub write_time: f64,
}

/// Run the full prediction phase on one partition: sample, predict the
/// ratio, then derive compression and write times.
pub fn estimate_partition<T: Element>(
    data: &[T],
    dims: &Dims,
    cfg: &Config,
    models: &Models,
) -> Result<PartitionEstimate> {
    let s = sample_quantization(data, dims, cfg, models.sample_fraction)?;
    let p = predict(&s, T::BITS, &models.gain);
    let raw_bytes = (data.len() * T::BYTES) as f64;
    Ok(PartitionEstimate {
        bytes: p.bytes,
        bits_per_point: p.bits_per_point,
        ratio: p.ratio,
        comp_time: models
            .throughput
            .compression_time(raw_bytes, p.bits_per_point),
        write_time: models.write.write_time(p.bits_per_point, data.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_partition_end_to_end() {
        let n = 24usize;
        let mut data = Vec::with_capacity(n * n * n);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    data.push(((x + y) as f32 * 0.1).sin() + z as f32 * 0.01);
                }
            }
        }
        let dims = Dims::d3(n, n, n);
        let models = Models::with_cthr(100e6);
        let est = estimate_partition(&data, &dims, &Config::rel(1e-3), &models).unwrap();
        assert!(est.bytes > 0);
        assert!(est.comp_time > 0.0);
        assert!(est.write_time > 0.0);
        assert!(est.ratio > 1.0);
        // Write time consistent with predicted bytes.
        let implied = est.bytes as f64 / 100e6;
        assert!((est.write_time - implied).abs() / implied < 0.2);
    }

    #[test]
    fn looser_bound_predicts_less_time_to_write() {
        let data: Vec<f32> = (0..40_000).map(|i| (i as f32 * 0.002).sin()).collect();
        let dims = Dims::d1(40_000);
        let models = Models::with_cthr(100e6);
        let loose = estimate_partition(&data, &dims, &Config::rel(1e-2), &models).unwrap();
        let tight = estimate_partition(&data, &dims, &Config::rel(1e-6), &models).unwrap();
        assert!(loose.bytes < tight.bytes);
        assert!(loose.write_time < tight.write_time);
        // And higher ratio → faster compression (Eq. 1 shape).
        assert!(loose.comp_time <= tight.comp_time + 1e-9);
    }
}
