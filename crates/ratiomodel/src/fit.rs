//! Offline calibration: measure the real compressor on a sample field
//! and fit the throughput model (the paper's §IV-B procedure: compress
//! one field of one snapshot across error bounds, fit `Cmin`, `Cmax`,
//! `a`, then reuse the model everywhere).

use crate::throughput::{fit as fit_throughput, ThroughputModel};
use std::time::Instant;
use szlite::{compress_with_stats, Config, Dims, ErrorBound};

/// One offline compression observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Resolved absolute error bound used.
    pub eb: f64,
    /// Achieved compressed bit-rate (bits/value).
    pub bit_rate: f64,
    /// Measured single-core throughput, bytes/s.
    pub throughput: f64,
    /// Achieved compression ratio.
    pub ratio: f64,
}

/// Compress `data` once per error bound, measuring wall-clock
/// throughput. Returns the observations (for plotting, e.g. Fig. 5).
pub fn observe(data: &[f32], dims: &Dims, bounds: &[ErrorBound]) -> Vec<Observation> {
    let raw_bytes = (data.len() * 4) as f64;
    bounds
        .iter()
        .filter_map(|&eb| {
            let cfg = Config {
                error_bound: eb,
                ..Config::default()
            };
            let start = Instant::now();
            let (_, st) = compress_with_stats(data, dims, &cfg).ok()?;
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            Some(Observation {
                eb: st.eb,
                bit_rate: st.bit_rate(),
                throughput: raw_bytes / secs,
                ratio: st.ratio(),
            })
        })
        .collect()
}

/// Full offline calibration: observe across `bounds` and fit Eq. (1).
///
/// Mirrors the paper's procedure of calibrating on one field (baryon
/// density of the 512³ snapshot, rel bounds 1e-1…1e-8) and reusing the
/// fitted `(Cmin, Cmax, a)` for every other field and snapshot.
pub fn calibrate(
    data: &[f32],
    dims: &Dims,
    bounds: &[ErrorBound],
) -> (ThroughputModel, Vec<Observation>) {
    let obs = observe(data, dims, bounds);
    assert!(
        obs.len() >= 2,
        "calibration needs at least two successful runs"
    );
    let samples: Vec<(f64, f64)> = obs.iter().map(|o| (o.bit_rate, o.throughput)).collect();
    (fit_throughput(&samples), obs)
}

/// The paper's calibration bound sweep: value-range-relative bounds
/// from 1e-1 down to 1e-8.
pub fn paper_bound_sweep() -> Vec<ErrorBound> {
    (1..=8).map(|i| ErrorBound::Rel(10f64.powi(-i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> (Vec<f32>, Dims) {
        let n = 32;
        let mut v = Vec::with_capacity(n * n * n);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    v.push(((x as f32) * 0.15).sin() * ((y as f32) * 0.1).cos() + 0.02 * z as f32);
                }
            }
        }
        (v, Dims::d3(n, n, n))
    }

    #[test]
    fn observe_produces_monotone_bitrates() {
        let (data, dims) = field();
        let obs = observe(
            &data,
            &dims,
            &[
                ErrorBound::Rel(1e-1),
                ErrorBound::Rel(1e-3),
                ErrorBound::Rel(1e-6),
            ],
        );
        assert_eq!(obs.len(), 3);
        assert!(obs[0].bit_rate < obs[1].bit_rate);
        assert!(obs[1].bit_rate < obs[2].bit_rate);
    }

    #[test]
    fn calibrate_produces_sane_model() {
        let (data, dims) = field();
        let (m, obs) = calibrate(&data, &dims, &paper_bound_sweep());
        assert!(m.cmin > 0.0 && m.cmax >= m.cmin);
        assert!(m.a < 0.0, "a = {}", m.a);
        assert!(obs.len() >= 6);
    }
}
