//! Compression-throughput model — the paper's Eq. (1).
//!
//! Single-core prediction-based compression throughput is bounded on
//! both sides (their Fig. 5/6): at very loose bounds the per-point
//! prediction/encoding pass caps it (`cmax`); at very tight bounds the
//! bounded codebook forces literal escapes, flooring it (`cmin`).
//! Between the bounds throughput follows a power law in bit-rate:
//!
//! ```text
//! S(B) = clamp((Cmax − Cmin)·(B/3)^a + Cmin,  Cmin, Cmax),   a < 0
//! Tcomp = D / S(B)
//! ```
//!
//! The paper's unclamped form exceeds `Cmax` for B < 3; we clamp to the
//! empirically observed band, matching their stated observation that
//! min/max throughputs are "similarly bounded across data samples".

/// Fitted throughput model (bytes/second, bit-rate in bits/value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputModel {
    /// Minimum sustained throughput, bytes/s (`Cmin`).
    pub cmin: f64,
    /// Maximum sustained throughput, bytes/s (`Cmax`).
    pub cmax: f64,
    /// Power-law exponent (`a` < 0; more negative = more curved).
    pub a: f64,
}

impl ThroughputModel {
    /// A reference model mirroring the paper's fitted Bebop values
    /// (Cmin = 101.7 MB/s, Cmax = 240.6 MB/s, a = −1.716).
    pub fn paper_reference() -> Self {
        ThroughputModel {
            cmin: 101.7e6,
            cmax: 240.6e6,
            a: -1.716,
        }
    }

    /// Predicted throughput (bytes/s) at compressed bit-rate `b`.
    pub fn throughput(&self, b: f64) -> f64 {
        let b = b.max(1e-6);
        let s = (self.cmax - self.cmin) * (b / 3.0).powf(self.a) + self.cmin;
        s.clamp(self.cmin, self.cmax)
    }

    /// Predicted compression time for `raw_bytes` of input at
    /// predicted bit-rate `b` — Eq. (1)'s `Tcomp = D/S`.
    pub fn compression_time(&self, raw_bytes: f64, b: f64) -> f64 {
        raw_bytes / self.throughput(b)
    }
}

/// Fit `(bit_rate, bytes_per_sec)` observations to the model.
///
/// `cmin`/`cmax` are the observed extremes; `a` solves the log-linear
/// least squares `log ŷ = a · log(B/3)` over interior points, where
/// `ŷ = (S − Cmin)/(Cmax − Cmin)`.
pub fn fit(samples: &[(f64, f64)]) -> ThroughputModel {
    assert!(samples.len() >= 2, "need at least two observations");
    let cmin = samples
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let cmax = samples.iter().map(|&(_, s)| s).fold(0.0, f64::max);
    let span = (cmax - cmin).max(1e-9);

    let mut num = 0.0;
    let mut den = 0.0;
    for &(b, s) in samples {
        if b <= 0.0 {
            continue;
        }
        let y = ((s - cmin) / span).clamp(1e-3, 1.0 - 1e-3);
        let x = (b / 3.0).ln();
        if x.abs() < 1e-9 {
            continue;
        }
        num += y.ln() * x;
        den += x * x;
    }
    let a = if den > 0.0 {
        (num / den).min(-1e-3)
    } else {
        -1.7
    };
    ThroughputModel { cmin, cmax, a }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_shape() {
        let m = ThroughputModel::paper_reference();
        // Monotone decreasing in bit-rate within the band.
        let s1 = m.throughput(3.0);
        let s8 = m.throughput(8.0);
        let s32 = m.throughput(32.0);
        assert!(s1 > s8 && s8 > s32, "{s1} {s8} {s32}");
        // At B = 3 the unclamped form equals Cmax.
        assert!((s1 - m.cmax).abs() < 1.0);
        // High bit-rates approach Cmin.
        assert!(s32 < m.cmin * 1.1);
    }

    #[test]
    fn clamped_at_low_bitrate() {
        let m = ThroughputModel::paper_reference();
        assert!(m.throughput(0.1) <= m.cmax);
        assert!(m.throughput(1e-9) <= m.cmax);
    }

    #[test]
    fn compression_time_scales_with_size() {
        let m = ThroughputModel::paper_reference();
        let t1 = m.compression_time(100e6, 4.0);
        let t2 = m.compression_time(200e6, 4.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_exponent() {
        let truth = ThroughputModel {
            cmin: 100e6,
            cmax: 250e6,
            a: -1.5,
        };
        let samples: Vec<(f64, f64)> = (1..=32)
            .map(|i| {
                let b = i as f64;
                (b, truth.throughput(b))
            })
            .collect();
        let fitted = fit(&samples);
        // The sampled band stops at B = 32, where throughput is still a
        // few MB/s above the asymptotic Cmin.
        assert!(
            (fitted.cmin - truth.cmin).abs() < 6e6,
            "cmin {}",
            fitted.cmin
        );
        assert!(
            (fitted.cmax - truth.cmax).abs() < 2e6,
            "cmax {}",
            fitted.cmax
        );
        // Exponent within a loose band (clamping distorts the tails).
        assert!(fitted.a < -0.5 && fitted.a > -3.0, "a {}", fitted.a);
        // And predictions agree within 15 % over the band.
        for b in [2.0, 4.0, 8.0, 16.0] {
            let rel = (fitted.throughput(b) - truth.throughput(b)).abs() / truth.throughput(b);
            assert!(rel < 0.15, "b={b} rel={rel}");
        }
    }

    #[test]
    #[should_panic]
    fn fit_needs_two_points() {
        fit(&[(1.0, 1.0)]);
    }
}
