//! Compression-ratio prediction from sampled quantization codes.
//!
//! Implements the sampling-based ratio model of Jin et al. \[25\]
//! (arXiv:2111.09815), the enabler of the paper's entire design: the
//! predicted compressed size of every partition is known *before*
//! compression, so write offsets can be pre-computed and compression
//! overlapped with writes.
//!
//! The estimate has three parts:
//! 1. **Huffman stage** — build a canonical Huffman code over the
//!    sampled histogram; expected bits/point is the frequency-weighted
//!    code length (plus the table, amortized over the partition).
//! 2. **Literals** — unpredictable points cost the full element width.
//! 3. **Lossless stage** — a run-length-based correction: long runs of
//!    the dominant code compress further under LZSS; near-random code
//!    streams do not (the paper notes the model degrades above ratio
//!    32× for exactly this reason, §III-D).

use szlite::huffman::HuffmanEncoder;
use szlite::SampleCodes;

/// Tunable constants of the lossless-stage correction.
///
/// Defaults were calibrated once against `szlite` on synthetic Nyx/RTM
/// fields (see `tests/model_accuracy.rs`); they are data-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LosslessGain {
    /// Fraction of Huffman output that survives LZSS at infinite run
    /// length (floor of the gain curve).
    pub floor: f64,
    /// Run length at which half the possible gain is realized.
    pub half_run: f64,
}

impl Default for LosslessGain {
    fn default() -> Self {
        LosslessGain {
            floor: 0.08,
            half_run: 12.0,
        }
    }
}

impl LosslessGain {
    /// Multiplicative factor applied to the Huffman-stage bits.
    pub fn factor(&self, mean_run_length: f64) -> f64 {
        let r = mean_run_length.max(1.0) - 1.0;
        // 1.0 at r = 0, approaching `floor` as r → ∞.
        self.floor + (1.0 - self.floor) / (1.0 + r / self.half_run)
    }
}

/// A predicted partition size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioPrediction {
    /// Predicted compressed bits per point.
    pub bits_per_point: f64,
    /// Predicted compressed size in bytes.
    pub bytes: u64,
    /// Predicted compression ratio vs. the original element width.
    pub ratio: f64,
    /// The Huffman-stage estimate before the lossless correction.
    pub huffman_bits_per_point: f64,
    /// Estimated unpredictable (literal) fraction.
    pub unpredictable_fraction: f64,
}

/// Fixed per-stream overhead (header + small sections), bytes.
const STREAM_OVERHEAD: u64 = 64;

/// Predict the compressed size of a partition of `n_total` elements of
/// width `elem_bits` from its sampled code statistics.
pub fn predict(s: &SampleCodes, elem_bits: u32, gain: &LosslessGain) -> RatioPrediction {
    let n_total = s.n_total as f64;

    // Huffman expected code length over the sampled histogram.
    let enc = HuffmanEncoder::from_freqs(&s.histogram);
    let sampled: u64 = s.histogram.iter().sum();
    let huff_bits = if sampled == 0 {
        0.0
    } else {
        enc.encoded_bits(&s.histogram) as f64 / sampled as f64
    };

    // Table overhead amortized over the whole partition. The sampled
    // alphabet under-counts the full-partition alphabet slightly; a
    // 1.5× safety factor keeps the estimate centered in practice.
    let table_bits = enc.table_bytes() as f64 * 8.0 * 1.5 / n_total;

    // Literal cost for unpredictable points.
    let unpred = s.unpredictable_fraction();
    let literal_bits = unpred * f64::from(elem_bits);

    // Lossless correction applies to the Huffman-coded stream only;
    // literals are near-incompressible floats.
    let lz = gain.factor(s.mean_run_length());
    let bits_pp = huff_bits * lz + literal_bits + table_bits;

    let bytes = ((bits_pp * n_total / 8.0).ceil() as u64 + STREAM_OVERHEAD).max(1);
    let ratio = (n_total * f64::from(elem_bits) / 8.0) / bytes as f64;
    RatioPrediction {
        bits_per_point: bytes as f64 * 8.0 / n_total,
        bytes,
        ratio,
        huffman_bits_per_point: huff_bits,
        unpredictable_fraction: unpred,
    }
}

/// Convenience: predict with default lossless-gain constants.
pub fn predict_default(s: &SampleCodes, elem_bits: u32) -> RatioPrediction {
    predict(s, elem_bits, &LosslessGain::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use szlite::{sample_quantization, Config, Dims};

    fn sample(data: &[f32], eb: f64) -> SampleCodes {
        sample_quantization(data, &Dims::d1(data.len()), &Config::abs(eb), 1.0).unwrap()
    }

    #[test]
    fn smooth_data_predicts_high_ratio() {
        let data: Vec<f32> = (0..100_000).map(|i| i as f32 * 1e-4).collect();
        let p = predict_default(&sample(&data, 0.01), 32);
        assert!(p.ratio > 20.0, "ratio {}", p.ratio);
    }

    #[test]
    fn random_data_predicts_low_ratio() {
        let mut x = 7u32;
        let data: Vec<f32> = (0..50_000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 8) as f32 / 1e4
            })
            .collect();
        let p = predict_default(&sample(&data, 1e-3), 32);
        assert!(p.ratio < 4.0, "ratio {}", p.ratio);
    }

    #[test]
    fn gain_factor_monotone() {
        let g = LosslessGain::default();
        assert!(g.factor(1.0) > g.factor(5.0));
        assert!(g.factor(5.0) > g.factor(100.0));
        assert!((g.factor(1.0) - 1.0).abs() < 1e-9);
        assert!(g.factor(1e9) >= g.floor);
    }

    #[test]
    fn prediction_internally_consistent() {
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.01).sin()).collect();
        let p = predict_default(&sample(&data, 1e-3), 32);
        let implied = 10_000.0 * 32.0 / 8.0 / p.bytes as f64;
        assert!((p.ratio - implied).abs() < 1e-9);
        assert!(p.bits_per_point > 0.0);
    }
}
