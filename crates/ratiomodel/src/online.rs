//! Online ratio-model adaptation for timestep streams.
//!
//! The offline-fitted models ([`crate::Models`]) are calibrated once
//! and reused for every run; over a checkpoint *stream* that leaves
//! history on the table: the per-partition ratios observed at timestep
//! *t* are an excellent predictor for timestep *t + 1*. This module
//! closes the loop with a per-partition multiplicative bias
//! correction:
//!
//! * each tracked partition ("cell") keeps an EWMA of
//!   `observed / model` — the systematic error of the sampling-based
//!   model on *this* partition's data;
//! * predictions blend the fresh offline estimate with that
//!   correction, ramping trust in over [`OnlineConfig::warmup`]
//!   observations;
//! * an EWMA of the blended prediction's relative error forms an
//!   **error band** from which a per-partition extra-space headroom is
//!   derived — tight when history is stable, wide after drift — with a
//!   hard floor guaranteeing the reservation never drops below the
//!   partition's last observed size.
//!
//! The state is a pure fold over the observation sequence, so
//! streaming runs replay deterministically at any worker count.

/// Scope of the error band the adaptive headroom derives from.
///
/// The bias correction is always per-partition; the *band* (how much
/// cushion the error history justifies) can be shared. At thousands of
/// ranks a field's partitions compress near-identically, so pooling
/// their error statistics into one collective band per field converges
/// with far fewer per-cell observations and keeps headroom uniform
/// across a field's ranks — one outlier partition widens every
/// member's cushion instead of silently overflowing alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BandScope {
    /// Each cell derives its band from its own EWMA error (the PR 4
    /// behavior).
    #[default]
    Partition,
    /// Cells are pooled into groups (callers with `rank·nfields+field`
    /// cell indexing group by `cell % nfields`, i.e. per field); each
    /// group's band is the running mean of its members' EWMA errors.
    /// Consumed by constructors that know the group count, e.g.
    /// `timeline`'s `OnlineSource` via
    /// [`OnlinePredictor::with_band_groups`].
    Field,
}

/// Tunables of the online blend and adaptive headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// EWMA weight of the newest observation, in (0, 1].
    pub alpha: f64,
    /// Observations before the blend fully trusts history and the
    /// adaptive headroom activates (≥ 1; earlier predictions fall back
    /// to the engine's static policy).
    pub warmup: u64,
    /// Error-band multiplier: headroom is `1 + err_margin · ewma_err`.
    pub err_margin: f64,
    /// Floor on the adapted headroom (keeps a minimum cushion even on
    /// perfectly stable history).
    pub min_headroom: f64,
    /// Cap on the error-band part of the headroom (the last-observed
    /// floor may exceed it — recovery from a misprediction takes
    /// precedence over the cap).
    pub max_headroom: f64,
    /// Whether bands are per-partition or pooled per group.
    pub band_scope: BandScope,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            alpha: 0.5,
            warmup: 2,
            err_margin: 4.0,
            min_headroom: 1.05,
            max_headroom: 1.43,
            band_scope: BandScope::Partition,
        }
    }
}

impl OnlineConfig {
    /// Copy with every field forced into its supported range.
    fn sanitized(self) -> Self {
        let min = self.min_headroom.max(1.0);
        OnlineConfig {
            alpha: if self.alpha.is_finite() {
                self.alpha.clamp(1e-3, 1.0)
            } else {
                0.5
            },
            warmup: self.warmup.max(1),
            err_margin: if self.err_margin.is_finite() {
                self.err_margin.max(0.0)
            } else {
                4.0
            },
            min_headroom: min,
            max_headroom: self.max_headroom.max(min),
            band_scope: self.band_scope,
        }
    }
}

/// Per-partition adaptation state.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// EWMA of `observed / model` (multiplicative model bias).
    correction: f64,
    /// EWMA of `|predicted − observed| / observed`.
    err: f64,
    /// Most recent observed compressed size, bytes.
    last_observed: u64,
    /// Observations folded in so far.
    n_obs: u64,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            correction: 1.0,
            err: 0.0,
            last_observed: 0,
            n_obs: 0,
        }
    }
}

/// Read-only view of one cell's statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Current EWMA bias correction (`observed / model`).
    pub correction: f64,
    /// Current EWMA relative prediction error.
    pub rel_err: f64,
    /// Last observed compressed size, bytes (0 before any observation).
    pub last_observed: u64,
    /// Observations folded in.
    pub n_obs: u64,
}

/// One blended prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePrediction {
    /// Blended predicted compressed size, bytes (≥ 1).
    pub bytes: u64,
    /// Adapted extra-space multiplier, or `None` during warm-up (the
    /// caller should fall back to its static policy). When present it
    /// satisfies `ceil(bytes · headroom) ≥ last_observed`.
    pub headroom: Option<f64>,
    /// The clamped error band the headroom was derived from (useful
    /// for reporting even during warm-up).
    pub band: f64,
}

/// Version byte of [`OnlinePredictor::to_state_bytes`]'s encoding.
/// v1 (PR 4) has no band groups; v2 appends the group-band section.
/// Both versions load.
const STATE_VERSION: u8 = 2;

/// Collective error-band accumulator of one cell group.
#[derive(Debug, Clone, Copy, Default)]
struct BandGroup {
    /// Running sum of the member cells' current EWMA errors (only
    /// members with history contribute; maintained incrementally on
    /// every observation and serialized verbatim, so restored
    /// predictors reproduce bit-identical bands).
    err_sum: f64,
    /// Members with at least one observation.
    n_active: u64,
}

/// Streaming per-partition predictor: offline model × online
/// bias correction, with adaptive extra-space headroom.
#[derive(Debug, Clone)]
pub struct OnlinePredictor {
    cfg: OnlineConfig,
    cells: Vec<Cell>,
    /// Collective band accumulators; empty = per-cell bands. Cell
    /// `c` belongs to group `c % groups.len()`.
    groups: Vec<BandGroup>,
}

impl OnlinePredictor {
    /// Predictor tracking `n_cells` partitions (callers index cells
    /// however they like, e.g. `rank · nfields + field`) with
    /// per-partition error bands.
    pub fn new(n_cells: usize, cfg: OnlineConfig) -> Self {
        OnlinePredictor {
            cfg: cfg.sanitized(),
            cells: vec![Cell::default(); n_cells],
            groups: Vec::new(),
        }
    }

    /// Predictor with **collective** error bands: cells are pooled
    /// into `band_groups` groups by `cell % band_groups`, and each
    /// group's band derives from the running mean of its members' EWMA
    /// errors instead of each cell's own. With the conventional
    /// `rank · nfields + field` cell indexing, `band_groups = nfields`
    /// gives one shared band per field across all ranks
    /// ([`BandScope::Field`]). Bias corrections, warm-up gates and the
    /// last-observed reservation floor stay per-cell.
    ///
    /// `band_groups = 0` is per-cell banding, identical to
    /// [`OnlinePredictor::new`].
    pub fn with_band_groups(n_cells: usize, band_groups: usize, cfg: OnlineConfig) -> Self {
        OnlinePredictor {
            cfg: cfg.sanitized(),
            cells: vec![Cell::default(); n_cells],
            groups: vec![BandGroup::default(); band_groups],
        }
    }

    /// Number of tracked cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of collective band groups (0 = per-cell bands).
    pub fn band_groups(&self) -> usize {
        self.groups.len()
    }

    /// The EWMA error feeding `cell`'s band: the cell's own error, or
    /// its group's running mean under collective banding.
    fn band_err(&self, cell: usize) -> f64 {
        if self.groups.is_empty() {
            return self.cells[cell].err;
        }
        let g = &self.groups[cell % self.groups.len()];
        if g.n_active == 0 {
            self.cells[cell].err
        } else {
            // The incremental sum can round a hair below zero once
            // members' errors shrink; the band is a cushion, clamp it.
            (g.err_sum / g.n_active as f64).max(0.0)
        }
    }

    /// The (sanitized) configuration in effect.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Blend the fresh offline estimate `model_bytes` with the cell's
    /// history. Always finite, never below 1 byte.
    pub fn predict(&self, cell: usize, model_bytes: u64) -> OnlinePrediction {
        let c = &self.cells[cell];
        let model = model_bytes.max(1);
        // Trust ramp: 0 with no history, 1 from `warmup` observations.
        let w = (c.n_obs as f64 / self.cfg.warmup as f64).min(1.0);
        let corr = 1.0 + w * (c.correction - 1.0);
        let bytes = ((model as f64 * corr).ceil() as u64).max(1);
        let band = (1.0 + self.cfg.err_margin * self.band_err(cell))
            .clamp(self.cfg.min_headroom, self.cfg.max_headroom);
        let headroom =
            (c.n_obs >= self.cfg.warmup).then(|| band.max(c.last_observed as f64 / bytes as f64));
        OnlinePrediction {
            bytes,
            headroom,
            band,
        }
    }

    /// Fold in one observation: `model_bytes` is the raw offline
    /// estimate, `predicted_bytes` the blended prediction that was
    /// planned with, `observed_bytes` the actual compressed size.
    pub fn observe(
        &mut self,
        cell: usize,
        model_bytes: u64,
        predicted_bytes: u64,
        observed_bytes: u64,
    ) {
        let old = self.cells[cell];
        let mut c = old;
        let obs = observed_bytes.max(1) as f64;
        // Clamps keep a degenerate observation (corrupt sizes, zero
        // model) from poisoning the EWMA with inf/NaN.
        let g = (obs / model_bytes.max(1) as f64).clamp(1e-3, 1e3);
        let e = ((predicted_bytes.max(1) as f64 - obs).abs() / obs).min(10.0);
        if c.n_obs == 0 {
            c.correction = g;
            c.err = e;
        } else {
            let a = self.cfg.alpha;
            c.correction = (1.0 - a) * c.correction + a * g;
            c.err = (1.0 - a) * c.err + a * e;
        }
        c.last_observed = observed_bytes;
        c.n_obs += 1;
        if !self.groups.is_empty() {
            // Keep the group's running Σ(member EWMA errors) in sync:
            // replace this cell's previous contribution with its new
            // one (first observation also activates the member).
            let gi = cell % self.groups.len();
            let grp = &mut self.groups[gi];
            if old.n_obs == 0 {
                grp.n_active += 1;
                grp.err_sum += c.err;
            } else {
                grp.err_sum += c.err - old.err;
            }
        }
        self.cells[cell] = c;
    }

    /// Statistics of one cell.
    pub fn stats(&self, cell: usize) -> CellStats {
        let c = &self.cells[cell];
        CellStats {
            correction: c.correction,
            rel_err: c.err,
            last_observed: c.last_observed,
            n_obs: c.n_obs,
        }
    }

    /// Serialize the full adaptation state (config + every cell) to a
    /// compact byte stream — the payload of the timeline's per-step
    /// sidecar, so a restarted stream resumes with warmed predictions
    /// instead of re-running warm-up. Framing (magic, checksum) is the
    /// caller's job.
    pub fn to_state_bytes(&self) -> Vec<u8> {
        use szlite::stream::{put_f64, put_varint};
        let mut out = Vec::with_capacity(24 + self.cells.len() * 24 + self.groups.len() * 10);
        out.push(STATE_VERSION);
        put_f64(&mut out, self.cfg.alpha);
        put_varint(&mut out, self.cfg.warmup);
        put_f64(&mut out, self.cfg.err_margin);
        put_f64(&mut out, self.cfg.min_headroom);
        put_f64(&mut out, self.cfg.max_headroom);
        out.push(match self.cfg.band_scope {
            BandScope::Partition => 0,
            BandScope::Field => 1,
        });
        put_varint(&mut out, self.cells.len() as u64);
        for c in &self.cells {
            put_f64(&mut out, c.correction);
            put_f64(&mut out, c.err);
            put_varint(&mut out, c.last_observed);
            put_varint(&mut out, c.n_obs);
        }
        // Group sums are stored verbatim (not re-derived from cells on
        // load): the incremental f64 accumulation order is part of the
        // state, so a resumed stream reproduces bit-identical bands.
        put_varint(&mut out, self.groups.len() as u64);
        for g in &self.groups {
            put_f64(&mut out, g.err_sum);
            put_varint(&mut out, g.n_active);
        }
        out
    }

    /// Rebuild a predictor from [`OnlinePredictor::to_state_bytes`]
    /// output. Reads the current v2 encoding and the v1 sidecars
    /// written before collective bands existed (those come up with
    /// per-cell bands, exactly the behavior that produced them). The
    /// config is re-sanitized on load, so a state written by a future
    /// version with wider ranges still comes up safe.
    pub fn from_state_bytes(bytes: &[u8]) -> Result<Self, String> {
        use szlite::stream::{get_f64, get_varint};
        let err = |what: &str| format!("online predictor state: truncated {what}");
        let mut pos = 0usize;
        let version = *bytes.first().ok_or_else(|| err("header"))?;
        if version != 1 && version != STATE_VERSION {
            return Err(format!(
                "online predictor state: unsupported version {version}"
            ));
        }
        pos += 1;
        let alpha = get_f64(bytes, &mut pos).map_err(|_| err("alpha"))?;
        let warmup = get_varint(bytes, &mut pos).map_err(|_| err("warmup"))?;
        let err_margin = get_f64(bytes, &mut pos).map_err(|_| err("err_margin"))?;
        let min_headroom = get_f64(bytes, &mut pos).map_err(|_| err("min_headroom"))?;
        let max_headroom = get_f64(bytes, &mut pos).map_err(|_| err("max_headroom"))?;
        let band_scope = if version >= 2 {
            match bytes.get(pos) {
                Some(0) => BandScope::Partition,
                Some(1) => BandScope::Field,
                Some(b) => {
                    return Err(format!("online predictor state: unknown band scope {b}"));
                }
                None => return Err(err("band scope")),
            }
        } else {
            BandScope::Partition
        };
        if version >= 2 {
            pos += 1;
        }
        let n = get_varint(bytes, &mut pos).map_err(|_| err("cell count"))? as usize;
        if n > 100_000_000 {
            return Err("online predictor state: implausible cell count".into());
        }
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let correction = get_f64(bytes, &mut pos).map_err(|_| err("cell"))?;
            let cell_err = get_f64(bytes, &mut pos).map_err(|_| err("cell"))?;
            let last_observed = get_varint(bytes, &mut pos).map_err(|_| err("cell"))?;
            let n_obs = get_varint(bytes, &mut pos).map_err(|_| err("cell"))?;
            if !correction.is_finite() || !cell_err.is_finite() {
                return Err("online predictor state: non-finite cell".into());
            }
            cells.push(Cell {
                correction,
                err: cell_err,
                last_observed,
                n_obs,
            });
        }
        let mut groups = Vec::new();
        if version >= 2 {
            let ng = get_varint(bytes, &mut pos).map_err(|_| err("group count"))? as usize;
            if ng > n.max(1) {
                return Err("online predictor state: more groups than cells".into());
            }
            for _ in 0..ng {
                let err_sum = get_f64(bytes, &mut pos).map_err(|_| err("group"))?;
                let n_active = get_varint(bytes, &mut pos).map_err(|_| err("group"))?;
                if !err_sum.is_finite() || n_active > n as u64 {
                    return Err("online predictor state: invalid group".into());
                }
                groups.push(BandGroup { err_sum, n_active });
            }
        }
        if pos != bytes.len() {
            return Err("online predictor state: trailing bytes".into());
        }
        Ok(OnlinePredictor {
            cfg: OnlineConfig {
                alpha,
                warmup,
                err_margin,
                min_headroom,
                max_headroom,
                band_scope,
            }
            .sanitized(),
            cells,
            groups,
        })
    }

    /// Mean EWMA relative error over cells with history (0 when none
    /// has observed anything yet) — the stream-level stability signal.
    pub fn mean_rel_err(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in &self.cells {
            if c.n_obs > 0 {
                sum += c.err;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_falls_back_to_static_policy() {
        let mut p = OnlinePredictor::new(1, OnlineConfig::default());
        let pr = p.predict(0, 1000);
        assert_eq!(pr.bytes, 1000, "no history: pure model");
        assert!(pr.headroom.is_none(), "no history: static policy");
        p.observe(0, 1000, 1000, 1200);
        assert!(p.predict(0, 1000).headroom.is_none(), "1 obs < warmup 2");
        p.observe(0, 1000, 1000, 1200);
        assert!(p.predict(0, 1000).headroom.is_some(), "warmed up");
    }

    #[test]
    fn stationary_stream_converges_to_observed() {
        let mut p = OnlinePredictor::new(1, OnlineConfig::default());
        for _ in 0..6 {
            let pr = p.predict(0, 1000);
            p.observe(0, 1000, pr.bytes, 1300);
        }
        let pr = p.predict(0, 1000);
        assert!(
            (pr.bytes as i64 - 1300).unsigned_abs() <= 2,
            "got {}",
            pr.bytes
        );
        // Stable history → error band collapses to the floor.
        let h = pr.headroom.unwrap();
        assert!(h <= 1.06, "headroom {h} should be near min");
    }

    #[test]
    fn misprediction_widens_then_recovers() {
        let cfg = OnlineConfig::default();
        let mut p = OnlinePredictor::new(1, cfg);
        for _ in 0..4 {
            let pr = p.predict(0, 1000);
            p.observe(0, 1000, pr.bytes, 1000);
        }
        let calm = p.predict(0, 1000).headroom.unwrap();
        // A 60 % spike: the next headroom must widen and the reserve
        // must cover the spike's observed size.
        let pr = p.predict(0, 1000);
        p.observe(0, 1000, pr.bytes, 1600);
        let pr = p.predict(0, 1000);
        let h = pr.headroom.unwrap();
        assert!(h > calm, "after drift {h} must exceed calm {calm}");
        let reserve = (pr.bytes as f64 * h).ceil() as u64;
        assert!(reserve >= 1600, "reserve {reserve} below last observed");
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        let mut p = OnlinePredictor::new(
            1,
            OnlineConfig {
                alpha: f64::NAN,
                warmup: 0,
                err_margin: f64::INFINITY,
                min_headroom: 0.0,
                max_headroom: 0.0,
                band_scope: BandScope::Partition,
            },
        );
        p.observe(0, 0, 0, 0);
        p.observe(0, u64::MAX, 1, u64::MAX);
        let pr = p.predict(0, 0);
        assert!(pr.bytes >= 1);
        assert!(pr.band.is_finite());
        if let Some(h) = pr.headroom {
            assert!(h.is_finite() && h >= 1.0);
        }
    }

    #[test]
    fn state_roundtrips_exactly() {
        let mut p = OnlinePredictor::new(6, OnlineConfig::default());
        for step in 0..5u64 {
            for cell in 0..6 {
                let pr = p.predict(cell, 1000 + cell as u64 * 37);
                p.observe(cell, 1000, pr.bytes, 900 + step * 50 + cell as u64);
            }
        }
        let bytes = p.to_state_bytes();
        let q = OnlinePredictor::from_state_bytes(&bytes).unwrap();
        assert_eq!(q.n_cells(), p.n_cells());
        assert_eq!(q.config(), p.config());
        for cell in 0..6 {
            assert_eq!(q.stats(cell), p.stats(cell), "cell {cell}");
            // Bit-identical state must yield bit-identical predictions.
            assert_eq!(q.predict(cell, 1234), p.predict(cell, 1234));
        }
    }

    #[test]
    fn corrupt_state_rejected() {
        let p = OnlinePredictor::new(2, OnlineConfig::default());
        let bytes = p.to_state_bytes();
        assert!(OnlinePredictor::from_state_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(OnlinePredictor::from_state_bytes(&[]).is_err());
        let mut vers = bytes.clone();
        vers[0] = 99;
        assert!(OnlinePredictor::from_state_bytes(&vers).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(OnlinePredictor::from_state_bytes(&trailing).is_err());
    }

    #[test]
    fn collective_band_pools_member_errors() {
        // 3 ranks × 2 fields, grouped per field. Field 0's ranks see
        // erratic sizes, field 1's are rock-stable; under collective
        // banding every rank of field 0 gets the widened band —
        // including rank 2, whose own history happens to be clean —
        // while field 1 stays at the floor.
        let nranks = 3;
        let nfields = 2;
        let mut p =
            OnlinePredictor::with_band_groups(nranks * nfields, nfields, OnlineConfig::default());
        assert_eq!(p.band_groups(), nfields);
        for step in 0..4u64 {
            for r in 0..nranks {
                // Field 0: ranks 0 and 1 oscillate ±40 %; rank 2 is
                // stable (its own error would justify a tight band).
                let f0_obs = if r < 2 {
                    if step % 2 == 0 {
                        1400
                    } else {
                        600
                    }
                } else {
                    1000
                };
                let cell0 = r * nfields;
                let pr = p.predict(cell0, 1000);
                p.observe(cell0, 1000, pr.bytes, f0_obs);
                // Field 1: perfectly stable everywhere.
                let cell1 = r * nfields + 1;
                let pr = p.predict(cell1, 2000);
                p.observe(cell1, 2000, pr.bytes, 2000);
            }
        }
        let stable_rank_f0 = p.predict(2 * nfields, 1000);
        let f1 = p.predict(2 * nfields + 1, 2000);
        assert!(
            stable_rank_f0.band > f1.band,
            "field 0's collective band {} must exceed stable field 1's {}",
            stable_rank_f0.band,
            f1.band
        );
        assert!(
            f1.band <= 1.06,
            "stable field must sit at the floor, got {}",
            f1.band
        );
        // Per-cell banding on the same history would give rank 2 of
        // field 0 a tight band — the pooled one must be wider.
        let mut q = OnlinePredictor::new(nranks * nfields, OnlineConfig::default());
        for step in 0..4u64 {
            for r in 0..nranks {
                let f0_obs = if r < 2 {
                    if step % 2 == 0 {
                        1400
                    } else {
                        600
                    }
                } else {
                    1000
                };
                let cell0 = r * nfields;
                let pr = q.predict(cell0, 1000);
                q.observe(cell0, 1000, pr.bytes, f0_obs);
            }
        }
        assert!(
            stable_rank_f0.band > q.predict(2 * nfields, 1000).band,
            "collective band must widen the stable member beyond its own"
        );
    }

    #[test]
    fn collective_band_keeps_per_cell_floor_and_warmup() {
        let mut p = OnlinePredictor::with_band_groups(4, 2, OnlineConfig::default());
        // Only cell 0 has history: cells still in warm-up must keep
        // reporting no headroom even though their group has a band.
        p.observe(0, 1000, 1000, 1500);
        p.observe(0, 1000, 1000, 1500);
        assert!(p.predict(0, 1000).headroom.is_some());
        assert!(
            p.predict(2, 1000).headroom.is_none(),
            "cell 2 is unwarmed; the group band must not unlock it"
        );
        // The last-observed floor stays per-cell: cell 0's reserve
        // covers its own spike regardless of the pooled band.
        let pr = p.predict(0, 100);
        let h = pr.headroom.unwrap();
        assert!(
            (pr.bytes as f64 * h).ceil() as u64 >= 1500,
            "reserve must cover cell 0's last observed size"
        );
    }

    #[test]
    fn grouped_state_roundtrips_exactly() {
        let mut p = OnlinePredictor::with_band_groups(
            6,
            3,
            OnlineConfig {
                band_scope: BandScope::Field,
                ..OnlineConfig::default()
            },
        );
        for step in 0..5u64 {
            for cell in 0..6 {
                let pr = p.predict(cell, 1000 + cell as u64 * 31);
                p.observe(cell, 1000, pr.bytes, 800 + step * 90 + cell as u64 * 13);
            }
        }
        let q = OnlinePredictor::from_state_bytes(&p.to_state_bytes()).unwrap();
        assert_eq!(q.band_groups(), 3);
        assert_eq!(q.config(), p.config());
        for cell in 0..6 {
            assert_eq!(q.stats(cell), p.stats(cell));
            assert_eq!(q.predict(cell, 4321), p.predict(cell, 4321), "cell {cell}");
        }
    }

    #[test]
    fn v1_state_still_loads() {
        // Hand-encode the PR 4 (version 1) layout: cfg without band
        // scope, cells, no group section. Old sidecars must load with
        // per-cell bands.
        use szlite::stream::{put_f64, put_varint};
        let mut bytes = vec![1u8];
        put_f64(&mut bytes, 0.5);
        put_varint(&mut bytes, 2);
        put_f64(&mut bytes, 4.0);
        put_f64(&mut bytes, 1.05);
        put_f64(&mut bytes, 1.43);
        put_varint(&mut bytes, 2); // two cells
        for i in 0..2u64 {
            put_f64(&mut bytes, 1.2);
            put_f64(&mut bytes, 0.1);
            put_varint(&mut bytes, 900 + i);
            put_varint(&mut bytes, 5);
        }
        let p = OnlinePredictor::from_state_bytes(&bytes).unwrap();
        assert_eq!(p.n_cells(), 2);
        assert_eq!(p.band_groups(), 0, "v1 state has per-cell bands");
        assert_eq!(p.config().band_scope, BandScope::Partition);
        assert_eq!(p.stats(1).last_observed, 901);
        assert!(p.predict(0, 1000).headroom.is_some());
    }

    #[test]
    fn mean_rel_err_ignores_untouched_cells() {
        let mut p = OnlinePredictor::new(3, OnlineConfig::default());
        assert_eq!(p.mean_rel_err(), 0.0);
        p.observe(1, 1000, 1000, 1500); // rel err 500/1500 = 1/3
        assert!((p.mean_rel_err() - 1.0 / 3.0).abs() < 1e-12);
    }
}
