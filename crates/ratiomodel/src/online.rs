//! Online ratio-model adaptation for timestep streams.
//!
//! The offline-fitted models ([`crate::Models`]) are calibrated once
//! and reused for every run; over a checkpoint *stream* that leaves
//! history on the table: the per-partition ratios observed at timestep
//! *t* are an excellent predictor for timestep *t + 1*. This module
//! closes the loop with a per-partition multiplicative bias
//! correction:
//!
//! * each tracked partition ("cell") keeps an EWMA of
//!   `observed / model` — the systematic error of the sampling-based
//!   model on *this* partition's data;
//! * predictions blend the fresh offline estimate with that
//!   correction, ramping trust in over [`OnlineConfig::warmup`]
//!   observations;
//! * an EWMA of the blended prediction's relative error forms an
//!   **error band** from which a per-partition extra-space headroom is
//!   derived — tight when history is stable, wide after drift — with a
//!   hard floor guaranteeing the reservation never drops below the
//!   partition's last observed size.
//!
//! The state is a pure fold over the observation sequence, so
//! streaming runs replay deterministically at any worker count.

/// Tunables of the online blend and adaptive headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// EWMA weight of the newest observation, in (0, 1].
    pub alpha: f64,
    /// Observations before the blend fully trusts history and the
    /// adaptive headroom activates (≥ 1; earlier predictions fall back
    /// to the engine's static policy).
    pub warmup: u64,
    /// Error-band multiplier: headroom is `1 + err_margin · ewma_err`.
    pub err_margin: f64,
    /// Floor on the adapted headroom (keeps a minimum cushion even on
    /// perfectly stable history).
    pub min_headroom: f64,
    /// Cap on the error-band part of the headroom (the last-observed
    /// floor may exceed it — recovery from a misprediction takes
    /// precedence over the cap).
    pub max_headroom: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            alpha: 0.5,
            warmup: 2,
            err_margin: 4.0,
            min_headroom: 1.05,
            max_headroom: 1.43,
        }
    }
}

impl OnlineConfig {
    /// Copy with every field forced into its supported range.
    fn sanitized(self) -> Self {
        let min = self.min_headroom.max(1.0);
        OnlineConfig {
            alpha: if self.alpha.is_finite() {
                self.alpha.clamp(1e-3, 1.0)
            } else {
                0.5
            },
            warmup: self.warmup.max(1),
            err_margin: if self.err_margin.is_finite() {
                self.err_margin.max(0.0)
            } else {
                4.0
            },
            min_headroom: min,
            max_headroom: self.max_headroom.max(min),
        }
    }
}

/// Per-partition adaptation state.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// EWMA of `observed / model` (multiplicative model bias).
    correction: f64,
    /// EWMA of `|predicted − observed| / observed`.
    err: f64,
    /// Most recent observed compressed size, bytes.
    last_observed: u64,
    /// Observations folded in so far.
    n_obs: u64,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            correction: 1.0,
            err: 0.0,
            last_observed: 0,
            n_obs: 0,
        }
    }
}

/// Read-only view of one cell's statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Current EWMA bias correction (`observed / model`).
    pub correction: f64,
    /// Current EWMA relative prediction error.
    pub rel_err: f64,
    /// Last observed compressed size, bytes (0 before any observation).
    pub last_observed: u64,
    /// Observations folded in.
    pub n_obs: u64,
}

/// One blended prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlinePrediction {
    /// Blended predicted compressed size, bytes (≥ 1).
    pub bytes: u64,
    /// Adapted extra-space multiplier, or `None` during warm-up (the
    /// caller should fall back to its static policy). When present it
    /// satisfies `ceil(bytes · headroom) ≥ last_observed`.
    pub headroom: Option<f64>,
    /// The clamped error band the headroom was derived from (useful
    /// for reporting even during warm-up).
    pub band: f64,
}

/// Version byte of [`OnlinePredictor::to_state_bytes`]'s encoding.
const STATE_VERSION: u8 = 1;

/// Streaming per-partition predictor: offline model × online
/// bias correction, with adaptive extra-space headroom.
#[derive(Debug, Clone)]
pub struct OnlinePredictor {
    cfg: OnlineConfig,
    cells: Vec<Cell>,
}

impl OnlinePredictor {
    /// Predictor tracking `n_cells` partitions (callers index cells
    /// however they like, e.g. `rank · nfields + field`).
    pub fn new(n_cells: usize, cfg: OnlineConfig) -> Self {
        OnlinePredictor {
            cfg: cfg.sanitized(),
            cells: vec![Cell::default(); n_cells],
        }
    }

    /// Number of tracked cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// The (sanitized) configuration in effect.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Blend the fresh offline estimate `model_bytes` with the cell's
    /// history. Always finite, never below 1 byte.
    pub fn predict(&self, cell: usize, model_bytes: u64) -> OnlinePrediction {
        let c = &self.cells[cell];
        let model = model_bytes.max(1);
        // Trust ramp: 0 with no history, 1 from `warmup` observations.
        let w = (c.n_obs as f64 / self.cfg.warmup as f64).min(1.0);
        let corr = 1.0 + w * (c.correction - 1.0);
        let bytes = ((model as f64 * corr).ceil() as u64).max(1);
        let band =
            (1.0 + self.cfg.err_margin * c.err).clamp(self.cfg.min_headroom, self.cfg.max_headroom);
        let headroom =
            (c.n_obs >= self.cfg.warmup).then(|| band.max(c.last_observed as f64 / bytes as f64));
        OnlinePrediction {
            bytes,
            headroom,
            band,
        }
    }

    /// Fold in one observation: `model_bytes` is the raw offline
    /// estimate, `predicted_bytes` the blended prediction that was
    /// planned with, `observed_bytes` the actual compressed size.
    pub fn observe(
        &mut self,
        cell: usize,
        model_bytes: u64,
        predicted_bytes: u64,
        observed_bytes: u64,
    ) {
        let c = &mut self.cells[cell];
        let obs = observed_bytes.max(1) as f64;
        // Clamps keep a degenerate observation (corrupt sizes, zero
        // model) from poisoning the EWMA with inf/NaN.
        let g = (obs / model_bytes.max(1) as f64).clamp(1e-3, 1e3);
        let e = ((predicted_bytes.max(1) as f64 - obs).abs() / obs).min(10.0);
        if c.n_obs == 0 {
            c.correction = g;
            c.err = e;
        } else {
            let a = self.cfg.alpha;
            c.correction = (1.0 - a) * c.correction + a * g;
            c.err = (1.0 - a) * c.err + a * e;
        }
        c.last_observed = observed_bytes;
        c.n_obs += 1;
    }

    /// Statistics of one cell.
    pub fn stats(&self, cell: usize) -> CellStats {
        let c = &self.cells[cell];
        CellStats {
            correction: c.correction,
            rel_err: c.err,
            last_observed: c.last_observed,
            n_obs: c.n_obs,
        }
    }

    /// Serialize the full adaptation state (config + every cell) to a
    /// compact byte stream — the payload of the timeline's per-step
    /// sidecar, so a restarted stream resumes with warmed predictions
    /// instead of re-running warm-up. Framing (magic, checksum) is the
    /// caller's job.
    pub fn to_state_bytes(&self) -> Vec<u8> {
        use szlite::stream::{put_f64, put_varint};
        let mut out = Vec::with_capacity(16 + self.cells.len() * 24);
        out.push(STATE_VERSION);
        put_f64(&mut out, self.cfg.alpha);
        put_varint(&mut out, self.cfg.warmup);
        put_f64(&mut out, self.cfg.err_margin);
        put_f64(&mut out, self.cfg.min_headroom);
        put_f64(&mut out, self.cfg.max_headroom);
        put_varint(&mut out, self.cells.len() as u64);
        for c in &self.cells {
            put_f64(&mut out, c.correction);
            put_f64(&mut out, c.err);
            put_varint(&mut out, c.last_observed);
            put_varint(&mut out, c.n_obs);
        }
        out
    }

    /// Rebuild a predictor from [`OnlinePredictor::to_state_bytes`]
    /// output. The config is re-sanitized on load, so a state written
    /// by a future version with wider ranges still comes up safe.
    pub fn from_state_bytes(bytes: &[u8]) -> Result<Self, String> {
        use szlite::stream::{get_f64, get_varint};
        let err = |what: &str| format!("online predictor state: truncated {what}");
        let mut pos = 0usize;
        let version = *bytes.first().ok_or_else(|| err("header"))?;
        if version != STATE_VERSION {
            return Err(format!(
                "online predictor state: unsupported version {version}"
            ));
        }
        pos += 1;
        let alpha = get_f64(bytes, &mut pos).map_err(|_| err("alpha"))?;
        let warmup = get_varint(bytes, &mut pos).map_err(|_| err("warmup"))?;
        let err_margin = get_f64(bytes, &mut pos).map_err(|_| err("err_margin"))?;
        let min_headroom = get_f64(bytes, &mut pos).map_err(|_| err("min_headroom"))?;
        let max_headroom = get_f64(bytes, &mut pos).map_err(|_| err("max_headroom"))?;
        let n = get_varint(bytes, &mut pos).map_err(|_| err("cell count"))? as usize;
        if n > 100_000_000 {
            return Err("online predictor state: implausible cell count".into());
        }
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let correction = get_f64(bytes, &mut pos).map_err(|_| err("cell"))?;
            let cell_err = get_f64(bytes, &mut pos).map_err(|_| err("cell"))?;
            let last_observed = get_varint(bytes, &mut pos).map_err(|_| err("cell"))?;
            let n_obs = get_varint(bytes, &mut pos).map_err(|_| err("cell"))?;
            if !correction.is_finite() || !cell_err.is_finite() {
                return Err("online predictor state: non-finite cell".into());
            }
            cells.push(Cell {
                correction,
                err: cell_err,
                last_observed,
                n_obs,
            });
        }
        if pos != bytes.len() {
            return Err("online predictor state: trailing bytes".into());
        }
        Ok(OnlinePredictor {
            cfg: OnlineConfig {
                alpha,
                warmup,
                err_margin,
                min_headroom,
                max_headroom,
            }
            .sanitized(),
            cells,
        })
    }

    /// Mean EWMA relative error over cells with history (0 when none
    /// has observed anything yet) — the stream-level stability signal.
    pub fn mean_rel_err(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in &self.cells {
            if c.n_obs > 0 {
                sum += c.err;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_falls_back_to_static_policy() {
        let mut p = OnlinePredictor::new(1, OnlineConfig::default());
        let pr = p.predict(0, 1000);
        assert_eq!(pr.bytes, 1000, "no history: pure model");
        assert!(pr.headroom.is_none(), "no history: static policy");
        p.observe(0, 1000, 1000, 1200);
        assert!(p.predict(0, 1000).headroom.is_none(), "1 obs < warmup 2");
        p.observe(0, 1000, 1000, 1200);
        assert!(p.predict(0, 1000).headroom.is_some(), "warmed up");
    }

    #[test]
    fn stationary_stream_converges_to_observed() {
        let mut p = OnlinePredictor::new(1, OnlineConfig::default());
        for _ in 0..6 {
            let pr = p.predict(0, 1000);
            p.observe(0, 1000, pr.bytes, 1300);
        }
        let pr = p.predict(0, 1000);
        assert!(
            (pr.bytes as i64 - 1300).unsigned_abs() <= 2,
            "got {}",
            pr.bytes
        );
        // Stable history → error band collapses to the floor.
        let h = pr.headroom.unwrap();
        assert!(h <= 1.06, "headroom {h} should be near min");
    }

    #[test]
    fn misprediction_widens_then_recovers() {
        let cfg = OnlineConfig::default();
        let mut p = OnlinePredictor::new(1, cfg);
        for _ in 0..4 {
            let pr = p.predict(0, 1000);
            p.observe(0, 1000, pr.bytes, 1000);
        }
        let calm = p.predict(0, 1000).headroom.unwrap();
        // A 60 % spike: the next headroom must widen and the reserve
        // must cover the spike's observed size.
        let pr = p.predict(0, 1000);
        p.observe(0, 1000, pr.bytes, 1600);
        let pr = p.predict(0, 1000);
        let h = pr.headroom.unwrap();
        assert!(h > calm, "after drift {h} must exceed calm {calm}");
        let reserve = (pr.bytes as f64 * h).ceil() as u64;
        assert!(reserve >= 1600, "reserve {reserve} below last observed");
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        let mut p = OnlinePredictor::new(
            1,
            OnlineConfig {
                alpha: f64::NAN,
                warmup: 0,
                err_margin: f64::INFINITY,
                min_headroom: 0.0,
                max_headroom: 0.0,
            },
        );
        p.observe(0, 0, 0, 0);
        p.observe(0, u64::MAX, 1, u64::MAX);
        let pr = p.predict(0, 0);
        assert!(pr.bytes >= 1);
        assert!(pr.band.is_finite());
        if let Some(h) = pr.headroom {
            assert!(h.is_finite() && h >= 1.0);
        }
    }

    #[test]
    fn state_roundtrips_exactly() {
        let mut p = OnlinePredictor::new(6, OnlineConfig::default());
        for step in 0..5u64 {
            for cell in 0..6 {
                let pr = p.predict(cell, 1000 + cell as u64 * 37);
                p.observe(cell, 1000, pr.bytes, 900 + step * 50 + cell as u64);
            }
        }
        let bytes = p.to_state_bytes();
        let q = OnlinePredictor::from_state_bytes(&bytes).unwrap();
        assert_eq!(q.n_cells(), p.n_cells());
        assert_eq!(q.config(), p.config());
        for cell in 0..6 {
            assert_eq!(q.stats(cell), p.stats(cell), "cell {cell}");
            // Bit-identical state must yield bit-identical predictions.
            assert_eq!(q.predict(cell, 1234), p.predict(cell, 1234));
        }
    }

    #[test]
    fn corrupt_state_rejected() {
        let p = OnlinePredictor::new(2, OnlineConfig::default());
        let bytes = p.to_state_bytes();
        assert!(OnlinePredictor::from_state_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(OnlinePredictor::from_state_bytes(&[]).is_err());
        let mut vers = bytes.clone();
        vers[0] = 99;
        assert!(OnlinePredictor::from_state_bytes(&vers).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(OnlinePredictor::from_state_bytes(&trailing).is_err());
    }

    #[test]
    fn mean_rel_err_ignores_untouched_cells() {
        let mut p = OnlinePredictor::new(3, OnlineConfig::default());
        assert_eq!(p.mean_rel_err(), 0.0);
        p.observe(1, 1000, 1000, 1500); // rel err 500/1500 = 1/3
        assert!((p.mean_rel_err() - 1.0 / 3.0).abs() < 1e-12);
    }
}
