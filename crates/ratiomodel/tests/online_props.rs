//! Property tests of the online ratio adaptation.
//!
//! Three invariants the timeline engine depends on, pushed through
//! seeded random observation streams:
//!
//! 1. predictions stay finite and ≥ 1 byte whatever the stream;
//! 2. on a stationary stream the blended prediction converges to the
//!    observed size (the whole point of the bias correction);
//! 3. the adapted headroom's reservation never drops below the last
//!    observed requirement, so a partition that just overflowed is
//!    always covered on the next step.

use proptest::prelude::*;
use ratiomodel::{OnlineConfig, OnlinePredictor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases_and_seed(64, 0x0A11_7E57) /* pinned: deterministic CI */)]

    #[test]
    fn predictions_finite_and_at_least_one_byte(
        steps in proptest::collection::vec((1u64..50_000_000, 1u64..50_000_000), 1..40),
        alpha in 0.05f64..1.0,
        warmup in 1u64..5,
    ) {
        let cfg = OnlineConfig { alpha, warmup, ..OnlineConfig::default() };
        let mut p = OnlinePredictor::new(1, cfg);
        for &(model, observed) in &steps {
            let pr = p.predict(0, model);
            prop_assert!(pr.bytes >= 1);
            prop_assert!(pr.band.is_finite() && pr.band >= 1.0);
            if let Some(h) = pr.headroom {
                prop_assert!(h.is_finite() && h >= 1.0, "headroom {h}");
            }
            p.observe(0, model, pr.bytes, observed);
            let st = p.stats(0);
            prop_assert!(st.correction.is_finite() && st.correction > 0.0);
            prop_assert!(st.rel_err.is_finite() && st.rel_err >= 0.0);
        }
    }

    #[test]
    fn stationary_stream_converges_to_observed_ratio(
        model in 1_000u64..10_000_000,
        ratio in 0.2f64..5.0,
    ) {
        // Compressible input: the model sees `model` bytes, reality is
        // consistently `ratio` times that. After the warm-up the
        // blended prediction must land on the observed size and the
        // tracked error must collapse.
        let observed = ((model as f64 * ratio) as u64).max(1);
        let mut p = OnlinePredictor::new(1, OnlineConfig::default());
        for _ in 0..12 {
            let pr = p.predict(0, model);
            p.observe(0, model, pr.bytes, observed);
        }
        let pr = p.predict(0, model);
        let err = (pr.bytes as f64 - observed as f64).abs() / observed as f64;
        prop_assert!(err < 0.01, "prediction {} vs observed {observed}", pr.bytes);
        prop_assert!(p.stats(0).rel_err < 0.05, "residual err {}", p.stats(0).rel_err);
        // …and the adapted headroom sits at the floor on stable history.
        let h = pr.headroom.unwrap();
        prop_assert!(h <= p.config().min_headroom + 0.05, "headroom {h}");
    }

    #[test]
    fn adapted_reserve_never_below_last_observed(
        steps in proptest::collection::vec((1u64..20_000_000, 1u64..20_000_000), 3..30),
        alpha in 0.05f64..1.0,
        err_margin in 0.0f64..6.0,
    ) {
        let cfg = OnlineConfig { alpha, err_margin, ..OnlineConfig::default() };
        let mut p = OnlinePredictor::new(1, cfg);
        let mut last_observed = 0u64;
        for &(model, observed) in &steps {
            let pr = p.predict(0, model);
            if let Some(h) = pr.headroom {
                let reserve = (pr.bytes as f64 * h).ceil() as u64;
                prop_assert!(
                    reserve >= last_observed,
                    "reserve {reserve} < last observed {last_observed}"
                );
            }
            p.observe(0, model, pr.bytes, observed);
            last_observed = observed;
        }
    }
}
