//! Accuracy validation of the ratio model against the real compressor
//! on the synthetic workloads — the reproduction of the claim behind
//! the paper's design assumption (3): "the accuracy of the
//! compression-ratio estimation is consistently above 90 %".

use ratiomodel::{predict_default, Models};
use szlite::{compress_with_stats, sample_quantization, Config, Dims};
use workloads::{nyx, rtm, Decomposition, NyxParams, RtmParams};

/// Relative error of predicted vs. actual compressed size.
fn size_error(data: &[f32], dims: &Dims, cfg: &Config, frac: f64) -> f64 {
    let s = sample_quantization(data, dims, cfg, frac).unwrap();
    let pred = predict_default(&s, 32);
    let (_, st) = compress_with_stats(data, dims, cfg).unwrap();
    (pred.bytes as f64 - st.compressed_bytes as f64).abs() / st.compressed_bytes as f64
}

#[test]
fn ratio_prediction_within_tolerance_on_nyx_partitions() {
    let ds = nyx::snapshot(NyxParams::with_side(32));
    let dec = Decomposition::new(8, [32, 32, 32]);
    let bdims = Dims::d3(16, 16, 16);
    let cfg = Config::rel(1e-3);
    let mut errs = Vec::new();
    for f in &ds.fields {
        for r in 0..8 {
            let blk = dec.extract(f, r);
            errs.push(size_error(&blk, &bdims, &cfg, 0.25));
        }
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let worst = errs.iter().cloned().fold(0.0, f64::max);
    // Paper claims >90 % accuracy on average; allow generous slack for
    // our smaller partitions (table overhead is proportionally larger).
    assert!(mean < 0.25, "mean rel err {mean:.3} (worst {worst:.3})");
}

#[test]
fn ratio_prediction_tracks_error_bound() {
    let ds = rtm::snapshot(RtmParams::with_side(32));
    let f = &ds.fields[0];
    let dims = Dims::d3(32, 32, 32);
    for rel in [1e-2, 1e-3, 1e-4] {
        let cfg = Config::rel(rel);
        let err = size_error(&f.data, &dims, &cfg, 0.5);
        assert!(err < 0.35, "rel={rel}: err {err:.3}");
    }
}

#[test]
fn sampled_prediction_close_to_full_prediction() {
    // Sampling at 5 % should give nearly the same prediction as 100 %.
    let ds = nyx::snapshot(NyxParams::with_side(32));
    let f = ds.field("temperature").unwrap();
    let dims = Dims::d3(32, 32, 32);
    let cfg = Config::rel(1e-3);
    let s_full = sample_quantization(&f.data, &dims, &cfg, 1.0).unwrap();
    let s_frac = sample_quantization(&f.data, &dims, &cfg, 0.05).unwrap();
    let p_full = predict_default(&s_full, 32);
    let p_frac = predict_default(&s_frac, 32);
    let rel = (p_full.bytes as f64 - p_frac.bytes as f64).abs() / p_full.bytes as f64;
    assert!(rel < 0.15, "sampled vs full prediction differ by {rel:.3}");
}

#[test]
fn estimates_are_finite_and_positive_across_fields() {
    let ds = nyx::snapshot(NyxParams::with_side(16));
    let dims = Dims::d3(16, 16, 16);
    let models = Models::with_cthr(200e6);
    for f in &ds.fields {
        let est =
            ratiomodel::estimate_partition(&f.data, &dims, &Config::rel(1e-3), &models).unwrap();
        assert!(
            est.bytes > 0 && est.comp_time > 0.0 && est.write_time > 0.0,
            "{}",
            f.name
        );
        assert!(est.comp_time.is_finite() && est.write_time.is_finite());
    }
}
