//! # testutil — shared test helpers
//!
//! The integration suites create container files in the OS temp dir;
//! when an assertion fails before the trailing `remove_file`, the file
//! leaks. [`TempPath`] is an RAII guard that deletes the file on drop
//! (including on panic/unwind), so failed runs leave nothing behind.

use std::path::{Path, PathBuf};

/// RAII guard around a temp-dir file path: the file (if it exists) is
/// removed when the guard is dropped, even if the test panicked.
///
/// ```
/// let t = testutil::TempPath::new("doc", "h5l");
/// std::fs::write(t.path(), b"scratch").unwrap();
/// let p = t.path().to_path_buf();
/// drop(t);
/// assert!(!p.exists());
/// ```
#[derive(Debug)]
pub struct TempPath {
    path: PathBuf,
}

impl TempPath {
    /// A unique path in the OS temp dir, namespaced by process id so
    /// concurrent test binaries cannot collide. The file itself is not
    /// created; `name` should be unique within the calling test binary.
    pub fn new(name: &str, ext: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("suite-{}-{}.{}", std::process::id(), name, ext));
        // A stale file from a killed run would confuse size/offset
        // assertions — start from a clean slate.
        let _ = std::fs::remove_file(&path);
        TempPath { path }
    }

    /// The guarded path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl AsRef<Path> for TempPath {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_file_on_drop() {
        let guard = TempPath::new("unit-drop", "tmp");
        std::fs::write(guard.path(), b"x").unwrap();
        let p = guard.path().to_path_buf();
        assert!(p.exists());
        drop(guard);
        assert!(!p.exists());
    }

    #[test]
    fn removes_file_on_panic() {
        let p = {
            let result = std::panic::catch_unwind(|| {
                let guard = TempPath::new("unit-panic", "tmp");
                std::fs::write(guard.path(), b"x").unwrap();
                let p = guard.path().to_path_buf();
                assert!(p.exists());
                let carrier = p.clone();
                // The guard drops during unwind.
                std::panic::panic_any(carrier);
            });
            *result.unwrap_err().downcast::<PathBuf>().unwrap()
        };
        assert!(!p.exists());
    }

    #[test]
    fn missing_file_is_fine() {
        let guard = TempPath::new("unit-missing", "tmp");
        assert!(!guard.path().exists());
        // Drop without ever creating the file: must not panic.
    }
}
