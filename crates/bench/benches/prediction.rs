//! Criterion bench: ratio-prediction overhead vs full compression —
//! validating the "<10 % of compression time" property the overlap
//! design depends on (Jin et al. [25]).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use szlite::{compress_f32, sample_quantization, Config, Dims};
use workloads::{nyx, NyxParams};

fn bench_prediction(c: &mut Criterion) {
    let side = 32;
    let f = nyx::single_field(NyxParams::with_side(side), "temperature");
    let dims = Dims::d3(side, side, side);
    let cfg = Config::rel(1e-3);
    let raw = (f.data.len() * 4) as u64;

    let mut g = c.benchmark_group("prediction-vs-compression");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(raw));
    g.bench_function("sample-5pct", |b| {
        b.iter(|| sample_quantization(&f.data, &dims, &cfg, 0.05).unwrap())
    });
    g.bench_function("full-compression", |b| {
        b.iter(|| compress_f32(&f.data, &dims, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
