//! Criterion bench: Algorithm 1 optimization cost vs field count —
//! validating the paper's claim that the O(n²) optimizer is negligible
//! (0.17 % of compression time even at n = 100).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use predwrite::optimize_order;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimize_order");
    for n in [6usize, 16, 50, 100] {
        let pc: Vec<f64> = (0..n).map(|i| 0.1 + (i % 7) as f64 * 0.05).collect();
        let pw: Vec<f64> = (0..n).map(|i| 0.05 + (i % 5) as f64 * 0.08).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| optimize_order(&pc, &pw))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
