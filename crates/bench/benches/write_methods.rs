//! Criterion bench: simulated end-to-end time of the four write
//! methods at 512 ranks (the Fig. 16 scenario as a regression bench:
//! the *relative* ordering of methods must hold build over build).

use bench::setup::nyx_profiles;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfsim::BandwidthModel;
use predwrite::{simulate_method, Method, SimParams};
use ratiomodel::Models;

fn bench_methods(c: &mut Criterion) {
    let bw = BandwidthModel::summit();
    let models = Models::with_cthr(bw.stable_cthr(512));
    let profiles = nyx_profiles(32, 8, 512, 2.0, &models);
    let params = SimParams::new(bw);

    let mut g = c.benchmark_group("simulate-method-512ranks");
    g.sample_size(10);
    for m in Method::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(m.label()), &m, |b, &m| {
            b.iter(|| simulate_method(m, &profiles, &params))
        });
    }
    g.finish();

    // Assert the paper's method ordering as a bench-time sanity check.
    let t = |m: Method| simulate_method(m, &profiles, &params).total_time;
    assert!(t(Method::NoCompression) > t(Method::OverlapReorder));
    assert!(t(Method::FilterCollective) > t(Method::OverlapReorder));
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
