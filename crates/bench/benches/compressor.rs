//! Criterion bench: szlite compression/decompression throughput across
//! error bounds (the micro-measurement behind Fig. 5/6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use szlite::{compress_f32, decompress_f32, Config, Dims};
use workloads::{nyx, NyxParams};

fn bench_compress(c: &mut Criterion) {
    let side = 32;
    let f = nyx::single_field(NyxParams::with_side(side), "baryon_density");
    let dims = Dims::d3(side, side, side);
    let raw = (f.data.len() * 4) as u64;

    let mut g = c.benchmark_group("compress");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(raw));
    for rel in [1e-1, 1e-3, 1e-6] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("rel{rel:.0e}")),
            &rel,
            |b, &rel| {
                let cfg = Config::rel(rel);
                b.iter(|| compress_f32(&f.data, &dims, &cfg).unwrap());
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("decompress");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(raw));
    for rel in [1e-1, 1e-3, 1e-6] {
        let stream = compress_f32(&f.data, &dims, &Config::rel(rel)).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("rel{rel:.0e}")),
            &stream,
            |b, s| {
                b.iter(|| decompress_f32(s).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
